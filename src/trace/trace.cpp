#include "trace/trace.hpp"

#include <algorithm>
#include <memory>

namespace mpct::trace {

std::string_view to_string(Category category) {
  switch (category) {
    case Category::Engine:  return "engine";
    case Category::Queue:   return "queue";
    case Category::Cache:   return "cache";
    case Category::Execute: return "execute";
    case Category::Chunk:   return "chunk";
    case Category::Merge:   return "merge";
    case Category::Sweep:   return "sweep";
    case Category::Fault:   return "fault";
    case Category::Core:    return "core";
    case Category::Cost:    return "cost";
    case Category::Noc:     return "noc";
    case Category::Mark:    return "mark";
    case Category::Net:     return "net";
    case Category::Cluster: return "cluster";
    case Category::Sim: return "sim";
    case Category::Qos: return "qos";
  }
  return "unknown";
}

std::string_view to_string(ProfilePoint point) {
  switch (point) {
    case ProfilePoint::ClassifyFast: return "classify_fast";
    case ProfilePoint::CostEvaluate: return "cost_evaluate";
    case ProfilePoint::SweepCell:    return "sweep_cell";
    case ProfilePoint::CurveTrial:   return "curve_trial";
    case ProfilePoint::NocReroute:   return "noc_reroute";
    case ProfilePoint::RouteAround:  return "route_around";
    case ProfilePoint::OmegaRoute:   return "omega_route";
    case ProfilePoint::SweepBatch:   return "sweep_batch";
  }
  return "unknown";
}

/// One thread's ring.  Only the owning thread writes; every field is a
/// relaxed atomic so a concurrent snapshot never reads a torn value and
/// TSan sees no race.  `head_` (total spans ever pushed) is published
/// with release after the slot stores, so any slot with index < an
/// acquire-read head is fully written.
struct Tracer::ThreadBuffer {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<std::int64_t> arg{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<std::uint8_t> category{0};
  };
  struct ProfileSlot {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::int64_t> ns{0};
  };

  explicit ThreadBuffer(std::size_t capacity, std::uint32_t index)
      : slots(capacity), thread_index(index) {}

  void push(const Span& span) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h & (slots.size() - 1)];
    slot.name.store(span.name, std::memory_order_relaxed);
    slot.arg_name.store(span.arg_name, std::memory_order_relaxed);
    slot.arg.store(span.arg, std::memory_order_relaxed);
    slot.id.store(span.id, std::memory_order_relaxed);
    slot.parent.store(span.parent, std::memory_order_relaxed);
    slot.trace_id.store(span.trace_id, std::memory_order_relaxed);
    slot.start_ns.store(span.start_ns, std::memory_order_relaxed);
    slot.dur_ns.store(span.dur_ns, std::memory_order_relaxed);
    slot.category.store(static_cast<std::uint8_t>(span.category),
                        std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};  ///< total spans ever pushed
  /// Next index Tracer::drain() will read; written only under the
  /// registry mutex, distinct from any snapshot bookkeeping.
  std::atomic<std::uint64_t> export_cursor{0};
  std::uint32_t thread_index;
  std::array<ProfileSlot, kProfilePointCount> profile{};
};

namespace {

thread_local Tracer::ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint64_t tl_current_span = 0;
thread_local std::uint64_t tl_trace_id = 0;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (tl_buffer != nullptr) return *tl_buffer;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  // Buffers are leaked deliberately: a worker thread may record right up
  // to process exit, and the registry must outlive every recorder.
  auto* buffer = new ThreadBuffer(
      capacity_, static_cast<std::uint32_t>(buffers_.size()));
  buffers_.push_back(buffer);
  tl_buffer = buffer;
  return *buffer;
}

void Tracer::enable() {
  bool expected = false;
  if (epoch_set_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    epoch_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count(),
                    std::memory_order_release);
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::set_capacity_per_thread(std::size_t spans) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  capacity_ = round_up_pow2(std::max<std::size_t>(spans, 2));
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (ThreadBuffer* buffer : buffers_) {
    if (buffer->slots.size() != capacity_) {
      // vector<atomic> cannot resize in place; swap in a fresh ring.
      std::vector<ThreadBuffer::Slot> fresh(capacity_);
      buffer->slots.swap(fresh);
    }
    buffer->head.store(0, std::memory_order_release);
    buffer->export_cursor.store(0, std::memory_order_relaxed);
    for (auto& slot : buffer->profile) {
      slot.calls.store(0, std::memory_order_relaxed);
      slot.ns.store(0, std::memory_order_relaxed);
    }
  }
}

std::int64_t Tracer::now_ns() const {
  if (!epoch_set_.load(std::memory_order_acquire)) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns_.load(std::memory_order_acquire);
}

TraceSnapshot Tracer::snapshot() const {
  TraceSnapshot snap;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  snap.thread_count = static_cast<std::uint32_t>(buffers_.size());
  for (const ThreadBuffer* buffer : buffers_) {
    const std::uint64_t capacity = buffer->slots.size();
    const std::uint64_t head1 = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t first =
        head1 > capacity ? head1 - capacity : 0;
    std::vector<Span> local;
    local.reserve(static_cast<std::size_t>(head1 - first));
    for (std::uint64_t i = first; i < head1; ++i) {
      const ThreadBuffer::Slot& slot = buffer->slots[i & (capacity - 1)];
      Span span;
      span.name = slot.name.load(std::memory_order_relaxed);
      span.arg_name = slot.arg_name.load(std::memory_order_relaxed);
      span.arg = slot.arg.load(std::memory_order_relaxed);
      span.id = slot.id.load(std::memory_order_relaxed);
      span.parent = slot.parent.load(std::memory_order_relaxed);
      span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      span.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      span.category =
          static_cast<Category>(slot.category.load(std::memory_order_relaxed));
      span.thread = buffer->thread_index;
      local.push_back(span);
    }
    // Writes that landed while we copied may have reused slots we read:
    // a copied index i is reliable only if its slot was not reclaimed by
    // any index in [head1, head2 + 1) (the +1 covers a write in flight
    // at head2).  Keep i >= head2 + 1 - capacity; drop the rest.
    const std::uint64_t head2 = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t safe_first =
        head2 + 1 > capacity ? head2 + 1 - capacity : 0;
    std::uint64_t kept_from = first;
    if (safe_first > first) {
      const std::uint64_t drop =
          std::min<std::uint64_t>(safe_first - first, local.size());
      local.erase(local.begin(),
                  local.begin() + static_cast<std::ptrdiff_t>(drop));
      kept_from = first + drop;
    }
    snap.dropped += kept_from;  // indices [0, kept_from) are gone
    snap.spans.insert(snap.spans.end(), local.begin(), local.end());

    for (std::size_t p = 0; p < kProfilePointCount; ++p) {
      snap.profile[p].calls +=
          buffer->profile[p].calls.load(std::memory_order_relaxed);
      snap.profile[p].total_ns +=
          buffer->profile[p].ns.load(std::memory_order_relaxed);
    }
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const Span& a, const Span& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  return snap;
}

Tracer::DrainResult Tracer::drain() {
  DrainResult result;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (ThreadBuffer* buffer : buffers_) {
    const std::uint64_t capacity = buffer->slots.size();
    const std::uint64_t cursor =
        buffer->export_cursor.load(std::memory_order_relaxed);
    const std::uint64_t head1 = buffer->head.load(std::memory_order_acquire);
    // Indices the ring no longer holds were overwritten since the last
    // drain — count them lost and start at the oldest surviving slot.
    const std::uint64_t oldest = head1 > capacity ? head1 - capacity : 0;
    const std::uint64_t first = std::max(cursor, oldest);
    result.dropped += first - cursor;
    std::vector<Span> local;
    local.reserve(static_cast<std::size_t>(head1 - first));
    for (std::uint64_t i = first; i < head1; ++i) {
      const ThreadBuffer::Slot& slot = buffer->slots[i & (capacity - 1)];
      Span span;
      span.name = slot.name.load(std::memory_order_relaxed);
      span.arg_name = slot.arg_name.load(std::memory_order_relaxed);
      span.arg = slot.arg.load(std::memory_order_relaxed);
      span.id = slot.id.load(std::memory_order_relaxed);
      span.parent = slot.parent.load(std::memory_order_relaxed);
      span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      span.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      span.category =
          static_cast<Category>(slot.category.load(std::memory_order_relaxed));
      span.thread = buffer->thread_index;
      local.push_back(span);
    }
    // Same torn-copy guard as snapshot(): any copied index a recorder
    // could have reclaimed while we read (i < head2 + 1 - capacity) is
    // discarded — and counted dropped, because the cursor moves past it.
    const std::uint64_t head2 = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t safe_first =
        head2 + 1 > capacity ? head2 + 1 - capacity : 0;
    if (safe_first > first) {
      const std::uint64_t drop =
          std::min<std::uint64_t>(safe_first - first, local.size());
      local.erase(local.begin(),
                  local.begin() + static_cast<std::ptrdiff_t>(drop));
      result.dropped += drop;
    }
    result.spans.insert(result.spans.end(), local.begin(), local.end());
    buffer->export_cursor.store(head1, std::memory_order_relaxed);
  }
  return result;
}

namespace detail {

std::uint64_t begin_span() {
  return Tracer::instance().next_id_.fetch_add(1, std::memory_order_relaxed);
}

void end_span(const char* name, const char* arg_name, std::int64_t arg,
              std::uint64_t id, std::uint64_t parent, Category category,
              std::int64_t start_ns, std::int64_t dur_ns) {
  Span span;
  span.name = name;
  span.arg_name = arg_name;
  span.arg = arg;
  span.id = id;
  span.parent = parent;
  span.trace_id = tl_trace_id;
  span.category = category;
  span.start_ns = start_ns;
  span.dur_ns = dur_ns;
  Tracer& tracer = Tracer::instance();
  Tracer::ThreadBuffer& buffer = tracer.local_buffer();
  span.thread = buffer.thread_index;
  buffer.push(span);
}

std::int64_t now_ns() { return Tracer::instance().now_ns(); }

std::uint64_t current_parent() { return tl_current_span; }

void set_current_parent(std::uint64_t id) { tl_current_span = id; }

std::uint64_t current_trace_id() { return tl_trace_id; }

void set_current_trace_id(std::uint64_t trace_id) { tl_trace_id = trace_id; }

void profile_add(ProfilePoint point, std::uint64_t calls, std::int64_t ns) {
  Tracer::ThreadBuffer& buffer = Tracer::instance().local_buffer();
  auto& slot = buffer.profile[static_cast<std::size_t>(point)];
  slot.calls.fetch_add(calls, std::memory_order_relaxed);
  slot.ns.fetch_add(ns, std::memory_order_relaxed);
}

}  // namespace detail

void ScopedSpan::begin(const char* name, Category category) {
  name_ = name;
  category_ = category;
  id_ = detail::begin_span();
  parent_ = detail::current_parent();
  detail::set_current_parent(id_);
  start_ns_ = detail::now_ns();
}

void ScopedSpan::end() {
  const std::int64_t dur = detail::now_ns() - start_ns_;
  detail::set_current_parent(parent_);
  detail::end_span(name_, arg_name_, arg_, id_, parent_, category_, start_ns_,
                   dur < 0 ? 0 : dur);
  id_ = 0;
}

void emit_span(const char* name, Category category,
               std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end,
               const char* arg_name, std::int64_t arg) {
  if (!enabled()) [[likely]] {
    return;
  }
  const std::int64_t end_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          end.time_since_epoch())
          .count() -
      Tracer::instance().epoch_ns();
  std::int64_t dur =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  if (dur < 0) dur = 0;
  std::int64_t start_ns = end_ns - dur;
  if (start_ns < 0) start_ns = 0;  // interval began before the epoch
  detail::end_span(name, arg_name, arg, detail::begin_span(),
                   detail::current_parent(), category, start_ns, dur);
}

void emit_instant(const char* name, Category category, const char* arg_name,
                  std::int64_t arg) {
  if (!enabled()) [[likely]] {
    return;
  }
  detail::end_span(name, arg_name, arg, detail::begin_span(),
                   detail::current_parent(), category, detail::now_ns(),
                   Span::kInstant);
}

}  // namespace mpct::trace
