#include "trace/collector.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "trace/chrome_trace.hpp"

namespace mpct::trace {

void Collector::ingest(const SpanBatch& batch, std::int64_t recv_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = nodes_.try_emplace(batch.node);
  NodeState& node = it->second;
  if (inserted) {
    node.pid = static_cast<std::uint32_t>(nodes_.size());
    stats_.nodes = static_cast<std::uint32_t>(nodes_.size());
  }
  // One-way-delay minimum: the fastest batch bounds the offset tightest.
  const std::int64_t delta = recv_ns - batch.send_ns;
  if (!node.offset_set || delta < node.offset_ns) {
    node.offset_ns = delta;
    node.offset_set = true;
  }
  for (const ExportSpan& span : batch.spans) {
    auto [trace_it, new_trace] = by_trace_.try_emplace(span.trace_id);
    if (new_trace) trace_order_.push_back(span.trace_id);
    trace_it->second.push_back(next_seq_);
    spans_.emplace(next_seq_, StoredSpan{span, node.pid});
    ++next_seq_;
  }
  ++stats_.batches;
  stats_.spans += batch.spans.size();
  stats_.dropped += batch.dropped;
  enforce_retention_locked();
}

void Collector::enforce_retention_locked() {
  if (max_spans_ == 0) return;
  std::size_t evict_from = 0;
  while (spans_.size() > max_spans_ &&
         by_trace_.size() > 1 && evict_from < trace_order_.size()) {
    const std::uint64_t victim = trace_order_[evict_from++];
    const auto it = by_trace_.find(victim);
    if (it == by_trace_.end()) continue;  // already evicted, stale order entry
    for (const std::uint64_t seq : it->second) spans_.erase(seq);
    stats_.evicted_spans += it->second.size();
    ++stats_.evicted_traces;
    by_trace_.erase(it);
  }
  if (evict_from > 0) {
    trace_order_.erase(trace_order_.begin(),
                       trace_order_.begin() +
                           static_cast<std::ptrdiff_t>(evict_from));
  }
}

CollectorStats Collector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Collector::resident_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<std::uint64_t> Collector::trace_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> ids;
  ids.reserve(by_trace_.size());
  for (const auto& [id, _] : by_trace_) ids.push_back(id);
  return ids;
}

std::size_t Collector::node_count(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_trace_.find(trace_id);
  if (it == by_trace_.end()) return 0;
  std::vector<std::uint32_t> pids;
  for (const std::uint64_t index : it->second) {
    pids.push_back(spans_.at(index).pid);
  }
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  return pids.size();
}

std::uint64_t Collector::richest_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t best = 0;
  std::size_t best_nodes = 0;
  std::size_t best_spans = 0;
  for (const auto& [id, indices] : by_trace_) {
    if (id == 0) continue;  // background spans assemble to no request
    std::vector<std::uint32_t> pids;
    for (const std::uint64_t index : indices) {
      pids.push_back(spans_.at(index).pid);
    }
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    const std::size_t nodes = pids.size();
    const std::size_t count = indices.size();
    if (nodes > best_nodes || (nodes == best_nodes && count > best_spans)) {
      best = id;
      best_nodes = nodes;
      best_spans = count;
    }
  }
  return best;
}

std::string Collector::assemble(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_trace_.find(trace_id);
  if (it == by_trace_.end()) return {};
  std::vector<const StoredSpan*> selected;
  selected.reserve(it->second.size());
  for (const std::uint64_t index : it->second) {
    selected.push_back(&spans_.at(index));
  }
  return render(selected);
}

std::string Collector::assemble_all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const StoredSpan*> selected;
  selected.reserve(spans_.size());
  for (const auto& [seq, stored] : spans_) selected.push_back(&stored);
  return render(selected);
}

std::string Collector::render(
    const std::vector<const StoredSpan*>& spans) const {
  // pid -> (name, offset) for alignment and process_name metadata.
  struct NodeView {
    const std::string* name;
    std::int64_t offset;
  };
  std::map<std::uint32_t, NodeView> views;
  for (const auto& [name, state] : nodes_) {
    views[state.pid] = NodeView{&name, state.offset_set ? state.offset_ns : 0};
  }
  // Only nodes that contributed spans get a process row — a per-trace
  // timeline should not show the rest of the fleet as empty processes.
  std::map<std::uint32_t, NodeView> used;
  for (const StoredSpan* stored : spans) {
    used.insert(*views.find(stored->pid));
  }

  // Deterministic order: aligned start, then node, then span id.
  std::vector<const StoredSpan*> sorted = spans;
  const auto aligned = [&views](const StoredSpan* s) {
    return s->span.start_ns + views.at(s->pid).offset;
  };
  std::sort(sorted.begin(), sorted.end(),
            [&aligned](const StoredSpan* a, const StoredSpan* b) {
              const std::int64_t ta = aligned(a);
              const std::int64_t tb = aligned(b);
              if (ta != tb) return ta < tb;
              if (a->pid != b->pid) return a->pid < b->pid;
              return a->span.id < b->span.id;
            });

  std::string out;
  out.reserve(128 + used.size() * 80 + sorted.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[96];
  for (const auto& [pid, view] : used) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buffer, sizeof(buffer),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"",
                  pid);
    out += buffer;
    detail::append_json_escaped(out, view.name->c_str());
    out += "\"}}";
  }
  for (const StoredSpan* stored : sorted) {
    const ExportSpan& span = stored->span;
    const std::int64_t start = aligned(stored);
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    detail::append_json_escaped(out, span.name.c_str());
    out += "\",\"cat\":\"";
    out += to_string(span.category);
    if (span.instant()) {
      out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      detail::append_json_us(out, start);
    } else {
      out += "\",\"ph\":\"X\",\"ts\":";
      detail::append_json_us(out, start);
      out += ",\"dur\":";
      detail::append_json_us(out, span.dur_ns);
    }
    std::snprintf(buffer, sizeof(buffer),
                  ",\"pid\":%u,\"tid\":%u,\"args\":{\"span\":%" PRIu64
                  ",\"parent\":%" PRIu64,
                  stored->pid, span.thread, span.id, span.parent);
    out += buffer;
    if (span.trace_id != 0) {
      std::snprintf(buffer, sizeof(buffer), ",\"trace\":%" PRIu64,
                    span.trace_id);
      out += buffer;
    }
    if (!span.arg_name.empty()) {
      out += ",\"";
      detail::append_json_escaped(out, span.arg_name.c_str());
      std::snprintf(buffer, sizeof(buffer), "\":%" PRId64, span.arg);
      out += buffer;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace mpct::trace
