#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "trace/sampler.hpp"
#include "trace/trace.hpp"

namespace mpct::trace {

/// A Span that has left its process: the static-storage `const char*`
/// names become owned strings (pointers mean nothing across the wire),
/// everything else travels verbatim.  `start_ns` stays relative to the
/// *sender's* tracer epoch — the collector aligns clocks per batch.
struct ExportSpan {
  std::string name;
  std::string arg_name;  ///< empty = no annotation
  std::int64_t arg = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t thread = 0;
  Category category = Category::Engine;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;

  bool instant() const { return dur_ns == Span::kInstant; }
  bool operator==(const ExportSpan&) const = default;

  static ExportSpan of(const Span& span) {
    ExportSpan out;
    out.name = span.name == nullptr ? "" : span.name;
    out.arg_name = span.arg_name == nullptr ? "" : span.arg_name;
    out.arg = span.arg;
    out.id = span.id;
    out.parent = span.parent;
    out.trace_id = span.trace_id;
    out.thread = span.thread;
    out.category = span.category;
    out.start_ns = span.start_ns;
    out.dur_ns = span.dur_ns;
    return out;
  }
};

/// One flight-recorder shipment: every span one drain+sample pass kept,
/// stamped with the sender's identity and clock.
struct SpanBatch {
  std::string node;          ///< stable process name ("backend-0", "proxy")
  std::int64_t send_ns = 0;  ///< sender's tracer clock when the batch left
  /// Spans lost on the sender since its previous batch: ring wrap past
  /// the export cursor plus whole batches shed under back-pressure.
  std::uint64_t dropped = 0;
  std::vector<ExportSpan> spans;

  bool operator==(const SpanBatch&) const = default;
};

/// Applies one process's SamplerPolicy to drained spans, batch after
/// batch.  Stateful across calls: a tail trigger (error, expiry, hedge,
/// failover, slow span) force-keeps its trace id for every later batch
/// too, so the tail of a long trace is not lost to the head decision.
/// Not thread-safe — owned by the single exporter thread.
class ExportFilter {
 public:
  /// Most force-kept trace ids remembered; the set resets when full
  /// (bounded memory beats a perfect tail under soak).
  static constexpr std::size_t kMaxForced = 4096;

  explicit ExportFilter(SamplerPolicy policy) : policy_(policy) {}

  /// Head/tail-sample @p spans; kept spans come back converted for
  /// export.  Two passes: triggers found anywhere in the batch rescue
  /// the whole batch's share of that trace (spans recorded before the
  /// trigger included).  Spans with trace id 0 — background work
  /// outside any request — follow the head decision for id 0.
  std::vector<ExportSpan> apply(const std::vector<Span>& spans);

  /// Spans discarded by sampling so far (distinct from ring drops).
  std::uint64_t sampled_out() const { return sampled_out_; }
  const SamplerPolicy& policy() const { return policy_; }

 private:
  bool keep(std::uint64_t trace_id) const;

  SamplerPolicy policy_;
  std::unordered_set<std::uint64_t> forced_;
  std::uint64_t sampled_out_ = 0;
};

}  // namespace mpct::trace
