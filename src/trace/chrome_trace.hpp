#pragma once

#include <string>

#include "trace/trace.hpp"

namespace mpct::trace {

/// Render a frozen trace as Chrome trace-event JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper object), loadable in
/// chrome://tracing and Perfetto.
///
/// Mapping: a normal span becomes one complete event (`"ph":"X"`) with
/// `ts`/`dur` in fractional microseconds (3 decimals, so nothing below
/// ns resolution is invented); an instant marker becomes `"ph":"i"`
/// with thread scope.  `pid` is always 1, `tid` is the Tracer's
/// registration-order thread index, `cat` is the span taxonomy
/// (trace::Category), and `args` carries the parent span id plus the
/// optional annotation.
///
/// Deterministic: a pure function of the snapshot — the spans are
/// already totally ordered by (start_ns, id) and every number is
/// formatted with fixed precision, so equal snapshots produce
/// byte-identical documents (test-enforced).
std::string to_chrome_json(const TraceSnapshot& snapshot);

namespace detail {

/// Append @p text escaped for the inside of a JSON string literal.
/// Shared by the snapshot exporter and the fleet Collector so both
/// emit byte-identical escapes.
void append_json_escaped(std::string& out, const char* text);

/// Append @p ns as fractional microseconds with fixed 3 decimals.
void append_json_us(std::string& out, std::int64_t ns);

}  // namespace detail

}  // namespace mpct::trace
