#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace mpct::trace {

/// Span taxonomy: which layer of the stack an event belongs to.  The
/// Chrome exporter renders this as the event category, so Perfetto can
/// filter e.g. only queue events.  docs/OBSERVABILITY.md is the
/// narrative companion to this enum.
enum class Category : std::uint8_t {
  Engine,   ///< service::QueryEngine request lifecycle (submit, enqueue)
  Queue,    ///< time spent waiting in the bounded MPMC queue
  Cache,    ///< sharded LRU probes (annotated hit/miss)
  Execute,  ///< request execution on a worker or the inline path
  Chunk,    ///< one sweep / fault-sweep chunk on a pool worker
  Merge,    ///< last-completer reduction (Pareto front, curve finalize)
  Sweep,    ///< explore::SweepEvaluator internals
  Fault,    ///< fault::CurveEvaluator / route-around internals
  Core,     ///< core::TaxonomyIndex and friends
  Cost,     ///< cost::CostPlan evaluation
  Noc,      ///< interconnect route / route-around
  Mark,     ///< instant markers (deadline expiry, shutdown)
  Net,      ///< wire + TCP server/client (accept, decode, enqueue, flush)
  Cluster,  ///< cluster tier (ring routing, hedging, proxy scatter/merge)
  Sim,      ///< workload lowering + machine simulation (SimulateRequest)
  Qos,      ///< admission decisions, WFQ dispatch, cancellation
};
inline constexpr std::size_t kCategoryCount = 16;
std::string_view to_string(Category category);

/// One recorded span.  `name` and `arg_name` point to static storage
/// (string literals at the instrumentation site) — recording never
/// copies or allocates.
struct Span {
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< nullptr = no annotation
  std::int64_t arg = 0;            ///< meaningful only with arg_name
  std::uint64_t id = 0;            ///< process-unique, 1-based
  std::uint64_t parent = 0;        ///< enclosing span on the same thread; 0 = root
  std::uint64_t trace_id = 0;      ///< originating request's wire trace id; 0 = none
  std::uint32_t thread = 0;        ///< Tracer registration-order thread index
  Category category = Category::Engine;
  std::int64_t start_ns = 0;       ///< monotonic, relative to the Tracer epoch
  /// Duration in ns; kInstant marks a zero-extent instant event
  /// (deadline expiry and similar markers).
  std::int64_t dur_ns = 0;

  static constexpr std::int64_t kInstant = -1;
  bool instant() const { return dur_ns == kInstant; }
};

/// Per-(ProfilePoint, process) aggregate: hot paths too cheap to span
/// individually (a 4 ns classify) tick these instead.
enum class ProfilePoint : std::uint8_t {
  ClassifyFast,   ///< core::TaxonomyIndex::classify
  CostEvaluate,   ///< cost::CostPlan::evaluate
  SweepCell,      ///< explore::SweepEvaluator::evaluate_cell
  CurveTrial,     ///< fault::CurveEvaluator::evaluate_cell
  NocReroute,     ///< interconnect::MeshNoc::rebuild_routes (timed)
  RouteAround,    ///< fault::analyze_noc replay (timed)
  OmegaRoute,     ///< interconnect::OmegaNetwork::connect
  SweepBatch,     ///< one batch-kernel block (timed; sweep/curve evaluate_range)
};
inline constexpr std::size_t kProfilePointCount = 8;
std::string_view to_string(ProfilePoint point);

struct ProfileTotals {
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;  ///< 0 for count-only points
};

/// Frozen, deterministic view of everything recorded so far: spans
/// sorted by (start_ns, id) — ids are process-unique, so the order is a
/// total one and both exporters are pure functions of this value.
struct TraceSnapshot {
  std::vector<Span> spans;
  std::array<ProfileTotals, kProfilePointCount> profile{};
  std::uint64_t dropped = 0;  ///< spans evicted by ring wrap-around
  std::uint32_t thread_count = 0;
};

namespace detail {

/// The process-wide on/off switch.  A namespace-scope atomic (constant
/// initialisation, no Meyers-singleton guard) so the disabled fast path
/// is exactly one relaxed load and one predicted branch — the < 2 ns
/// budget bench_trace enforces.
inline std::atomic<bool> g_enabled{false};

// Out-of-line slow paths (trace.cpp); called only while enabled.
std::uint64_t begin_span();
void end_span(const char* name, const char* arg_name, std::int64_t arg,
              std::uint64_t id, std::uint64_t parent, Category category,
              std::int64_t start_ns, std::int64_t dur_ns);
std::int64_t now_ns();
std::uint64_t current_parent();
void set_current_parent(std::uint64_t id);
std::uint64_t current_trace_id();
void set_current_trace_id(std::uint64_t trace_id);
void profile_add(ProfilePoint point, std::uint64_t calls, std::int64_t ns);

}  // namespace detail

/// Whether spans are currently being recorded.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Trace id every span recorded on this thread is currently stamped
/// with (0 = no request context).  Set by TraceContextScope; read only
/// on the enabled recording path, so the disabled cost stays at one
/// relaxed load + branch.
inline std::uint64_t current_trace_id() {
  return detail::current_trace_id();
}

/// RAII request context: stamps every span the calling thread records
/// while alive with @p trace_id, restoring the previous context on
/// destruction.  Cheap enough to install unconditionally (two
/// thread-local stores) — the server's dispatch path and the engine's
/// workers wrap request execution in one of these so the wire-v2 trace
/// id reaches every engine / chunk / merge span, not just the
/// cluster-layer instants.
class TraceContextScope {
 public:
  explicit TraceContextScope(std::uint64_t trace_id)
      : saved_(detail::current_trace_id()) {
    detail::set_current_trace_id(trace_id);
  }
  ~TraceContextScope() { detail::set_current_trace_id(saved_); }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// Process-wide span sink: per-thread lock-free ring buffers (each
/// thread writes only its own buffer; one relaxed store per field and a
/// release publish, no lock, no allocation after the buffer exists)
/// behind a registry a snapshot walks.
///
/// Disabled (the default), every instrumentation hook is one relaxed
/// load + branch.  Enabled, a span costs two clock reads plus the slot
/// stores.  Snapshots may race recording: spans whose slot could have
/// been overwritten mid-copy are discarded by index arithmetic, so a
/// returned span is always fully written — never torn (the concurrency
/// test in tests/test_trace.cpp runs this under TSan).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;  ///< spans/thread

  static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Start recording.  The first enable() fixes the epoch all start_ns
  /// values are relative to.
  void enable();
  void disable();

  /// Drop every recorded span and profile total (keeps registered
  /// buffers, resizing them to the current capacity).  Call quiescent —
  /// concurrent recorders may interleave, though nothing tears.
  void clear();

  /// Ring capacity (spans) for each per-thread buffer; rounded up to a
  /// power of two.  Applies to buffers registered after the call and to
  /// existing buffers at the next clear().
  void set_capacity_per_thread(std::size_t spans);

  /// ns since the epoch (0 before the first enable()).
  std::int64_t now_ns() const;

  /// The steady_clock epoch (ns since the clock's own epoch) fixed by
  /// the first enable(); 0 before that.
  std::int64_t epoch_ns() const {
    return epoch_ns_.load(std::memory_order_acquire);
  }

  TraceSnapshot snapshot() const;

  /// What one exporter drain() returns: every fully-written span pushed
  /// since the previous drain(), plus how many were lost to ring
  /// wrap-around in between.  Unlike snapshot(), spans come back in
  /// per-thread push order (exporters do not need the global sort).
  struct DrainResult {
    std::vector<Span> spans;
    std::uint64_t dropped = 0;  ///< wrapped past the cursor before this drain
  };

  /// Incremental export: copy spans the exporter has not seen yet and
  /// advance the exporter's persistent per-ring read cursor.  The cursor
  /// is owned by drain() alone — snapshot() never reads or moves it, so
  /// on-demand dumps taken mid-stream neither double-export nor starve
  /// the streamer, and drain() never returns the same span twice.
  /// Single consumer: at most one exporter may call drain().
  DrainResult drain();

  /// Opaque per-thread ring; defined in trace.cpp.  Public only so the
  /// thread_local registration pointer can name the type.
  struct ThreadBuffer;

 private:
  Tracer() = default;
  friend std::uint64_t detail::begin_span();
  friend void detail::end_span(const char*, const char*, std::int64_t,
                               std::uint64_t, std::uint64_t, Category,
                               std::int64_t, std::int64_t);
  friend std::int64_t detail::now_ns();
  friend void detail::profile_add(ProfilePoint, std::uint64_t, std::int64_t);

  ThreadBuffer& local_buffer();

  mutable std::mutex registry_mutex_;
  std::vector<ThreadBuffer*> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  std::atomic<std::int64_t> epoch_ns_{0};  ///< steady_clock epoch, ns
  std::atomic<bool> epoch_set_{false};
  std::atomic<std::uint64_t> next_id_{1};
};

/// RAII span.  Construction with the tracer disabled is the no-op fast
/// path; destruction then touches nothing but a register test.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Category category) {
    if (!enabled()) [[likely]] {
      return;
    }
    begin(name, category);
  }
  ScopedSpan(const char* name, Category category, const char* arg_name,
             std::int64_t arg)
      : ScopedSpan(name, category) {
    annotate(arg_name, arg);
  }
  ~ScopedSpan() {
    if (id_ != 0) [[unlikely]] {
      end();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach one (key, integer) annotation; no-op when not recording.
  void annotate(const char* arg_name, std::int64_t arg) {
    if (id_ != 0) [[unlikely]] {
      arg_name_ = arg_name;
      arg_ = arg;
    }
  }
  bool active() const { return id_ != 0; }

 private:
  void begin(const char* name, Category category);
  void end();

  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  Category category_ = Category::Engine;
};

/// Record a span for an interval measured elsewhere (e.g. queue wait:
/// enqueue happened on the submitting thread, the wait is known only at
/// dequeue).  The span is attributed to the calling thread.
void emit_span(const char* name, Category category,
               std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end,
               const char* arg_name = nullptr, std::int64_t arg = 0);

/// Record a zero-extent instant marker (deadline expiry and similar).
void emit_instant(const char* name, Category category,
                  const char* arg_name = nullptr, std::int64_t arg = 0);

/// Count-only profiling hook for paths too hot to time per call.
inline void profile_count(ProfilePoint point) {
  if (!enabled()) [[likely]] {
    return;
  }
  detail::profile_add(point, 1, 0);
}

/// Bulk count hook: one tick covering @p calls logical operations.  The
/// batch kernels use this so per-point accounting (cost evaluations,
/// sweep cells, curve trials) stays accurate without a hook inside the
/// lane loop — profile totals read the same as the scalar path's.
inline void profile_count_n(ProfilePoint point, std::uint64_t calls) {
  if (!enabled()) [[likely]] {
    return;
  }
  if (calls != 0) detail::profile_add(point, calls, 0);
}

/// Timed profiling hook (two clock reads when enabled) for coarse
/// operations: route-table rebuilds, traffic replays.
class ProfileTimer {
 public:
  explicit ProfileTimer(ProfilePoint point) {
    if (!enabled()) [[likely]] {
      return;
    }
    point_ = point;
    armed_ = true;
    start_ = std::chrono::steady_clock::now();
  }
  ~ProfileTimer() {
    if (armed_) [[unlikely]] {
      detail::profile_add(
          point_, 1,
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }
  }

  ProfileTimer(const ProfileTimer&) = delete;
  ProfileTimer& operator=(const ProfileTimer&) = delete;

 private:
  ProfilePoint point_ = ProfilePoint::ClassifyFast;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mpct::trace
