#include "workload/workload.hpp"

namespace mpct::workload {

namespace {

/// splitmix64 — the same generator the fingerprinting layer uses, so
/// input streams are stable across platforms and releases.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view to_string(Kernel kernel) {
  switch (kernel) {
    case Kernel::Stencil5: return "stencil5";
    case Kernel::Reduce:   return "reduce";
    case Kernel::Saxpy:    return "saxpy";
  }
  return "?";
}

std::optional<Kernel> kernel_from_name(std::string_view name) {
  if (name == "stencil5") return Kernel::Stencil5;
  if (name == "reduce") return Kernel::Reduce;
  if (name == "saxpy") return Kernel::Saxpy;
  return std::nullopt;
}

std::string validate(const WorkloadSpec& spec) {
  switch (spec.kernel) {
    case Kernel::Stencil5:
      if (spec.size < 3 || spec.size > 128) {
        return "stencil5 grid side must be 3..128, got " +
               std::to_string(spec.size);
      }
      if (spec.iterations < 1 || spec.iterations > 1024) {
        return "stencil5 iterations must be 1..1024, got " +
               std::to_string(spec.iterations);
      }
      break;
    case Kernel::Reduce:
    case Kernel::Saxpy:
      if (spec.size < 1 || spec.size > 4096) {
        return std::string(to_string(spec.kernel)) +
               " size must be 1..4096, got " + std::to_string(spec.size);
      }
      if (spec.iterations != 1) {
        return std::string(to_string(spec.kernel)) +
               " is single-pass: iterations must be 1, got " +
               std::to_string(spec.iterations);
      }
      break;
    default:
      return "unknown kernel " +
             std::to_string(static_cast<int>(spec.kernel));
  }
  if (total_work(spec) > (std::int64_t{1} << 20)) {
    return "workload too large: " + std::to_string(total_work(spec)) +
           " cell updates exceeds the 2^20 cap";
  }
  return {};
}

std::int64_t total_work(const WorkloadSpec& spec) {
  const std::int64_t n = spec.size;
  switch (spec.kernel) {
    case Kernel::Stencil5: return n * n * spec.iterations;
    case Kernel::Reduce:   return n;
    case Kernel::Saxpy:    return n;
  }
  return 0;
}

std::int64_t input_words(const WorkloadSpec& spec) {
  const std::int64_t n = spec.size;
  switch (spec.kernel) {
    case Kernel::Stencil5: return n * n;
    case Kernel::Reduce:   return n;
    case Kernel::Saxpy:    return 2 * n;
  }
  return 0;
}

std::int64_t output_words(const WorkloadSpec& spec) {
  const std::int64_t n = spec.size;
  switch (spec.kernel) {
    case Kernel::Stencil5: return n * n;
    case Kernel::Reduce:   return 1;
    case Kernel::Saxpy:    return n;
  }
  return 0;
}

std::vector<sim::Word> make_input(const WorkloadSpec& spec,
                                  std::uint64_t seed) {
  const std::int64_t count = input_words(spec);
  std::vector<sim::Word> input;
  input.reserve(static_cast<std::size_t>(count));
  // Small non-negative values: sums of five stay far from overflow and
  // the truncating division matches on host and machine alike.
  for (std::int64_t i = 0; i < count; ++i) {
    input.push_back(static_cast<sim::Word>(
        splitmix64(seed + static_cast<std::uint64_t>(i)) % 1024));
  }
  return input;
}

std::vector<sim::Word> reference_output(const WorkloadSpec& spec,
                                        std::uint64_t seed) {
  const std::vector<sim::Word> input = make_input(spec, seed);
  switch (spec.kernel) {
    case Kernel::Stencil5: {
      const std::int64_t s = spec.size;
      std::vector<sim::Word> src = input;
      std::vector<sim::Word> dst(src.size());
      for (std::int32_t it = 0; it < spec.iterations; ++it) {
        dst = src;  // boundary carried unchanged
        for (std::int64_t i = 1; i < s - 1; ++i) {
          for (std::int64_t j = 1; j < s - 1; ++j) {
            const std::size_t at = static_cast<std::size_t>(i * s + j);
            const sim::Word sum =
                src[at] + src[at - 1] + src[at + 1] +
                src[at - static_cast<std::size_t>(s)] +
                src[at + static_cast<std::size_t>(s)];
            dst[at] = sum / 5;
          }
        }
        std::swap(src, dst);
      }
      return src;
    }
    case Kernel::Reduce: {
      sim::Word sum = 0;
      for (sim::Word w : input) sum += w;
      return {sum};
    }
    case Kernel::Saxpy: {
      const std::int64_t n = spec.size;
      std::vector<sim::Word> out(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] =
            spec.alpha * input[static_cast<std::size_t>(i)] +
            input[static_cast<std::size_t>(n + i)];
      }
      return out;
    }
  }
  return {};
}

std::uint64_t checksum(std::span<const sim::Word> words) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (sim::Word word : words) {
    std::uint64_t bits = static_cast<std::uint64_t>(word);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffULL;
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  }
  return hash;
}

}  // namespace mpct::workload
