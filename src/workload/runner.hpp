#pragma once

#include <cstdint>

#include "core/machine_class.hpp"
#include "core/naming.hpp"
#include "fault/fault_model.hpp"
#include "workload/lowering.hpp"
#include "workload/workload.hpp"

namespace mpct::workload {

/// Knobs of one simulation run.
struct RunOptions {
  /// Machine width: SIMD lanes, MIMD cores, dataflow PEs, or CGRA FUs
  /// (ignored by the uniprocessor).
  std::int32_t width = 8;
  /// Cycle budget; a run that exhausts it returns halted = false.
  std::int64_t max_cycles = 4'000'000;

  friend bool operator==(const RunOptions&, const RunOptions&) = default;
};

/// Everything one simulation run produced, flattened to PODs so it
/// fingerprints, compares and travels the wire trivially.  Two runs of
/// the same (spec, class, options, faults, seed) are byte-identical.
struct WorkloadResult {
  Paradigm paradigm = Paradigm::Uniprocessor;
  TaxonomicName machine;
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  bool halted = false;
  std::int32_t output_words = 0;
  std::uint64_t output_checksum = 0;
  /// Output equals workload::reference_output word for word.
  bool matches_reference = false;
  std::int64_t memory_accesses = 0;
  /// Inter-processor messages the lowering issued (multiprocessor) or
  /// cross-PE token transfers (dataflow); 0 elsewhere.
  std::int64_t messages = 0;
  double energy_pj = 0;
  /// Surviving ordered-pair connectivity of the full mesh NoC after
  /// faults (dead routers count as lost pairs); 1.0 for fault-free runs
  /// and paradigms without a mesh.
  double noc_reachable_fraction = 1.0;

  friend bool operator==(const WorkloadResult&,
                         const WorkloadResult&) = default;
};

/// Lower @p spec onto the machine @p mc names, apply @p faults to the
/// fabric, run to completion and price the activity.
///
/// Deterministic: the same arguments produce the same WorkloadResult on
/// every platform and thread count.  Faults degrade honestly — a dead
/// router/link in the multiprocessor's mesh re-routes messages over the
/// surviving topology (more cycles), a fault that removes a component
/// the fixed mapping needs raises LoweringError, and a mesh split in
/// two raises LoweringError ("faults disconnect the mesh").
///
/// Throws LoweringError when the class cannot execute the kernel (no
/// taxonomic name, missing crossbar, fabric too small, fatal faults);
/// sim::SimError escapes for genuine machine traps.
WorkloadResult run_workload(const WorkloadSpec& spec, const MachineClass& mc,
                            const RunOptions& options = {},
                            const fault::FaultSet& faults = {},
                            std::uint64_t seed = 0);

/// Same, for a class given by taxonomic name (e.g. parse "IMP-XVI").
WorkloadResult run_workload(const WorkloadSpec& spec,
                            const TaxonomicName& name,
                            const RunOptions& options = {},
                            const fault::FaultSet& faults = {},
                            std::uint64_t seed = 0);

}  // namespace mpct::workload
