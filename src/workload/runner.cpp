#include "workload/runner.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/classifier.hpp"
#include "cost/energy.hpp"
#include "fault/route_around.hpp"
#include "interconnect/mesh_noc.hpp"
#include "sim/cgra/cgra.hpp"
#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/isa/uniprocessor.hpp"
#include "sim/memory.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/simd/array_processor.hpp"

namespace mpct::workload {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

sim::Program assemble_lowering(const std::string& source) {
  const sim::AssemblyResult assembled = sim::assemble(source);
  if (!assembled.ok()) {
    std::string message = "lowering produced invalid assembly:";
    for (const sim::AsmError& error : assembled.errors) {
      message += " ";
      message += error.to_string();
    }
    throw LoweringError(message);
  }
  return assembled.program;
}

/// Words of data memory each kernel addresses (input + working set +
/// output/scratch regions, as laid out by the lowerings).
std::int64_t data_words(const WorkloadSpec& spec, Paradigm paradigm,
                        int width) {
  const std::int64_t n = spec.size;
  switch (spec.kernel) {
    case Kernel::Stencil5:
      // Double-buffered grid, plus the SIMD predication scratch word.
      return 2 * n * n + (paradigm == Paradigm::ArrayProcessor ? 1 : 0);
    case Kernel::Reduce:
      // The SIMD lowering parks per-lane partials after the data.
      return n + (paradigm == Paradigm::ArrayProcessor ? width : 0);
    case Kernel::Saxpy:
      return 3 * n + (paradigm == Paradigm::ArrayProcessor ? 1 : 0);
  }
  return 0;
}

/// Spread the flat global data image over the machine's banks (the
/// DP-DM crossbar's address split: bank = addr / bank_words).
template <typename MachineT>
void fill_banks(MachineT& machine, int banks, std::size_t bank_words,
                const std::vector<sim::Word>& data) {
  for (int b = 0; b < banks; ++b) {
    const std::size_t begin = static_cast<std::size_t>(b) * bank_words;
    if (begin >= data.size()) break;
    const std::size_t end = std::min(data.size(), begin + bank_words);
    machine.bank(b).fill(
        std::vector<sim::Word>(data.begin() + static_cast<std::ptrdiff_t>(begin),
                               data.begin() + static_cast<std::ptrdiff_t>(end)));
  }
}

/// A fault that removes a block the fixed lowering occupies is fatal —
/// the partition is compiled in, there is nothing to migrate to.  Dead
/// blocks beyond the used population are spares and stay inert, as do
/// switch-port faults (the crossbars here are all-or-nothing) and NoC
/// faults (handled by the mesh route-around below).
void check_block_faults(const fault::FaultSet& faults, Paradigm paradigm,
                        const TaxonomicName& name, int used_units) {
  for (const fault::Fault& f : faults.faults()) {
    bool fatal = false;
    switch (f.kind) {
      case fault::FaultKind::IpDead:
        fatal = (paradigm == Paradigm::Uniprocessor ||
                 paradigm == Paradigm::ArrayProcessor)
                    ? f.index == 0
                    : (paradigm == Paradigm::Multiprocessor ||
                       (paradigm == Paradigm::Cgra &&
                        name.machine_type == MachineType::InstructionFlow)) &&
                          f.index >= 0 && f.index < used_units;
        break;
      case fault::FaultKind::DpDead:
        fatal = paradigm == Paradigm::Uniprocessor
                    ? f.index == 0
                    : paradigm != Paradigm::Cgra ||
                              name.machine_type == MachineType::InstructionFlow
                          ? f.index >= 0 && f.index < used_units
                          : false;
        break;
      case fault::FaultKind::LutDead:
        fatal = paradigm == Paradigm::Cgra &&
                name.machine_type == MachineType::UniversalFlow &&
                f.index >= 0 && f.index < used_units;
        break;
      case fault::FaultKind::SwitchPortDead:
      case fault::FaultKind::NocRouterDead:
      case fault::FaultKind::NocLinkDead:
        break;
    }
    if (fatal) {
      throw LoweringError("fault " + fault::to_string(f) +
                          " removes a block the " +
                          std::string(to_string(paradigm)) +
                          " lowering occupies (" +
                          std::to_string(used_units) + " in use)");
    }
  }
}

/// Shortest surviving path length between every core pair of the
/// degraded mesh — deterministic BFS with the same fixed neighbour
/// order the MeshNoc router uses (-x +x -y +y).  -1 = unroutable.
std::vector<std::int64_t> mesh_pair_latency(
    const interconnect::MeshNoc& noc, int cores) {
  std::vector<std::int64_t> table(
      static_cast<std::size_t>(cores) * static_cast<std::size_t>(cores), -1);
  std::vector<std::int64_t> dist(static_cast<std::size_t>(noc.node_count()));
  std::vector<int> queue;
  for (int from = 0; from < cores; ++from) {
    std::fill(dist.begin(), dist.end(), -1);
    queue.clear();
    if (noc.node_alive(from)) {
      dist[static_cast<std::size_t>(from)] = 0;
      queue.push_back(from);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int cur = queue[head];
      const int x = noc.x_of(cur);
      const int y = noc.y_of(cur);
      const int candidates[4][2] = {{x - 1, y}, {x + 1, y}, {x, y - 1},
                                    {x, y + 1}};
      for (const auto& nb : candidates) {
        if (nb[0] < 0 || nb[0] >= noc.width() || nb[1] < 0 ||
            nb[1] >= noc.height()) {
          continue;
        }
        const int next = noc.node_id(nb[0], nb[1]);
        if (dist[static_cast<std::size_t>(next)] >= 0) continue;
        if (!noc.node_alive(next) || !noc.link_alive(cur, next)) continue;
        dist[static_cast<std::size_t>(next)] =
            dist[static_cast<std::size_t>(cur)] + 1;
        queue.push_back(next);
      }
    }
    for (int to = 0; to < cores; ++to) {
      table[static_cast<std::size_t>(from) * static_cast<std::size_t>(cores) +
            static_cast<std::size_t>(to)] =
          dist[static_cast<std::size_t>(to)];
    }
  }
  return table;
}

bool has_noc_faults(const fault::FaultSet& faults) {
  return faults.count(fault::FaultKind::NocRouterDead) > 0 ||
         faults.count(fault::FaultKind::NocLinkDead) > 0;
}

}  // namespace

WorkloadResult run_workload(const WorkloadSpec& spec, const MachineClass& mc,
                            const RunOptions& options,
                            const fault::FaultSet& faults,
                            std::uint64_t seed) {
  const std::string problem = validate(spec);
  if (!problem.empty()) throw LoweringError(problem);
  if (options.width < 1 || options.width > 64) {
    throw LoweringError("width must be 1..64, got " +
                        std::to_string(options.width));
  }
  if (options.max_cycles < 1) {
    throw LoweringError("max_cycles must be positive");
  }

  const Classification classification = classify(mc);
  if (!classification.ok()) {
    throw LoweringError("machine is not a runnable taxonomy class: " +
                        classification.note);
  }
  const TaxonomicName name = *classification.name;
  const Paradigm paradigm = paradigm_of(name);
  const int width = options.width;

  const std::vector<sim::Word> input = make_input(spec, seed);
  const std::vector<sim::Word> reference = reference_output(spec, seed);

  WorkloadResult result;
  result.paradigm = paradigm;
  result.machine = name;

  cost::ActivityCounts activity;
  bool has_instruction_processor = true;
  std::vector<sim::Word> output;

  switch (paradigm) {
    case Paradigm::Uniprocessor: {
      check_block_faults(faults, paradigm, name, 1);
      sim::Uniprocessor machine(
          assemble_lowering(uniprocessor_program(spec)),
          static_cast<std::size_t>(data_words(spec, paradigm, 1)));
      machine.dm().fill(input);
      const sim::RunStats stats = machine.run(options.max_cycles);
      result.cycles = stats.cycles;
      result.instructions = stats.instructions;
      result.halted = stats.halted;
      output = stats.output;
      activity.instructions = stats.instructions;
      activity.memory_accesses = static_cast<std::int64_t>(
          machine.dm().loads() + machine.dm().stores());
      break;
    }

    case Paradigm::ArrayProcessor: {
      if (mc.switch_at(ConnectivityRole::DpDm) != SwitchKind::Crossbar) {
        throw LoweringError(
            to_string(name) +
            " has lane-local memory only; this kernel needs the shared "
            "address space of the DP-DM crossbar (IAP-III/IV)");
      }
      check_block_faults(faults, paradigm, name, width);
      sim::ArrayProcessorConfig config;
      config.lanes = width;
      config.dp_dm = SwitchKind::Crossbar;
      config.dp_dp = mc.switch_at(ConnectivityRole::DpDp);
      const std::int64_t total = data_words(spec, paradigm, width);
      config.bank_words =
          static_cast<std::size_t>(std::max<std::int64_t>(
              ceil_div(total, width), 4));
      sim::ArrayProcessor machine(assemble_lowering(array_program(spec, width)),
                                  config);
      fill_banks(machine, machine.banks(), config.bank_words, input);
      const sim::RunStats stats = machine.run(options.max_cycles);
      result.cycles = stats.cycles;
      result.instructions = stats.instructions;
      result.halted = stats.halted;
      output = stats.output;
      activity.instructions = stats.instructions;
      for (int b = 0; b < machine.banks(); ++b) {
        activity.memory_accesses += static_cast<std::int64_t>(
            machine.bank(b).loads() + machine.bank(b).stores());
      }
      break;
    }

    case Paradigm::Multiprocessor: {
      if (mc.switch_at(ConnectivityRole::DpDm) != SwitchKind::Crossbar) {
        throw LoweringError(
            to_string(name) +
            " has core-local memory only; this kernel needs the shared "
            "address space of the DP-DM crossbar");
      }
      const bool has_network =
          mc.switch_at(ConnectivityRole::DpDp) == SwitchKind::Crossbar;
      if (width > 1 && !has_network) {
        throw LoweringError(
            to_string(name) +
            " has no DP-DP network: " + std::to_string(width) +
            " cores cannot synchronise (use width 1 or e.g. IMP-IV)");
      }
      check_block_faults(faults, paradigm, name, width);

      sim::MultiprocessorConfig config;
      config.cores = width;
      config.dp_dm = SwitchKind::Crossbar;
      config.dp_dp = mc.switch_at(ConnectivityRole::DpDp);
      const std::int64_t total = data_words(spec, paradigm, width);
      config.bank_words = static_cast<std::size_t>(
          std::max<std::int64_t>(ceil_div(total, width), 4));

      const std::vector<std::pair<int, int>> messages =
          multiprocessor_messages(spec, width);
      std::vector<std::int64_t> hop_table;
      if (has_network && width > 1) {
        // Cores laid out row-major on a near-square mesh: the NoC the
        // fault model degrades and the message-latency model prices.
        int mesh_w = 1;
        while (mesh_w * mesh_w < width) ++mesh_w;
        const int mesh_h = static_cast<int>(ceil_div(width, mesh_w));
        config.mesh_width = mesh_w;
        fault::FabricShape shape;
        shape.dps = width;
        shape.noc_width = mesh_w;
        shape.noc_height = mesh_h;
        const interconnect::MeshNoc noc =
            fault::build_degraded_noc(shape, faults);
        // Ordered-pair connectivity over the *full* mesh, dead routers
        // included — MeshNoc::reachable_fraction() scores only the
        // surviving nodes among themselves, which reads 1.0 the moment
        // the dead ones are excluded.  A lost spare router should still
        // show up in the result.
        const int nodes = noc.node_count();
        if (nodes > 1) {
          std::int64_t connected = 0;
          for (int s = 0; s < nodes; ++s) {
            for (int d = 0; d < nodes; ++d) {
              if (s != d && noc.routable(s, d)) ++connected;
            }
          }
          result.noc_reachable_fraction =
              static_cast<double>(connected) /
              (static_cast<double>(nodes) * (nodes - 1));
        }
        hop_table = mesh_pair_latency(noc, width);
        if (has_noc_faults(faults)) {
          for (const auto& [from, to] : messages) {
            if (hop_table[static_cast<std::size_t>(from) *
                              static_cast<std::size_t>(width) +
                          static_cast<std::size_t>(to)] < 0) {
              throw LoweringError(
                  "faults disconnect the mesh: no surviving route from "
                  "core " +
                  std::to_string(from) + " to core " + std::to_string(to));
            }
          }
          config.pair_latency = hop_table;
        }
      }

      std::vector<sim::Program> programs;
      for (const std::string& source : multiprocessor_programs(spec, width)) {
        programs.push_back(assemble_lowering(source));
      }
      sim::Multiprocessor machine(std::move(programs), config);
      fill_banks(machine, width, config.bank_words, input);
      const sim::RunStats stats = machine.run(options.max_cycles);
      result.cycles = stats.cycles;
      result.instructions = stats.instructions;
      result.halted = stats.halted;
      output = stats.output;
      result.messages = static_cast<std::int64_t>(messages.size());
      activity.instructions = stats.instructions;
      for (int b = 0; b < width; ++b) {
        activity.memory_accesses += static_cast<std::int64_t>(
            machine.bank(b).loads() + machine.bank(b).stores());
      }
      for (const auto& [from, to] : messages) {
        std::int64_t hops = 1;
        if (!hop_table.empty()) {
          hops = std::max<std::int64_t>(
              1, hop_table[static_cast<std::size_t>(from) *
                               static_cast<std::size_t>(width) +
                           static_cast<std::size_t>(to)]);
        }
        activity.interconnect_hops += hops;
      }
      break;
    }

    case Paradigm::Dataflow: {
      const int pes = name.subtype == 0 ? 1 : width;
      check_block_faults(faults, paradigm, name, pes);
      const sim::df::TokenMachineConfig config =
          name.subtype == 0
              ? sim::df::TokenMachineConfig::uniprocessor()
              : sim::df::TokenMachineConfig::for_subtype(name.subtype, pes);
      const sim::df::Graph graph = dataflow_graph(spec);
      std::vector<std::pair<std::string, sim::Word>> bindings;
      bindings.reserve(input.size());
      for (std::size_t i = 0; i < input.size(); ++i) {
        std::string port = "c";
        port += std::to_string(i);
        bindings.emplace_back(std::move(port), input[i]);
      }
      const sim::df::TokenMachine machine(graph, config);
      const sim::df::DataflowRunResult run =
          machine.run(bindings, options.max_cycles);
      result.cycles = run.stats.cycles;
      result.instructions = run.stats.instructions;
      result.halted = run.stats.halted;
      output.reserve(run.outputs.size());
      for (const auto& [output_name, value] : run.outputs) {
        (void)output_name;
        output.push_back(value);
      }
      activity.instructions = run.stats.instructions;
      // Tokens crossing PEs travel the class's transfer path (DP-DP
      // crossbar, or through shared memory on DMP-III).
      std::int64_t crossings = 0;
      for (sim::df::NodeId node = 0; node < graph.node_count(); ++node) {
        for (const sim::df::NodeId producer : graph.node(node).inputs) {
          if (run.placement[static_cast<std::size_t>(node)] !=
              run.placement[static_cast<std::size_t>(producer)]) {
            ++crossings;
          }
        }
      }
      result.messages = crossings;
      const std::int64_t hop_cost =
          config.dp_dp == SwitchKind::Crossbar ? config.cross_latency
                                               : config.memory_latency;
      activity.interconnect_hops = crossings * hop_cost;
      has_instruction_processor = false;
      break;
    }

    case Paradigm::Cgra: {
      const bool windowed =
          name.machine_type == MachineType::InstructionFlow &&
          mc.switch_at(ConnectivityRole::DpDp) != SwitchKind::Crossbar;
      CgraKernel kernel = cgra_kernel(spec, width);
      sim::cgra::CgraShape shape;
      shape.fus = width;
      shape.contexts = 16;
      shape.primary_inputs =
          static_cast<int>(kernel.graph.input_nodes().size());
      shape.window = windowed ? 1 : -1;
      sim::cgra::Cgra cgra(shape);
      sim::cgra::Schedule schedule;
      try {
        schedule = sim::cgra::map_graph(kernel.graph, cgra);
      } catch (const sim::SimError& e) {
        throw LoweringError(std::string("kernel does not fit the ") +
                            std::string(to_string(name)) +
                            " fabric: " + e.what());
      }
      check_block_faults(faults, paradigm, name, schedule.fus_used);
      activity.config_bits_written = cgra.config_bits();
      has_instruction_processor = false;

      std::int64_t compute_nodes = 0;
      for (const int fu : schedule.node_fu) {
        if (fu >= 0) ++compute_nodes;
      }
      std::int64_t cycles = 0;
      std::int64_t passes = 0;
      bool budget_exhausted = false;
      const auto run_pass =
          [&](const std::vector<std::pair<std::string, sim::Word>>& inputs)
          -> std::optional<sim::Word> {
        if (cycles + schedule.depth > options.max_cycles) {
          budget_exhausted = true;
          return std::nullopt;
        }
        const auto outputs = sim::cgra::run_mapped(cgra, schedule, inputs);
        cycles += schedule.depth;
        ++passes;
        return outputs.front().second;
      };

      switch (spec.kernel) {
        case Kernel::Stencil5: {
          const std::int64_t s = spec.size;
          std::vector<sim::Word> src = input;
          std::vector<sim::Word> dst(src.size());
          for (std::int32_t it = 0;
               it < spec.iterations && !budget_exhausted; ++it) {
            dst = src;
            for (std::int64_t i = 1; i < s - 1 && !budget_exhausted; ++i) {
              for (std::int64_t j = 1; j < s - 1; ++j) {
                const std::size_t at = static_cast<std::size_t>(i * s + j);
                const auto value = run_pass(
                    {{"i0", src[at]},
                     {"i1", src[at - 1]},
                     {"i2", src[at + 1]},
                     {"i3", src[at - static_cast<std::size_t>(s)]},
                     {"i4", src[at + static_cast<std::size_t>(s)]}});
                if (!value) break;
                dst[at] = *value;
              }
            }
            if (!budget_exhausted) std::swap(src, dst);
          }
          output = src;
          break;
        }
        case Kernel::Reduce: {
          const int chunk = kernel.items_per_pass;
          sim::Word acc = 0;
          for (std::int64_t base = 0;
               base < spec.size && !budget_exhausted; base += chunk) {
            std::vector<std::pair<std::string, sim::Word>> inputs;
            inputs.emplace_back("i0", acc);
            for (int k = 0; k < chunk; ++k) {
              const std::int64_t at = base + k;
              std::string port = "i";
              port += std::to_string(k + 1);
              inputs.emplace_back(
                  std::move(port),
                  at < spec.size ? input[static_cast<std::size_t>(at)]
                                 : sim::Word{0});
            }
            const auto value = run_pass(inputs);
            if (!value) break;
            acc = *value;
          }
          output = {acc};
          break;
        }
        case Kernel::Saxpy: {
          const std::int64_t n = spec.size;
          output.assign(static_cast<std::size_t>(n), 0);
          for (std::int64_t k = 0; k < n && !budget_exhausted; ++k) {
            const auto value = run_pass(
                {{"i0", input[static_cast<std::size_t>(k)]},
                 {"i1", input[static_cast<std::size_t>(n + k)]}});
            if (!value) break;
            output[static_cast<std::size_t>(k)] = *value;
          }
          break;
        }
      }
      result.cycles = cycles;
      result.instructions = passes * compute_nodes;
      result.halted = !budget_exhausted;
      activity.instructions = result.instructions;
      break;
    }
  }

  const std::int64_t expected = output_words(spec);
  if (static_cast<std::int64_t>(output.size()) > expected) {
    // SIMD lanes and trailing passes over-emit by construction; the
    // leading `expected` words are the elements in layout order.
    output.resize(static_cast<std::size_t>(expected));
  }
  result.output_words = static_cast<std::int32_t>(output.size());
  result.output_checksum = checksum(output);
  result.matches_reference = output == reference;
  result.memory_accesses = activity.memory_accesses;
  result.energy_pj =
      cost::estimate_energy(activity, {}, has_instruction_processor)
          .total_pj();
  return result;
}

WorkloadResult run_workload(const WorkloadSpec& spec,
                            const TaxonomicName& name,
                            const RunOptions& options,
                            const fault::FaultSet& faults,
                            std::uint64_t seed) {
  const std::optional<MachineClass> mc = canonical_class(name);
  if (!mc) {
    throw LoweringError(to_string(name) +
                        " does not denote a canonical machine class");
  }
  return run_workload(spec, *mc, options, faults, seed);
}

}  // namespace mpct::workload
