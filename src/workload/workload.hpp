#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/word.hpp"

namespace mpct::workload {

/// Named kernel of the portable workload IR.  Each kernel has one
/// host-side reference semantics (reference_output) and one lowering per
/// executable paradigm (lowering.hpp) — the same workload runs on every
/// runnable class of the taxonomy and must produce the same output.
enum class Kernel : std::uint8_t {
  /// 5-point Jacobi stencil on a size x size grid, `iterations` sweeps:
  /// interior cells become (c + n + s + e + w) / 5 (truncating integer
  /// division), boundary cells are carried unchanged.  The iterative
  /// mesh solver of the OpenMOC CMFD style, and the flagship workload
  /// for the mesh-NoC multiprocessor.
  Stencil5 = 0,
  /// Sum of `size` words into one output word.
  Reduce = 1,
  /// y[i] = alpha * x[i] + y[i] over `size` elements.
  Saxpy = 2,
};

inline constexpr std::size_t kKernelCount = 3;

std::string_view to_string(Kernel kernel);
std::optional<Kernel> kernel_from_name(std::string_view name);

/// One concrete workload instance.  The input data is *not* part of the
/// spec: it derives deterministically from (spec, seed) via make_input,
/// so a spec stays a few words on the wire no matter how large the
/// problem is.
struct WorkloadSpec {
  Kernel kernel = Kernel::Stencil5;
  /// Stencil5: grid side (>= 3).  Reduce/Saxpy: element count (>= 1).
  std::int32_t size = 8;
  /// Stencil5: Jacobi sweeps (>= 1).  Reduce/Saxpy: must be 1.
  std::int32_t iterations = 4;
  /// Saxpy's alpha coefficient; ignored by the other kernels.
  std::int64_t alpha = 3;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Empty string when the spec is well-formed, otherwise the problem.
/// Bounds are the service-layer caps (docs/WORKLOAD.md): size 1..4096
/// (stencil 3..128), iterations 1..1024, total_work <= 2^20.
std::string validate(const WorkloadSpec& spec);

/// Cell updates the kernel performs — the work cap validate() enforces
/// and the denominator of the bench's cells/s rate.
std::int64_t total_work(const WorkloadSpec& spec);

/// Words of input data the kernel consumes (stencil: size^2; reduce:
/// size; saxpy: 2 * size — x then y).
std::int64_t input_words(const WorkloadSpec& spec);

/// Words of output the kernel produces (stencil: size^2; reduce: 1;
/// saxpy: size).
std::int64_t output_words(const WorkloadSpec& spec);

/// Deterministic input data for (spec, seed): splitmix64-derived words
/// in [0, 1024), identical on every platform.  Layout matches
/// input_words()'s documentation.
std::vector<sim::Word> make_input(const WorkloadSpec& spec,
                                  std::uint64_t seed);

/// Host-side golden semantics: the output every lowering must
/// reproduce word for word.
std::vector<sim::Word> reference_output(const WorkloadSpec& spec,
                                        std::uint64_t seed);

/// FNV-1a 64 over each word's 8 little-endian bytes —
/// platform-independent, and the value the service caches and the
/// replay harness compares.
std::uint64_t checksum(std::span<const sim::Word> words);

}  // namespace mpct::workload
