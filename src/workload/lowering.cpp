#include "workload/lowering.hpp"

#include <algorithm>
#include <utility>

namespace mpct::workload {

namespace {

using std::to_string;

std::string str(std::int64_t value) { return std::to_string(value); }

/// ceil(a / b) for positive b.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Contiguous partition of [0, total) into `parts` chunks, remainder
/// spread over the leading chunks — the standard balanced split every
/// lowering uses, so core/lane ownership is deterministic.
std::pair<std::int64_t, std::int64_t> chunk_bounds(std::int64_t total,
                                                   int parts, int index) {
  const std::int64_t q = total / parts;
  const std::int64_t r = total % parts;
  const std::int64_t begin =
      static_cast<std::int64_t>(index) * q + std::min<std::int64_t>(index, r);
  const std::int64_t end = begin + q + (index < r ? 1 : 0);
  return {begin, end};
}

/// Tiny line-oriented assembler-source builder.
struct Asm {
  std::string text;
  void line(const std::string& statement) {
    text += statement;
    text += '\n';
  }
};

// ---- IUP -------------------------------------------------------------

std::string uni_stencil(const WorkloadSpec& spec) {
  const std::int64_t s = spec.size;
  const std::int64_t s2 = s * s;
  Asm a;
  a.line("; stencil5 s=" + str(s) + " t=" + str(spec.iterations) + " (IUP)");
  a.line("ldi r1, 0");          // src base
  a.line("ldi r2, " + str(s2)); // dst base
  a.line("ldi r8, " + str(s));
  a.line("ldi r10, " + str(s - 1));
  a.line("ldi r11, " + str(s2));
  a.line("ldi r12, 5");
  a.line("ldi r13, " + str(spec.iterations));
  a.line("ldi r9, 0");
  a.line("iter:");
  // Carry the whole grid (boundary included), then overwrite the
  // interior — branch-free boundary handling.
  a.line("ldi r3, 0");
  a.line("copy:");
  a.line("add r5, r1, r3");
  a.line("ld r6, r5, 0");
  a.line("add r5, r2, r3");
  a.line("st r5, r6, 0");
  a.line("addi r3, r3, 1");
  a.line("blt r3, r11, copy");
  a.line("ldi r3, 1");
  a.line("row:");
  a.line("ldi r4, 1");
  a.line("col:");
  a.line("mul r5, r3, r8");
  a.line("add r5, r5, r4");
  a.line("add r5, r5, r1");
  a.line("ld r7, r5, 0");
  a.line("ld r6, r5, 1");
  a.line("add r7, r7, r6");
  a.line("ld r6, r5, -1");
  a.line("add r7, r7, r6");
  a.line("ld r6, r5, " + str(s));
  a.line("add r7, r7, r6");
  a.line("ld r6, r5, " + str(-s));
  a.line("add r7, r7, r6");
  a.line("divs r7, r7, r12");
  a.line("sub r5, r5, r1");
  a.line("add r5, r5, r2");
  a.line("st r5, r7, 0");
  a.line("addi r4, r4, 1");
  a.line("blt r4, r10, col");
  a.line("addi r3, r3, 1");
  a.line("blt r3, r10, row");
  a.line("mov r15, r1");
  a.line("mov r1, r2");
  a.line("mov r2, r15");
  a.line("addi r9, r9, 1");
  a.line("blt r9, r13, iter");
  a.line("ldi r3, 0");
  a.line("emit:");
  a.line("add r5, r1, r3");
  a.line("ld r6, r5, 0");
  a.line("out r6");
  a.line("addi r3, r3, 1");
  a.line("blt r3, r11, emit");
  a.line("halt");
  return a.text;
}

std::string uni_reduce(const WorkloadSpec& spec) {
  Asm a;
  a.line("; reduce n=" + str(spec.size) + " (IUP)");
  a.line("ldi r1, 0");
  a.line("ldi r2, 0");
  a.line("ldi r3, " + str(spec.size));
  a.line("loop:");
  a.line("ld r4, r1, 0");
  a.line("add r2, r2, r4");
  a.line("addi r1, r1, 1");
  a.line("blt r1, r3, loop");
  a.line("out r2");
  a.line("halt");
  return a.text;
}

std::string uni_saxpy(const WorkloadSpec& spec) {
  const std::int64_t n = spec.size;
  Asm a;
  a.line("; saxpy n=" + str(n) + " alpha=" + str(spec.alpha) + " (IUP)");
  a.line("ldi r1, 0");
  a.line("ldi r2, " + str(n));
  a.line("ldi r3, " + str(spec.alpha));
  a.line("loop:");
  a.line("ld r4, r1, 0");
  a.line("mul r4, r4, r3");
  a.line("add r5, r1, r2");
  a.line("ld r6, r5, 0");
  a.line("add r4, r4, r6");
  a.line("add r5, r5, r2");
  a.line("st r5, r4, 0");
  a.line("addi r1, r1, 1");
  a.line("blt r1, r2, loop");
  a.line("ldi r1, 0");
  a.line("emit:");
  a.line("add r5, r1, r2");
  a.line("add r5, r5, r2");
  a.line("ld r4, r5, 0");
  a.line("out r4");
  a.line("addi r1, r1, 1");
  a.line("blt r1, r2, emit");
  a.line("halt");
  return a.text;
}

// ---- IAP (SIMD) ------------------------------------------------------
//
// Lanes stride over the elements (lane l handles k = pass * L + l).
// There are no masked stores in the ISA, so out-of-range lanes are
// predicated arithmetically: f = (k - limit) >>u 63 is 1 exactly when
// k < limit (the sign bit of the difference); loads clamp the index to
// f * k (element 0 for inactive lanes, always valid) and stores go to
// f * addr + (1 - f) * scratch.  Control flow is scalar (lane 0's
// registers), and every bound below is lane-invariant.

/// Emit "r3 = k, r4 = f, r3 = f * k" for limit; clobbers r13.
void simd_mask(Asm& a, int lanes, std::int64_t limit) {
  a.line("ldi r3, " + str(lanes));
  a.line("mul r3, r2, r3");
  a.line("add r3, r3, r1");
  a.line("ldi r13, " + str(limit));
  a.line("sub r4, r3, r13");
  a.line("shr r4, r4, r11");
  a.line("mul r3, r3, r4");
}

/// Emit a predicated store of @p value_reg to the address in r5;
/// clobbers r14 and @p temp_reg.
void simd_store(Asm& a, const std::string& value_reg,
                const std::string& temp_reg, std::int64_t scratch) {
  a.line("mul r5, r5, r4");
  a.line("ldi r14, 1");
  a.line("sub r14, r14, r4");
  a.line("ldi " + temp_reg + ", " + str(scratch));
  a.line("mul " + temp_reg + ", " + temp_reg + ", r14");
  a.line("add r5, r5, " + temp_reg);
  a.line("st r5, " + value_reg + ", 0");
}

std::string array_stencil(const WorkloadSpec& spec, int lanes) {
  const std::int64_t s = spec.size;
  const std::int64_t s2 = s * s;
  const std::int64_t interior = (s - 2) * (s - 2);
  const std::int64_t scratch = 2 * s2;
  const std::int64_t grid_passes = ceil_div(s2, lanes);
  const std::int64_t cell_passes = ceil_div(interior, lanes);
  Asm a;
  a.line("; stencil5 s=" + str(s) + " t=" + str(spec.iterations) + " (IAP " +
         to_string(lanes) + " lanes)");
  a.line("lane r1");
  a.line("ldi r9, 0");
  a.line("ldi r10, " + str(s2));
  a.line("ldi r8, " + str(s));
  a.line("ldi r11, 63");
  a.line("ldi r12, 5");
  a.line("ldi r0, 0");
  a.line("iter:");
  a.line("ldi r2, 0");
  a.line("copy:");
  simd_mask(a, lanes, s2);
  a.line("add r5, r9, r3");
  a.line("ld r6, r5, 0");
  a.line("add r5, r10, r3");
  simd_store(a, "r6", "r7", scratch);
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(grid_passes));
  a.line("blt r2, r13, copy");
  a.line("ldi r2, 0");
  a.line("cell:");
  simd_mask(a, lanes, interior);
  a.line("ldi r13, " + str(s - 2));
  a.line("divs r14, r3, r13");
  a.line("mul r6, r14, r13");
  a.line("sub r6, r3, r6");
  a.line("addi r14, r14, 1");  // i = c / (s-2) + 1
  a.line("addi r6, r6, 1");    // j = c % (s-2) + 1
  a.line("mul r5, r14, r8");
  a.line("add r5, r5, r6");
  a.line("add r5, r5, r9");
  a.line("ld r7, r5, 0");
  a.line("ld r14, r5, 1");
  a.line("add r7, r7, r14");
  a.line("ld r14, r5, -1");
  a.line("add r7, r7, r14");
  a.line("ld r14, r5, " + str(s));
  a.line("add r7, r7, r14");
  a.line("ld r14, r5, " + str(-s));
  a.line("add r7, r7, r14");
  a.line("divs r7, r7, r12");
  a.line("sub r5, r5, r9");
  a.line("add r5, r5, r10");
  simd_store(a, "r7", "r6", scratch);
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(cell_passes));
  a.line("blt r2, r13, cell");
  a.line("mov r15, r9");
  a.line("mov r9, r10");
  a.line("mov r10, r15");
  a.line("addi r0, r0, 1");
  a.line("ldi r13, " + str(spec.iterations));
  a.line("blt r0, r13, iter");
  a.line("ldi r2, 0");
  a.line("emit:");
  simd_mask(a, lanes, s2);
  a.line("add r5, r9, r3");
  a.line("ld r6, r5, 0");
  a.line("out r6");
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(grid_passes));
  a.line("blt r2, r13, emit");
  a.line("halt");
  return a.text;
}

std::string array_reduce(const WorkloadSpec& spec, int lanes) {
  const std::int64_t n = spec.size;
  const std::int64_t passes = ceil_div(n, lanes);
  Asm a;
  a.line("; reduce n=" + str(n) + " (IAP " + to_string(lanes) + " lanes)");
  a.line("lane r1");
  a.line("ldi r11, 63");
  a.line("ldi r7, 0");
  a.line("ldi r2, 0");
  a.line("acc:");
  simd_mask(a, lanes, n);
  a.line("ld r6, r3, 0");
  a.line("mul r6, r6, r4");  // inactive lanes contribute 0
  a.line("add r7, r7, r6");
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(passes));
  a.line("blt r2, r13, acc");
  // Partials land at [n, n + lanes) through the DP-DM crossbar; then
  // every lane sums all of them identically and one OUT (truncated to
  // one word by the runner) publishes the total.
  a.line("ldi r5, " + str(n));
  a.line("add r5, r5, r1");
  a.line("st r5, r7, 0");
  a.line("ldi r7, 0");
  a.line("ldi r2, 0");
  a.line("sum:");
  a.line("ldi r5, " + str(n));
  a.line("add r5, r5, r2");
  a.line("ld r6, r5, 0");
  a.line("add r7, r7, r6");
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(lanes));
  a.line("blt r2, r13, sum");
  a.line("out r7");
  a.line("halt");
  return a.text;
}

std::string array_saxpy(const WorkloadSpec& spec, int lanes) {
  const std::int64_t n = spec.size;
  const std::int64_t scratch = 3 * n;
  const std::int64_t passes = ceil_div(n, lanes);
  Asm a;
  a.line("; saxpy n=" + str(n) + " alpha=" + str(spec.alpha) + " (IAP " +
         to_string(lanes) + " lanes)");
  a.line("lane r1");
  a.line("ldi r11, 63");
  a.line("ldi r12, " + str(spec.alpha));
  a.line("ldi r2, 0");
  a.line("elem:");
  simd_mask(a, lanes, n);
  a.line("ld r6, r3, 0");
  a.line("mul r6, r6, r12");
  a.line("add r5, r3, r13");  // r13 still n from simd_mask
  a.line("ld r7, r5, 0");
  a.line("add r6, r6, r7");
  a.line("add r5, r5, r13");  // + n again: out slot
  simd_store(a, "r6", "r7", scratch);
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(passes));
  a.line("blt r2, r13, elem");
  a.line("ldi r2, 0");
  a.line("emit:");
  simd_mask(a, lanes, n);
  a.line("ldi r5, " + str(2 * n));
  a.line("add r5, r5, r3");
  a.line("ld r6, r5, 0");
  a.line("out r6");
  a.line("addi r2, r2, 1");
  a.line("ldi r13, " + str(passes));
  a.line("blt r2, r13, emit");
  a.line("halt");
  return a.text;
}

// ---- IMP (MIMD) ------------------------------------------------------

/// SEND/RECV barrier through core 0: peers post a token and block on
/// the go message; core 0 collects all C-1 tokens, then releases each
/// peer.  2(C-1) messages per barrier, all touching core 0 — the
/// traffic pattern the mesh (and the fault layer's route-around table)
/// prices.
void emit_barrier(Asm& a, int cores, int core) {
  if (cores <= 1) return;
  if (core == 0) {
    for (int peer = 1; peer < cores; ++peer) a.line("recv r6");
    for (int peer = 1; peer < cores; ++peer) {
      a.line("ldi r5, " + to_string(peer));
      a.line("send r5, r5");
    }
  } else {
    a.line("ldi r5, 0");
    a.line("send r5, r5");
    a.line("recv r6");
  }
}

std::string multi_stencil_core(const WorkloadSpec& spec, int cores,
                               int core) {
  const std::int64_t s = spec.size;
  const std::int64_t s2 = s * s;
  const auto [row_begin, row_end] = chunk_bounds(s, cores, core);
  const std::int64_t interior_begin = std::max<std::int64_t>(row_begin, 1);
  const std::int64_t interior_end = std::min<std::int64_t>(row_end, s - 1);
  Asm a;
  a.line("; stencil5 s=" + str(s) + " t=" + str(spec.iterations) +
         " (IMP core " + to_string(core) + "/" + to_string(cores) +
         ", rows " + str(row_begin) + ".." + str(row_end) + ")");
  a.line("ldi r1, 0");
  a.line("ldi r2, " + str(s2));
  a.line("ldi r8, " + str(s));
  a.line("ldi r9, 0");
  a.line("iter:");
  if (row_end > row_begin) {
    a.line("ldi r3, " + str(row_begin * s));
    a.line("copy:");
    a.line("add r5, r1, r3");
    a.line("ld r6, r5, 0");
    a.line("add r5, r2, r3");
    a.line("st r5, r6, 0");
    a.line("addi r3, r3, 1");
    a.line("ldi r13, " + str(row_end * s));
    a.line("blt r3, r13, copy");
  }
  if (interior_end > interior_begin) {
    a.line("ldi r3, " + str(interior_begin));
    a.line("row:");
    a.line("ldi r4, 1");
    a.line("col:");
    a.line("mul r5, r3, r8");
    a.line("add r5, r5, r4");
    a.line("add r5, r5, r1");
    a.line("ld r7, r5, 0");
    a.line("ld r6, r5, 1");
    a.line("add r7, r7, r6");
    a.line("ld r6, r5, -1");
    a.line("add r7, r7, r6");
    a.line("ld r6, r5, " + str(s));
    a.line("add r7, r7, r6");
    a.line("ld r6, r5, " + str(-s));
    a.line("add r7, r7, r6");
    a.line("ldi r6, 5");
    a.line("divs r7, r7, r6");
    a.line("sub r5, r5, r1");
    a.line("add r5, r5, r2");
    a.line("st r5, r7, 0");
    a.line("addi r4, r4, 1");
    a.line("ldi r13, " + str(s - 1));
    a.line("blt r4, r13, col");
    a.line("addi r3, r3, 1");
    a.line("ldi r13, " + str(interior_end));
    a.line("blt r3, r13, row");
  }
  emit_barrier(a, cores, core);
  a.line("mov r15, r1");
  a.line("mov r1, r2");
  a.line("mov r2, r15");
  a.line("addi r9, r9, 1");
  a.line("ldi r13, " + str(spec.iterations));
  a.line("blt r9, r13, iter");
  if (core == 0) {
    a.line("ldi r3, 0");
    a.line("emit:");
    a.line("add r5, r1, r3");
    a.line("ld r6, r5, 0");
    a.line("out r6");
    a.line("addi r3, r3, 1");
    a.line("ldi r13, " + str(s2));
    a.line("blt r3, r13, emit");
  }
  a.line("halt");
  return a.text;
}

std::string multi_reduce_core(const WorkloadSpec& spec, int cores,
                              int core) {
  const auto [begin, end] = chunk_bounds(spec.size, cores, core);
  Asm a;
  a.line("; reduce n=" + str(spec.size) + " (IMP core " + to_string(core) +
         "/" + to_string(cores) + ", elements " + str(begin) + ".." +
         str(end) + ")");
  a.line("ldi r2, 0");
  if (end > begin) {
    a.line("ldi r1, " + str(begin));
    a.line("loop:");
    a.line("ld r4, r1, 0");
    a.line("add r2, r2, r4");
    a.line("addi r1, r1, 1");
    a.line("ldi r13, " + str(end));
    a.line("blt r1, r13, loop");
  }
  if (core == 0) {
    for (int peer = 1; peer < cores; ++peer) {
      a.line("recv r4");
      a.line("add r2, r2, r4");
    }
    a.line("out r2");
  } else {
    a.line("ldi r5, 0");
    a.line("send r2, r5");
  }
  a.line("halt");
  return a.text;
}

std::string multi_saxpy_core(const WorkloadSpec& spec, int cores,
                             int core) {
  const std::int64_t n = spec.size;
  const auto [begin, end] = chunk_bounds(n, cores, core);
  Asm a;
  a.line("; saxpy n=" + str(n) + " alpha=" + str(spec.alpha) +
         " (IMP core " + to_string(core) + "/" + to_string(cores) +
         ", elements " + str(begin) + ".." + str(end) + ")");
  if (end > begin) {
    a.line("ldi r1, " + str(begin));
    a.line("ldi r2, " + str(n));
    a.line("ldi r3, " + str(spec.alpha));
    a.line("loop:");
    a.line("ld r4, r1, 0");
    a.line("mul r4, r4, r3");
    a.line("add r5, r1, r2");
    a.line("ld r6, r5, 0");
    a.line("add r4, r4, r6");
    a.line("add r5, r5, r2");
    a.line("st r5, r4, 0");
    a.line("addi r1, r1, 1");
    a.line("ldi r13, " + str(end));
    a.line("blt r1, r13, loop");
  }
  emit_barrier(a, cores, core);
  if (core == 0) {
    a.line("ldi r1, 0");
    a.line("emit:");
    a.line("ldi r5, " + str(2 * n));
    a.line("add r5, r5, r1");
    a.line("ld r4, r5, 0");
    a.line("out r4");
    a.line("addi r1, r1, 1");
    a.line("ldi r13, " + str(n));
    a.line("blt r1, r13, emit");
  }
  a.line("halt");
  return a.text;
}

}  // namespace

std::string_view to_string(Paradigm paradigm) {
  switch (paradigm) {
    case Paradigm::Uniprocessor:   return "uniprocessor";
    case Paradigm::ArrayProcessor: return "array_processor";
    case Paradigm::Multiprocessor: return "multiprocessor";
    case Paradigm::Dataflow:       return "dataflow";
    case Paradigm::Cgra:           return "cgra";
  }
  return "?";
}

Paradigm paradigm_of(const TaxonomicName& name) {
  if (name.machine_type == MachineType::UniversalFlow) return Paradigm::Cgra;
  if (name.machine_type == MachineType::DataFlow) return Paradigm::Dataflow;
  switch (name.processing_type) {
    case ProcessingType::UniProcessor:   return Paradigm::Uniprocessor;
    case ProcessingType::ArrayProcessor: return Paradigm::ArrayProcessor;
    case ProcessingType::MultiProcessor: return Paradigm::Multiprocessor;
    case ProcessingType::SpatialProcessor: return Paradigm::Cgra;
  }
  return Paradigm::Uniprocessor;
}

std::string uniprocessor_program(const WorkloadSpec& spec) {
  switch (spec.kernel) {
    case Kernel::Stencil5: return uni_stencil(spec);
    case Kernel::Reduce:   return uni_reduce(spec);
    case Kernel::Saxpy:    return uni_saxpy(spec);
  }
  throw LoweringError("unknown kernel");
}

std::string array_program(const WorkloadSpec& spec, int lanes) {
  switch (spec.kernel) {
    case Kernel::Stencil5: return array_stencil(spec, lanes);
    case Kernel::Reduce:   return array_reduce(spec, lanes);
    case Kernel::Saxpy:    return array_saxpy(spec, lanes);
  }
  throw LoweringError("unknown kernel");
}

std::vector<std::string> multiprocessor_programs(const WorkloadSpec& spec,
                                                 int cores) {
  std::vector<std::string> programs;
  programs.reserve(static_cast<std::size_t>(cores));
  for (int core = 0; core < cores; ++core) {
    switch (spec.kernel) {
      case Kernel::Stencil5:
        programs.push_back(multi_stencil_core(spec, cores, core));
        break;
      case Kernel::Reduce:
        programs.push_back(multi_reduce_core(spec, cores, core));
        break;
      case Kernel::Saxpy:
        programs.push_back(multi_saxpy_core(spec, cores, core));
        break;
    }
  }
  return programs;
}

std::vector<std::pair<int, int>> multiprocessor_messages(
    const WorkloadSpec& spec, int cores) {
  std::vector<std::pair<int, int>> messages;
  if (cores <= 1) return messages;
  const auto barrier = [&] {
    for (int peer = 1; peer < cores; ++peer) messages.emplace_back(peer, 0);
    for (int peer = 1; peer < cores; ++peer) messages.emplace_back(0, peer);
  };
  switch (spec.kernel) {
    case Kernel::Stencil5:
      for (std::int32_t it = 0; it < spec.iterations; ++it) barrier();
      break;
    case Kernel::Reduce:
      for (int peer = 1; peer < cores; ++peer) messages.emplace_back(peer, 0);
      break;
    case Kernel::Saxpy:
      barrier();
      break;
  }
  return messages;
}

sim::df::Graph dataflow_graph(const WorkloadSpec& spec) {
  using sim::df::Graph;
  using sim::df::NodeId;
  using sim::df::Op;
  Graph graph;
  const std::int64_t n = spec.size;
  switch (spec.kernel) {
    case Kernel::Stencil5: {
      const std::int64_t s = n;
      std::vector<NodeId> cur;
      cur.reserve(static_cast<std::size_t>(s * s));
      for (std::int64_t k = 0; k < s * s; ++k) {
        cur.push_back(graph.add_input("c" + str(k)));
      }
      for (std::int32_t it = 0; it < spec.iterations; ++it) {
        const NodeId five = graph.add_const(5);
        std::vector<NodeId> next = cur;  // boundary nodes pass through
        for (std::int64_t i = 1; i < s - 1; ++i) {
          for (std::int64_t j = 1; j < s - 1; ++j) {
            const std::size_t at = static_cast<std::size_t>(i * s + j);
            NodeId sum = graph.add_op(Op::Add, cur[at], cur[at - 1]);
            sum = graph.add_op(Op::Add, sum, cur[at + 1]);
            sum = graph.add_op(Op::Add, sum,
                               cur[at - static_cast<std::size_t>(s)]);
            sum = graph.add_op(Op::Add, sum,
                               cur[at + static_cast<std::size_t>(s)]);
            next[at] = graph.add_op(Op::Divs, sum, five);
          }
        }
        cur = std::move(next);
      }
      for (std::int64_t k = 0; k < s * s; ++k) {
        graph.add_output("o" + str(k), cur[static_cast<std::size_t>(k)]);
      }
      return graph;
    }
    case Kernel::Reduce: {
      NodeId acc = graph.add_input("c0");
      for (std::int64_t k = 1; k < n; ++k) {
        const NodeId next = graph.add_input("c" + str(k));
        acc = graph.add_op(Op::Add, acc, next);
      }
      graph.add_output("o0", acc);
      return graph;
    }
    case Kernel::Saxpy: {
      // One self-contained component per element: a DMP-I machine (no
      // inter-PE path at all) can still spread them across its PEs.
      for (std::int64_t k = 0; k < n; ++k) {
        const NodeId x = graph.add_input("c" + str(k));
        const NodeId y = graph.add_input("c" + str(n + k));
        const NodeId alpha = graph.add_const(spec.alpha);
        const NodeId scaled = graph.add_op(Op::Mul, x, alpha);
        const NodeId result = graph.add_op(Op::Add, scaled, y);
        graph.add_output("o" + str(k), result);
      }
      return graph;
    }
  }
  throw LoweringError("unknown kernel");
}

CgraKernel cgra_kernel(const WorkloadSpec& spec, int fus) {
  using sim::df::Graph;
  using sim::df::NodeId;
  using sim::df::Op;
  CgraKernel kernel;
  Graph& graph = kernel.graph;
  switch (spec.kernel) {
    case Kernel::Stencil5: {
      // One interior cell per pass: i0..i4 = c, w, e, n, s.  Chained
      // adds so a window-1 interconnect can place consecutive FUs.
      const NodeId c = graph.add_input("i0");
      const NodeId w = graph.add_input("i1");
      const NodeId e = graph.add_input("i2");
      const NodeId north = graph.add_input("i3");
      const NodeId south = graph.add_input("i4");
      NodeId sum = graph.add_op(Op::Add, c, w);
      sum = graph.add_op(Op::Add, sum, e);
      sum = graph.add_op(Op::Add, sum, north);
      sum = graph.add_op(Op::Add, sum, south);
      const NodeId five = graph.add_const(5);
      graph.add_output("o0", graph.add_op(Op::Divs, sum, five));
      kernel.items_per_pass = 1;
      return kernel;
    }
    case Kernel::Reduce: {
      // acc + a chunk of elements per pass; chunk sized to the fabric.
      const int chunk =
          static_cast<int>(std::min<std::int64_t>({fus, 8, spec.size}));
      NodeId acc = graph.add_input("i0");
      for (int k = 0; k < chunk; ++k) {
        std::string port = "i";
        port += to_string(k + 1);
        const NodeId next = graph.add_input(std::move(port));
        acc = graph.add_op(Op::Add, acc, next);
      }
      graph.add_output("o0", acc);
      kernel.items_per_pass = chunk;
      return kernel;
    }
    case Kernel::Saxpy: {
      const NodeId x = graph.add_input("i0");
      const NodeId y = graph.add_input("i1");
      const NodeId alpha = graph.add_const(spec.alpha);
      const NodeId scaled = graph.add_op(Op::Mul, x, alpha);
      graph.add_output("o0", graph.add_op(Op::Add, scaled, y));
      kernel.items_per_pass = 1;
      return kernel;
    }
  }
  throw LoweringError("unknown kernel");
}

}  // namespace mpct::workload
