#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/naming.hpp"
#include "sim/dataflow/graph.hpp"
#include "workload/workload.hpp"

namespace mpct::workload {

/// Executable paradigm a taxonomic class lowers onto.  This is the
/// bridge between the 47-class taxonomy and the five machine simulators
/// in src/sim/: every implementable class maps to exactly one paradigm.
enum class Paradigm : std::uint8_t {
  Uniprocessor = 0,    ///< IUP — sim::Uniprocessor
  ArrayProcessor = 1,  ///< IAP-n — sim::ArrayProcessor (SIMD lanes)
  Multiprocessor = 2,  ///< IMP-n — sim::Multiprocessor (MIMD cores)
  Dataflow = 3,        ///< DUP / DMP-n — sim::df::TokenMachine
  Cgra = 4,            ///< ISP-n / USP — sim::cgra::Cgra (spatial map)
};

inline constexpr std::size_t kParadigmCount = 5;

std::string_view to_string(Paradigm paradigm);

/// The paradigm a taxonomic name executes as.
Paradigm paradigm_of(const TaxonomicName& name);

/// A workload cannot be lowered onto the requested machine: the class
/// lacks a switch the kernel needs, the fabric is too small, or injected
/// faults removed a component the fixed mapping uses.  The service maps
/// this to StatusCode::InvalidRequest (the request is wrong, not the
/// server).
class LoweringError : public std::runtime_error {
 public:
  explicit LoweringError(const std::string& message)
      : std::runtime_error(message) {}
};

// ---- ISA lowerings (assembler source with all constants folded) ------

/// IUP: the whole kernel on one core, data in its single DM.
std::string uniprocessor_program(const WorkloadSpec& spec);

/// IAP with a DP-DM crossbar (IAP-III/IV): `lanes` SIMD lanes strided
/// over the elements, inactive lanes predicated by arithmetic masking
/// (clamped loads, stores redirected to a scratch word).  Throws
/// LoweringError for subtypes without the crossbar — lane-local banks
/// cannot hold a shared grid.
std::string array_program(const WorkloadSpec& spec, int lanes);

/// IMP with a DP-DM crossbar: one program per core, rows/elements
/// partitioned contiguously, SEND/RECV barriers through core 0 (which
/// needs the DP-DP crossbar whenever cores > 1).  Throws LoweringError
/// when the class lacks the switches.
std::vector<std::string> multiprocessor_programs(const WorkloadSpec& spec,
                                                 int cores);

/// SEND messages the multiprocessor lowering issues (all between core 0
/// and its peers) as (from, to) pairs — the static traffic the energy
/// model prices and the fault layer routes.
std::vector<std::pair<int, int>> multiprocessor_messages(
    const WorkloadSpec& spec, int cores);

// ---- Dataflow / CGRA lowerings ---------------------------------------

/// Fully unrolled dataflow graph of the kernel: inputs "c<i>" in input
/// layout order, outputs "o<i>" in output layout order.  Saxpy unrolls
/// to independent per-element components (DMP-I runnable); reduce and
/// stencil5 are single connected components.
sim::df::Graph dataflow_graph(const WorkloadSpec& spec);

/// The small per-work-item graph the CGRA executes once per pass, plus
/// how the runner streams data through it.  Built as operator chains so
/// windowed interconnects (ISP subtypes without the DP-DP crossbar) can
/// place them.
struct CgraKernel {
  sim::df::Graph graph;
  /// Elements consumed per pass (reduce chunks several; others one).
  int items_per_pass = 1;
};

CgraKernel cgra_kernel(const WorkloadSpec& spec, int fus);

}  // namespace mpct::workload
