#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "arch/spec.hpp"
#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "core/machine_class.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "explore/recommend.hpp"
#include "explore/sweep.hpp"
#include "fault/degradation_curve.hpp"
#include "fault/fault_model.hpp"
#include "service/status.hpp"
#include "workload/runner.hpp"

namespace mpct::service {

using Clock = std::chrono::steady_clock;

/// Absolute per-request deadline.  A request whose deadline has passed
/// when a worker dequeues it is answered with DeadlineExceeded instead of
/// being executed — late answers are useless to an interactive design
/// tool, and dropping them early keeps the queue from snowballing.
struct Deadline {
  Clock::time_point at = Clock::time_point::max();

  static Deadline never() { return {}; }
  static Deadline in(Clock::duration budget) {
    return {Clock::now() + budget};
  }
  static Deadline at_time(Clock::time_point when) { return {when}; }

  bool is_infinite() const { return at == Clock::time_point::max(); }
  bool expired(Clock::time_point now = Clock::now()) const {
    return !is_infinite() && now >= at;
  }
};

/// Classify one architecture: either an already-built spec or ADL text
/// (parsed with arch::parse_single_adl).  Mirrors the sequential
/// ArchitectureSpec::classify()/flexibility() pair.
struct ClassifyRequest {
  std::variant<arch::ArchitectureSpec, std::string> input;

  static ClassifyRequest of(arch::ArchitectureSpec spec) {
    return {std::move(spec)};
  }
  static ClassifyRequest of_adl(std::string adl_text) {
    return {std::move(adl_text)};
  }
};

struct ClassifyResponse {
  /// Resolved spec (the parsed one when the request carried ADL text).
  arch::ArchitectureSpec spec;
  Classification classification;
  FlexibilityBreakdown flexibility;

  friend bool operator==(const ClassifyResponse&,
                         const ClassifyResponse&) = default;
};

/// Rank the implementable taxonomy classes against designer requirements
/// (the paper's conclusion use-case, explore::recommend).
struct RecommendRequest {
  explore::Requirements requirements;
  /// Keep only the best k recommendations; 0 keeps all.
  std::size_t top_k = 0;
};

struct RecommendResponse {
  std::vector<explore::Recommendation> recommendations;

  friend bool operator==(const RecommendResponse&,
                         const RecommendResponse&) = default;
};

/// Evaluate Eq. 1 (area) and Eq. 2 (configuration bits) for a class or a
/// concrete spec, optionally sweeping the component count n.  An empty
/// sweep evaluates just options.n — the single-point query.
struct CostRequest {
  std::variant<MachineClass, arch::ArchitectureSpec> target;
  cost::EstimateOptions options;
  std::vector<std::int64_t> n_sweep;
};

struct CostResponse {
  struct Point {
    std::int64_t n = 0;
    cost::AreaEstimate area;
    cost::ConfigBitsEstimate config_bits;

    friend bool operator==(const Point&, const Point&) = default;
  };
  std::vector<Point> points;

  friend bool operator==(const CostResponse&, const CostResponse&) = default;
};

/// Evaluate a whole (n x lut_budget x objective) design-space grid
/// (explore::sweep).  Unlike the other request kinds, a SweepRequest is
/// not executed by a single worker: submit() splits the grid into cell
/// chunks that the worker pool drains concurrently, and the last chunk
/// to finish merges the Pareto front and resolves the future.  Results
/// are bit-identical to the sequential explore::sweep() regardless of
/// how the chunks interleave.
struct SweepRequest {
  explore::SweepGrid grid;
};

struct SweepResponse {
  explore::SweepResult result;

  friend bool operator==(const SweepResponse&, const SweepResponse&) = default;
};

/// Evaluate a Monte-Carlo degradation curve (fault::evaluate_curve) for
/// one machine class over a fault-rate axis.  Like SweepRequest, this is
/// chunk-parallelised: submit() splits the (rate x trial) cell range
/// across the worker pool and the last chunk reduces the curve, with
/// results bit-identical to the sequential fault::evaluate_curve() —
/// each trial's RNG stream derives from its flat cell index alone.
struct FaultSweepRequest {
  fault::CurveSpec spec;
};

struct FaultSweepResponse {
  fault::CurveResult result;

  friend bool operator==(const FaultSweepResponse&,
                         const FaultSweepResponse&) = default;
};

/// Evaluate one disjoint flat-index range [begin, end) of a sweep grid.
/// This is how the cluster proxy (src/cluster) scatters a SweepRequest
/// across backends: cell indices are over the *normalized* grid, so a
/// chunk depends only on (grid, begin, end) — concatenating the chunk
/// points in index order reproduces the single-server SweepResult
/// bit-identically.
struct SweepChunkRequest {
  explore::SweepGrid grid;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

struct SweepChunkResponse {
  std::vector<explore::SweepPoint> points;  ///< cells [begin, end)
  std::uint64_t candidate_classes = 0;

  friend bool operator==(const SweepChunkResponse&,
                         const SweepChunkResponse&) = default;
};

/// Evaluate one disjoint (rate x trial) cell range of a degradation
/// curve.  The full spec travels with every chunk because each trial's
/// RNG stream derives from its flat cell index over the whole spec —
/// sub-specs would renumber the cells and break bit-identity.
struct FaultChunkRequest {
  fault::CurveSpec spec;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

struct FaultChunkResponse {
  std::vector<fault::TrialOutcome> outcomes;  ///< cells [begin, end)

  friend bool operator==(const FaultChunkResponse&,
                         const FaultChunkResponse&) = default;
};

/// Simulate a workload kernel on the machine a class (or spec) names:
/// lower onto the matching sim:: machine, apply the fault set to the
/// fabric, run deterministically, return cycles/energy/checksum
/// (workload::run_workload end to end).  Specs are classified first; an
/// unclassifiable or non-implementable target is InvalidRequest.
struct SimulateRequest {
  workload::WorkloadSpec workload;
  std::variant<MachineClass, arch::ArchitectureSpec> target;
  workload::RunOptions options;
  /// Faults injected into the fabric before the run (may be empty).
  fault::FaultSet faults;
  /// Input-stream seed; part of the deterministic identity of the run.
  std::uint64_t seed = 0;
};

struct SimulateResponse {
  workload::WorkloadResult result;

  friend bool operator==(const SimulateResponse&,
                         const SimulateResponse&) = default;
};

using Request =
    std::variant<ClassifyRequest, RecommendRequest, CostRequest, SweepRequest,
                 FaultSweepRequest, SweepChunkRequest, FaultChunkRequest,
                 SimulateRequest>;

/// Discriminator used for per-request-type metrics and cache keying.
enum class RequestType : std::uint8_t {
  Classify = 0,
  Recommend = 1,
  Cost = 2,
  Sweep = 3,
  FaultSweep = 4,
  SweepChunk = 5,   ///< wire protocol v2+ only
  FaultChunk = 6,   ///< wire protocol v2+ only
  Simulate = 7,     ///< wire protocol v2+ only
};
inline constexpr std::size_t kRequestTypeCount = 8;

std::string_view to_string(RequestType type);

inline RequestType request_type(const Request& request) {
  return static_cast<RequestType>(request.index());
}

/// Successful payload; monostate while status is not Ok.
using ResponsePayload =
    std::variant<std::monostate, ClassifyResponse, RecommendResponse,
                 CostResponse, SweepResponse, FaultSweepResponse,
                 SweepChunkResponse, FaultChunkResponse, SimulateResponse>;

/// What a submitted query resolves to.  `status` is always meaningful;
/// the payload alternative matches the request type only when status.ok().
///
/// The payload is an immutable object shared with the result cache: a
/// cache hit hands out another reference instead of deep-copying the
/// response (a ClassifyResponse carries a whole ArchitectureSpec; copying
/// it would cost more than some queries).  Null on any non-Ok status.
struct QueryResponse {
  Status status;
  std::shared_ptr<const ResponsePayload> payload;
  bool cache_hit = false;
  /// Submit-to-completion time as observed by the engine (queueing
  /// included); zero for rejected-at-submit responses.
  std::chrono::nanoseconds latency{0};
  /// Precision was shed under load (qos admission Degrade): a sweep
  /// answered on a strided subgrid, or a cache entry served past its
  /// soft-TTL.  The result is well-formed and self-consistent, just
  /// computed from (or cached over) less than the full request asked
  /// for.  Travels the wire as a v2 response extension.
  bool sampled = false;

  bool ok() const { return status.ok(); }
  const ClassifyResponse* classify() const {
    return payload ? std::get_if<ClassifyResponse>(payload.get()) : nullptr;
  }
  const RecommendResponse* recommend() const {
    return payload ? std::get_if<RecommendResponse>(payload.get()) : nullptr;
  }
  const CostResponse* cost() const {
    return payload ? std::get_if<CostResponse>(payload.get()) : nullptr;
  }
  const SweepResponse* sweep() const {
    return payload ? std::get_if<SweepResponse>(payload.get()) : nullptr;
  }
  const FaultSweepResponse* fault_sweep() const {
    return payload ? std::get_if<FaultSweepResponse>(payload.get()) : nullptr;
  }
  const SweepChunkResponse* sweep_chunk() const {
    return payload ? std::get_if<SweepChunkResponse>(payload.get()) : nullptr;
  }
  const FaultChunkResponse* fault_chunk() const {
    return payload ? std::get_if<FaultChunkResponse>(payload.get()) : nullptr;
  }
  const SimulateResponse* simulate() const {
    return payload ? std::get_if<SimulateResponse>(payload.get()) : nullptr;
  }
};

}  // namespace mpct::service
