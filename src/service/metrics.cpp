#include "service/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "report/csv.hpp"
#include "report/table.hpp"
#include "trace/prometheus.hpp"
#include "trace/trace.hpp"

namespace mpct::service {

namespace {

std::string format_us(double us) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", us);
  return buffer;
}

std::string format_rate(double rate) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4f", rate);
  return buffer;
}

/// Update an atomic min/max without a CAS loop race losing updates.
void atomic_min(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LatencyHistogram::bucket_index(std::chrono::nanoseconds latency) {
  const std::int64_t ns = latency.count();
  if (ns <= 0) return 0;
  std::size_t index = 0;
  std::uint64_t bound = 2;  // bucket 0 covers [0, 2) ns
  while (index + 1 < kBucketCount &&
         static_cast<std::uint64_t>(ns) >= bound) {
    ++index;
    bound <<= 1;
  }
  return index;
}

void LatencyHistogram::record(std::chrono::nanoseconds latency) {
  const std::uint64_t ns =
      latency.count() < 0 ? 0 : static_cast<std::uint64_t>(latency.count());
  buckets_[bucket_index(latency)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
}

std::int64_t LatencyHistogram::bucket_upper_ns(std::size_t i) {
  if (i + 1 >= kBucketCount) return INT64_MAX;  // last bucket: unbounded
  return static_cast<std::int64_t>((std::uint64_t{1} << (i + 1)) - 1);
}

LatencyHistogram::Buckets LatencyHistogram::buckets() const {
  Buckets result;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    result.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  result.count = count_.load(std::memory_order_relaxed);
  result.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return result;
}

double LatencyHistogram::quantile_us(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<std::uint64_t, kBucketCount> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Clamp interpolated estimates into the truly observed range so a
  // single-valued distribution reports that value for every quantile.
  const std::uint64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  const double observed_min =
      min_ns == UINT64_MAX ? 0.0 : static_cast<double>(min_ns) / 1000.0;
  const double observed_max =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1000.0;
  const auto clamp_observed = [&](double us) {
    return std::clamp(us, observed_min, observed_max);
  };
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Linear interpolation inside [lower, upper) of this bucket.
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(1ULL << i);
      const double upper = static_cast<double>(1ULL << (i + 1));
      const double before =
          static_cast<double>(cumulative - counts[i]);
      const double fraction =
          counts[i] == 0
              ? 0.0
              : (rank - before) / static_cast<double>(counts[i]);
      return clamp_observed((lower + fraction * (upper - lower)) / 1000.0);
    }
  }
  return clamp_observed(static_cast<double>(1ULL << kBucketCount) / 1000.0);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.mean_us = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
                 static_cast<double>(snap.count) / 1000.0;
  const std::uint64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  snap.min_us =
      min_ns == UINT64_MAX ? 0.0 : static_cast<double>(min_ns) / 1000.0;
  snap.max_us =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1000.0;
  snap.p50_us = quantile_us(0.50);
  snap.p95_us = quantile_us(0.95);
  snap.p99_us = quantile_us(0.99);
  return snap;
}

void BatchSizeHistogram::record(std::size_t batch_size) {
  if (batch_size == 0) return;
  batches_.add(1);
  requests_.add(batch_size);
  const std::size_t slot = std::min(batch_size, kMaxTracked) - 1;
  sizes_[slot].fetch_add(1, std::memory_order_relaxed);
}

double BatchSizeHistogram::mean() const {
  const std::uint64_t b = batches_.value();
  return b == 0 ? 0.0
                : static_cast<double>(requests_.value()) /
                      static_cast<double>(b);
}

std::uint64_t BatchSizeHistogram::size_count(std::size_t batch_size) const {
  if (batch_size == 0) return 0;
  const std::size_t slot = std::min(batch_size, kMaxTracked) - 1;
  return sizes_[slot].load(std::memory_order_relaxed);
}

double MetricsRegistry::cache_hit_rate() const {
  const std::uint64_t hits = cache_hits.value();
  const std::uint64_t lookups = hits + cache_misses.value();
  return lookups == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(lookups);
}

std::string MetricsRegistry::to_table(const CacheStats& cache) const {
  report::TextTable table({"metric", "value"});
  table.set_align(1, report::Align::Right);

  table.add_section("requests");
  table.add_row({"submitted", std::to_string(submitted.value())});
  table.add_row({"completed", std::to_string(completed.value())});
  table.add_row(
      {"rejected (queue full)", std::to_string(rejected_queue_full.value())});
  table.add_row(
      {"rejected (deadline)", std::to_string(rejected_deadline.value())});
  table.add_row(
      {"rejected (shutdown)", std::to_string(rejected_shutdown.value())});
  table.add_row(
      {"expired in queue", std::to_string(expired_in_queue.value())});
  table.add_row({"failed", std::to_string(failed.value())});
  table.add_row({"queue depth", std::to_string(queue_depth.value())});
  table.add_row({"in flight", std::to_string(in_flight.value())});

  table.add_section("batching");
  table.add_row({"batches executed", std::to_string(batch_sizes.batches())});
  table.add_row({"mean batch size", format_rate(batch_sizes.mean())});

  table.add_section("network");
  table.add_row({"bytes in", std::to_string(net_bytes_in.value())});
  table.add_row({"bytes out", std::to_string(net_bytes_out.value())});
  table.add_row({"frames in", std::to_string(net_frames_in.value())});
  table.add_row({"frames out", std::to_string(net_frames_out.value())});
  table.add_row({"decode errors", std::to_string(net_decode_errors.value())});
  table.add_row(
      {"connections opened", std::to_string(net_connections_opened.value())});
  table.add_row(
      {"connections closed", std::to_string(net_connections_closed.value())});
  table.add_row(
      {"active connections", std::to_string(net_active_connections.value())});
  table.add_row({"client retries", std::to_string(net_retries.value())});
  table.add_row(
      {"client requests sent", std::to_string(net_requests_sent.value())});
  table.add_row({"hedges sent", std::to_string(net_hedges_sent.value())});
  table.add_row({"hedges won", std::to_string(net_hedges_won.value())});
  table.add_row({"failovers", std::to_string(net_failovers.value())});

  table.add_section("simulation");
  table.add_row({"runs", std::to_string(sim_runs.value())});
  table.add_row({"cycles", std::to_string(sim_cycles.value())});
  table.add_row({"fault runs", std::to_string(sim_fault_runs.value())});

  table.add_section("tracing");
  table.add_row(
      {"spans exported", std::to_string(trace_spans_exported.value())});
  table.add_row(
      {"spans dropped", std::to_string(trace_spans_dropped.value())});
  table.add_row(
      {"spans sampled out", std::to_string(trace_spans_sampled_out.value())});
  table.add_row(
      {"batches sent", std::to_string(trace_batches_sent.value())});
  table.add_row(
      {"batches dropped", std::to_string(trace_batches_dropped.value())});
  table.add_row({"collector batches",
                 std::to_string(trace_collector_batches.value())});
  table.add_row(
      {"collector spans", std::to_string(trace_collector_spans.value())});

  table.add_section("qos");
  table.add_row(
      {"shed (background)", std::to_string(qos_shed_background.value())});
  table.add_row({"shed (batch)", std::to_string(qos_shed_batch.value())});
  table.add_row(
      {"degraded responses", std::to_string(qos_degraded_responses.value())});
  table.add_row(
      {"cancelled (queued)", std::to_string(qos_cancelled_queued.value())});
  table.add_row({"cancelled (in flight)",
                 std::to_string(qos_cancelled_inflight.value())});
  table.add_row(
      {"cancels received", std::to_string(qos_cancels_received.value())});
  table.add_row({"cancels sent", std::to_string(qos_cancels_sent.value())});

  table.add_section("cache");
  table.add_row({"hits", std::to_string(cache_hits.value())});
  table.add_row({"misses", std::to_string(cache_misses.value())});
  table.add_row({"hit rate", format_rate(cache_hit_rate())});
  table.add_row({"entries", std::to_string(cache.entries)});
  table.add_row({"insertions", std::to_string(cache.insertions)});
  table.add_row({"evictions", std::to_string(cache.evictions)});

  for (std::size_t i = 0; i < kRequestTypeCount; ++i) {
    const auto type = static_cast<RequestType>(i);
    const LatencyHistogram::Snapshot snap = latency(type).snapshot();
    table.add_section(std::string("latency: ") +
                      std::string(to_string(type)) + " (us)");
    table.add_row({"count", std::to_string(snap.count)});
    table.add_row({"mean", format_us(snap.mean_us)});
    table.add_row({"p50", format_us(snap.p50_us)});
    table.add_row({"p95", format_us(snap.p95_us)});
    table.add_row({"p99", format_us(snap.p99_us)});
    table.add_row({"max", format_us(snap.max_us)});
  }
  return table.render_ascii();
}

std::string MetricsRegistry::to_csv(const CacheStats& cache) const {
  report::CsvWriter csv;
  csv.add_row({"metric", "value"});
  csv.add_row({"submitted", std::to_string(submitted.value())});
  csv.add_row({"completed", std::to_string(completed.value())});
  csv.add_row(
      {"rejected_queue_full", std::to_string(rejected_queue_full.value())});
  csv.add_row(
      {"rejected_deadline", std::to_string(rejected_deadline.value())});
  csv.add_row(
      {"rejected_shutdown", std::to_string(rejected_shutdown.value())});
  csv.add_row(
      {"expired_in_queue", std::to_string(expired_in_queue.value())});
  csv.add_row({"failed", std::to_string(failed.value())});
  csv.add_row({"queue_depth", std::to_string(queue_depth.value())});
  csv.add_row({"in_flight", std::to_string(in_flight.value())});
  csv.add_row({"batches", std::to_string(batch_sizes.batches())});
  csv.add_row({"mean_batch_size", format_rate(batch_sizes.mean())});
  csv.add_row({"net_bytes_in", std::to_string(net_bytes_in.value())});
  csv.add_row({"net_bytes_out", std::to_string(net_bytes_out.value())});
  csv.add_row({"net_frames_in", std::to_string(net_frames_in.value())});
  csv.add_row({"net_frames_out", std::to_string(net_frames_out.value())});
  csv.add_row(
      {"net_decode_errors", std::to_string(net_decode_errors.value())});
  csv.add_row({"net_connections_opened",
               std::to_string(net_connections_opened.value())});
  csv.add_row({"net_connections_closed",
               std::to_string(net_connections_closed.value())});
  csv.add_row({"net_active_connections",
               std::to_string(net_active_connections.value())});
  csv.add_row({"net_retries", std::to_string(net_retries.value())});
  csv.add_row(
      {"net_requests_sent", std::to_string(net_requests_sent.value())});
  csv.add_row({"net_hedges_sent", std::to_string(net_hedges_sent.value())});
  csv.add_row({"net_hedges_won", std::to_string(net_hedges_won.value())});
  csv.add_row({"net_failovers", std::to_string(net_failovers.value())});
  csv.add_row({"sim_runs", std::to_string(sim_runs.value())});
  csv.add_row({"sim_cycles", std::to_string(sim_cycles.value())});
  csv.add_row({"sim_fault_runs", std::to_string(sim_fault_runs.value())});
  csv.add_row({"trace_spans_exported",
               std::to_string(trace_spans_exported.value())});
  csv.add_row(
      {"trace_spans_dropped", std::to_string(trace_spans_dropped.value())});
  csv.add_row({"trace_spans_sampled_out",
               std::to_string(trace_spans_sampled_out.value())});
  csv.add_row(
      {"trace_batches_sent", std::to_string(trace_batches_sent.value())});
  csv.add_row({"trace_batches_dropped",
               std::to_string(trace_batches_dropped.value())});
  csv.add_row({"trace_collector_batches",
               std::to_string(trace_collector_batches.value())});
  csv.add_row({"trace_collector_spans",
               std::to_string(trace_collector_spans.value())});
  csv.add_row(
      {"qos_shed_background", std::to_string(qos_shed_background.value())});
  csv.add_row({"qos_shed_batch", std::to_string(qos_shed_batch.value())});
  csv.add_row({"qos_degraded_responses",
               std::to_string(qos_degraded_responses.value())});
  csv.add_row({"qos_cancelled_queued",
               std::to_string(qos_cancelled_queued.value())});
  csv.add_row({"qos_cancelled_inflight",
               std::to_string(qos_cancelled_inflight.value())});
  csv.add_row(
      {"qos_cancels_received", std::to_string(qos_cancels_received.value())});
  csv.add_row({"qos_cancels_sent", std::to_string(qos_cancels_sent.value())});
  csv.add_row({"cache_hits", std::to_string(cache_hits.value())});
  csv.add_row({"cache_misses", std::to_string(cache_misses.value())});
  csv.add_row({"cache_hit_rate", format_rate(cache_hit_rate())});
  csv.add_row({"cache_entries", std::to_string(cache.entries)});
  csv.add_row({"cache_insertions", std::to_string(cache.insertions)});
  csv.add_row({"cache_evictions", std::to_string(cache.evictions)});
  for (std::size_t i = 0; i < kRequestTypeCount; ++i) {
    const auto type = static_cast<RequestType>(i);
    const LatencyHistogram::Snapshot snap = latency(type).snapshot();
    const std::string prefix = std::string("latency_") +
                               std::string(to_string(type)) + "_";
    csv.add_row({prefix + "count", std::to_string(snap.count)});
    csv.add_row({prefix + "mean_us", format_us(snap.mean_us)});
    csv.add_row({prefix + "p50_us", format_us(snap.p50_us)});
    csv.add_row({prefix + "p95_us", format_us(snap.p95_us)});
    csv.add_row({prefix + "p99_us", format_us(snap.p99_us)});
    csv.add_row({prefix + "max_us", format_us(snap.max_us)});
  }
  return csv.str();
}

std::string MetricsRegistry::to_prometheus(const CacheStats& cache,
                                           bool include_profile) const {
  using trace::PromWriter;
  PromWriter w;

  w.header("mpct_requests_submitted_total", PromWriter::Type::Counter,
           "Requests submitted to the QueryEngine.");
  w.sample("mpct_requests_submitted_total", {}, submitted.value());
  w.header("mpct_requests_completed_total", PromWriter::Type::Counter,
           "Requests that completed successfully (cached or executed).");
  w.sample("mpct_requests_completed_total", {}, completed.value());
  w.header("mpct_requests_rejected_total", PromWriter::Type::Counter,
           "Requests rejected, by reason.");
  w.sample("mpct_requests_rejected_total", "reason=\"queue_full\"",
           rejected_queue_full.value());
  w.sample("mpct_requests_rejected_total", "reason=\"deadline\"",
           rejected_deadline.value());
  w.sample("mpct_requests_rejected_total", "reason=\"shutdown\"",
           rejected_shutdown.value());
  w.header("mpct_requests_expired_in_queue_total", PromWriter::Type::Counter,
           "Accepted requests whose deadline expired before execution "
           "(strict subset of reason=\"deadline\" rejections).");
  w.sample("mpct_requests_expired_in_queue_total", {},
           expired_in_queue.value());
  w.header("mpct_requests_failed_total", PromWriter::Type::Counter,
           "Requests that failed (parse / invalid / internal errors).");
  w.sample("mpct_requests_failed_total", {}, failed.value());

  w.header("mpct_queue_depth", PromWriter::Type::Gauge,
           "Requests currently waiting in the bounded queue.");
  w.sample("mpct_queue_depth", {},
           static_cast<double>(queue_depth.value()));
  w.header("mpct_in_flight", PromWriter::Type::Gauge,
           "Requests currently executing on workers.");
  w.sample("mpct_in_flight", {}, static_cast<double>(in_flight.value()));

  w.header("mpct_batches_total", PromWriter::Type::Counter,
           "Worker wake-ups that drained at least one request.");
  w.sample("mpct_batches_total", {}, batch_sizes.batches());
  w.header("mpct_batch_requests_total", PromWriter::Type::Counter,
           "Requests drained across all batches.");
  w.sample("mpct_batch_requests_total", {}, batch_sizes.requests());

  w.header("mpct_net_bytes_total", PromWriter::Type::Counter,
           "Bytes moved by the wire layer, by direction.");
  w.sample("mpct_net_bytes_total", "direction=\"in\"", net_bytes_in.value());
  w.sample("mpct_net_bytes_total", "direction=\"out\"", net_bytes_out.value());
  w.header("mpct_net_frames_total", PromWriter::Type::Counter,
           "Complete frames moved by the wire layer, by direction.");
  w.sample("mpct_net_frames_total", "direction=\"in\"", net_frames_in.value());
  w.sample("mpct_net_frames_total", "direction=\"out\"",
           net_frames_out.value());
  w.header("mpct_net_decode_errors_total", PromWriter::Type::Counter,
           "Frames or payloads that failed to decode.");
  w.sample("mpct_net_decode_errors_total", {}, net_decode_errors.value());
  w.header("mpct_net_connections_total", PromWriter::Type::Counter,
           "TCP connections, by lifecycle event.");
  w.sample("mpct_net_connections_total", "event=\"opened\"",
           net_connections_opened.value());
  w.sample("mpct_net_connections_total", "event=\"closed\"",
           net_connections_closed.value());
  w.header("mpct_net_active_connections", PromWriter::Type::Gauge,
           "Connections currently open on the server.");
  w.sample("mpct_net_active_connections", {},
           static_cast<double>(net_active_connections.value()));
  w.header("mpct_net_retries_total", PromWriter::Type::Counter,
           "Client reconnect-and-resend attempts.");
  w.sample("mpct_net_retries_total", {}, net_retries.value());
  w.header("mpct_net_requests_sent_total", PromWriter::Type::Counter,
           "Logical client requests (retries and hedges not re-counted).");
  w.sample("mpct_net_requests_sent_total", {}, net_requests_sent.value());
  w.header("mpct_net_hedges_total", PromWriter::Type::Counter,
           "Speculative hedged duplicates, by outcome.");
  w.sample("mpct_net_hedges_total", "event=\"sent\"", net_hedges_sent.value());
  w.sample("mpct_net_hedges_total", "event=\"won\"", net_hedges_won.value());
  w.header("mpct_net_failovers_total", PromWriter::Type::Counter,
           "Requests re-routed off an unhealthy endpoint.");
  w.sample("mpct_net_failovers_total", {}, net_failovers.value());

  w.header("mpct_sim_runs_total", PromWriter::Type::Counter,
           "Workload simulations executed (cache hits not re-counted).");
  w.sample("mpct_sim_runs_total", {}, sim_runs.value());
  w.header("mpct_sim_cycles_total", PromWriter::Type::Counter,
           "Machine cycles across all workload simulations.");
  w.sample("mpct_sim_cycles_total", {}, sim_cycles.value());
  w.header("mpct_sim_fault_runs_total", PromWriter::Type::Counter,
           "Workload simulations that injected at least one fault.");
  w.sample("mpct_sim_fault_runs_total", {}, sim_fault_runs.value());

  w.header("mpct_trace_spans_total", PromWriter::Type::Counter,
           "Spans through the streaming exporter, by outcome (exported = "
           "shipped; dropped = lost to ring wrap or shed batches; "
           "sampled_out = discarded by the head-sampling policy).");
  w.sample("mpct_trace_spans_total", "outcome=\"exported\"",
           trace_spans_exported.value());
  w.sample("mpct_trace_spans_total", "outcome=\"dropped\"",
           trace_spans_dropped.value());
  w.sample("mpct_trace_spans_total", "outcome=\"sampled_out\"",
           trace_spans_sampled_out.value());
  w.header("mpct_trace_batches_total", PromWriter::Type::Counter,
           "Span batches through the streaming exporter, by outcome.");
  w.sample("mpct_trace_batches_total", "outcome=\"sent\"",
           trace_batches_sent.value());
  w.sample("mpct_trace_batches_total", "outcome=\"dropped\"",
           trace_batches_dropped.value());
  w.header("mpct_trace_collector_batches_total", PromWriter::Type::Counter,
           "Span batches absorbed by this process's collector server.");
  w.sample("mpct_trace_collector_batches_total", {},
           trace_collector_batches.value());
  w.header("mpct_trace_collector_spans_total", PromWriter::Type::Counter,
           "Spans absorbed by this process's collector server.");
  w.sample("mpct_trace_collector_spans_total", {},
           trace_collector_spans.value());

  w.header("mpct_qos_shed_total", PromWriter::Type::Counter,
           "Requests rejected by admission control, by priority class "
           "(disjoint from mpct_requests_rejected_total: a shed answers "
           "Overloaded and touches no lifecycle rejection counter).");
  w.sample("mpct_qos_shed_total", "class=\"background\"",
           qos_shed_background.value());
  w.sample("mpct_qos_shed_total", "class=\"batch\"", qos_shed_batch.value());
  w.header("mpct_qos_degraded_responses_total", PromWriter::Type::Counter,
           "Responses served at reduced precision under pressure "
           "(strided subgrid sweeps, cache entries past soft-TTL).");
  w.sample("mpct_qos_degraded_responses_total", {},
           qos_degraded_responses.value());
  w.header("mpct_qos_cancelled_total", PromWriter::Type::Counter,
           "Server-side cancellations honoured, by where the request "
           "was caught.");
  w.sample("mpct_qos_cancelled_total", "stage=\"queued\"",
           qos_cancelled_queued.value());
  w.sample("mpct_qos_cancelled_total", "stage=\"in_flight\"",
           qos_cancelled_inflight.value());
  w.header("mpct_qos_cancels_total", PromWriter::Type::Counter,
           "Wire CancelRequest frames, by direction.");
  w.sample("mpct_qos_cancels_total", "direction=\"received\"",
           qos_cancels_received.value());
  w.sample("mpct_qos_cancels_total", "direction=\"sent\"",
           qos_cancels_sent.value());

  w.header("mpct_cache_hits_total", PromWriter::Type::Counter,
           "Result-cache hits.");
  w.sample("mpct_cache_hits_total", {}, cache_hits.value());
  w.header("mpct_cache_misses_total", PromWriter::Type::Counter,
           "Result-cache misses.");
  w.sample("mpct_cache_misses_total", {}, cache_misses.value());
  w.header("mpct_cache_entries", PromWriter::Type::Gauge,
           "Entries currently resident in the result cache.");
  w.sample("mpct_cache_entries", {},
           static_cast<std::uint64_t>(cache.entries));
  w.header("mpct_cache_insertions_total", PromWriter::Type::Counter,
           "Result-cache insertions.");
  w.sample("mpct_cache_insertions_total", {},
           static_cast<std::uint64_t>(cache.insertions));
  w.header("mpct_cache_evictions_total", PromWriter::Type::Counter,
           "Result-cache LRU evictions.");
  w.sample("mpct_cache_evictions_total", {},
           static_cast<std::uint64_t>(cache.evictions));

  // Per-type latency histograms.  Cumulative buckets; the inclusive
  // `le` bound of bucket i is its inclusive upper edge 2^(i+1) - 1 ns
  // (see the pinned boundary semantics in metrics.hpp).
  w.header("mpct_request_latency_seconds", PromWriter::Type::Histogram,
           "Submit-to-completion latency by request type.");
  for (std::size_t t = 0; t < kRequestTypeCount; ++t) {
    const auto type = static_cast<RequestType>(t);
    const LatencyHistogram::Buckets snap = latency(type).buckets();
    const std::string type_label =
        std::string("type=\"") + std::string(to_string(type)) + "\"";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      cumulative += snap.counts[i];
      if (i + 1 == LatencyHistogram::kBucketCount) break;  // +Inf below
      char le[64];
      std::snprintf(le, sizeof(le), "%s,le=\"%.9g\"", type_label.c_str(),
                    static_cast<double>(
                        LatencyHistogram::bucket_upper_ns(i)) /
                        1e9);
      w.sample("mpct_request_latency_seconds_bucket", le, cumulative);
    }
    w.inf_bucket("mpct_request_latency_seconds_bucket", type_label,
                 cumulative);
    w.sample("mpct_request_latency_seconds_sum", type_label,
             static_cast<double>(snap.sum_ns) / 1e9);
    w.sample("mpct_request_latency_seconds_count", type_label, snap.count);
  }

  if (include_profile) {
    trace::render_profile(w, trace::Tracer::instance().snapshot());
  }
  return w.str();
}

}  // namespace mpct::service
