#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/fingerprint.hpp"

namespace mpct::service {

/// Aggregated (or per-shard) cache accounting.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    entries += other.entries;
    return *this;
  }
};

/// Sharded LRU result cache keyed by canonical request fingerprint.
///
/// Sharding bounds contention: a lookup locks only the shard the key
/// hashes to, so concurrent workers touching different shards never
/// serialise.  Each shard is an independent LRU (intrusive list + hash
/// map, both O(1)); eviction is per shard, so the configured capacity is
/// a per-shard budget and total capacity = shards x capacity_per_shard.
///
/// Values are held as shared_ptr<const Value>: a hit hands the caller a
/// reference to the immutable cached object without copying it under the
/// shard lock, and eviction while a reader still holds the pointer is
/// safe.
template <typename Value>
class ShardedLruCache {
 public:
  /// shard_count is rounded up to a power of two (so shard selection is a
  /// mask, not a modulo); both parameters are clamped to >= 1.
  ShardedLruCache(std::size_t shard_count, std::size_t capacity_per_shard)
      : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard),
        shards_(round_up_pow2(shard_count == 0 ? 1 : shard_count)) {}

  std::shared_ptr<const Value> get(Fingerprint key) {
    return get(key, nullptr);
  }

  /// Lookup that also reports how long ago the entry was inserted (or
  /// last refreshed by put()) — what the engine's soft-TTL ladder
  /// compares against.  @p age_out may be null.
  std::shared_ptr<const Value> get(Fingerprint key,
                                   std::chrono::steady_clock::duration* age_out) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    // Move to the front of the recency list.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.hits;
    if (age_out) {
      *age_out = std::chrono::steady_clock::now() - it->second->inserted;
    }
    return it->second->value;
  }

  /// Insert (or refresh) an entry; evicts the least recently used entry
  /// of the same shard when the shard is full.
  void put(Fingerprint key, std::shared_ptr<const Value> value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      it->second->inserted = std::chrono::steady_clock::now();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= capacity_per_shard_) {
      const Entry& victim = shard.lru.back();
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
    shard.lru.push_front(
        Entry{key, std::move(value), std::chrono::steady_clock::now()});
    shard.index.emplace(key, shard.lru.begin());
    ++shard.stats.insertions;
  }

  void put(Fingerprint key, Value value) {
    put(key, std::make_shared<const Value>(std::move(value)));
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity_per_shard() const { return capacity_per_shard_; }
  std::size_t capacity() const { return shards_.size() * capacity_per_shard_; }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.lru.size();
    }
    return total;
  }

  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      CacheStats s = shard.stats;
      s.entries = shard.lru.size();
      total += s;
    }
    return total;
  }

  std::vector<CacheStats> shard_stats() const {
    std::vector<CacheStats> out;
    out.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      CacheStats s = shard.stats;
      s.entries = shard.lru.size();
      out.push_back(s);
    }
    return out;
  }

 private:
  struct Entry {
    Fingerprint key = 0;
    std::shared_ptr<const Value> value;
    /// Insert/refresh time — what get(key, &age) measures against.
    std::chrono::steady_clock::time_point inserted{};
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Fingerprint, typename std::list<Entry>::iterator> index;
    CacheStats stats;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& shard_for(Fingerprint key) {
    // The fingerprint is already well mixed (FNV-1a); fold the high bits
    // down so shard choice uses entropy the in-shard hash map does not.
    const std::uint64_t folded = key ^ (key >> 32);
    return shards_[folded & (shards_.size() - 1)];
  }

  const std::size_t capacity_per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace mpct::service
