#pragma once

#include <cstdint>
#include <string_view>

#include "arch/spec.hpp"
#include "core/machine_class.hpp"
#include "cost/area_model.hpp"
#include "explore/recommend.hpp"
#include "explore/sweep.hpp"
#include "fault/degradation_curve.hpp"
#include "service/request.hpp"

namespace mpct::service {

/// 64-bit canonical request hash used as the result-cache key.
///
/// Two requests that would produce byte-identical responses (under one
/// engine, i.e. one component library) hash equal; the hash walks every
/// field that influences the response, so a change to any count,
/// connectivity cell, requirement, or estimate option changes the key.
/// ADL-text classify requests are keyed on the raw text — two textual
/// spellings of the same spec may occupy two cache slots, which costs a
/// duplicate entry but never a wrong answer.
///
/// Fingerprints are process-local cache keys: the word-at-a-time mixing
/// makes them endianness-dependent, so they must not be persisted or
/// compared across machines or library versions.
using Fingerprint = std::uint64_t;

/// Incremental FNV-1a 64 hasher.  Each mix() call also folds in the value
/// width so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
class FingerprintBuilder {
 public:
  FingerprintBuilder& mix_bytes(const void* data, std::size_t size);
  FingerprintBuilder& mix(std::string_view text);
  FingerprintBuilder& mix(std::uint64_t value);
  FingerprintBuilder& mix(std::int64_t value);
  FingerprintBuilder& mix(int value);
  FingerprintBuilder& mix(bool value);
  FingerprintBuilder& mix(double value);

  Fingerprint value() const { return hash_; }

 private:
  static constexpr Fingerprint kOffsetBasis = 0xcbf29ce484222325ULL;
  Fingerprint hash_ = kOffsetBasis;
};

Fingerprint fingerprint(const arch::Count& count);
Fingerprint fingerprint(const arch::ConnectivityExpr& expr);
Fingerprint fingerprint(const arch::ArchitectureSpec& spec);
Fingerprint fingerprint(const MachineClass& mc);
Fingerprint fingerprint(const explore::Requirements& requirements);
Fingerprint fingerprint(const explore::SweepGrid& grid);
Fingerprint fingerprint(const cost::EstimateOptions& options);
Fingerprint fingerprint(const fault::CurveSpec& spec);
Fingerprint fingerprint(const fault::FaultSet& faults);
Fingerprint fingerprint(const workload::WorkloadSpec& spec);
Fingerprint fingerprint(const workload::RunOptions& options);

/// Key for a whole request; the request-type tag is mixed first so the
/// three request spaces cannot collide with each other.
Fingerprint fingerprint(const Request& request);

}  // namespace mpct::service
