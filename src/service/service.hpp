#pragma once

/// mpct::service — the concurrent taxonomy query engine.
///
/// Turns the library's synchronous entry points into a serving layer:
/// batched classify / recommend / cost requests with per-request
/// deadlines, a fixed worker pool behind a bounded MPMC queue with
/// explicit backpressure, a sharded LRU result cache keyed by canonical
/// request fingerprints, and a metrics registry (counters, gauges,
/// latency histograms) renderable through src/report/.
///
/// See docs/SERVICE.md for the request types, the backpressure contract,
/// cache keying, and the metrics schema.

#include "service/cache.hpp"
#include "service/engine.hpp"
#include "service/fingerprint.hpp"
#include "service/metrics.hpp"
#include "service/queue.hpp"
#include "service/request.hpp"
#include "service/status.hpp"
