#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace mpct::service {

/// Outcome category of a query.  The engine never throws across the
/// submit/execute boundary: every failure mode an operator must react to
/// differently gets its own code so callers can branch without parsing
/// message strings.
enum class StatusCode : int {
  Ok = 0,
  /// The bounded request queue was full; the request was *not* enqueued.
  /// This is the backpressure signal — retry later or shed load upstream.
  QueueFull = 1,
  /// The request's deadline had already passed when a worker picked it
  /// up (or when it was submitted).  The work was not performed.
  DeadlineExceeded = 2,
  /// ClassifyRequest over ADL text that did not parse; the message
  /// carries every parser diagnostic joined with "; ".
  ParseError = 3,
  /// Structurally invalid request (e.g. an empty cost sweep with a
  /// non-positive n, or a recommend floor above the maximum score).
  InvalidRequest = 4,
  /// The engine is shutting down and no longer accepts work.
  ShuttingDown = 5,
  /// An unexpected exception escaped the underlying library call; the
  /// message carries e.what().  Indicates a bug — please report it.
  InternalError = 6,
  /// The network client could not reach the server (connect/send/receive
  /// failure that survived every retry).  The request may or may not
  /// have executed remotely; all requests are idempotent, so resubmitting
  /// is always safe.
  Unavailable = 7,
  /// The peer sent bytes that do not decode to a valid frame.  Emitted
  /// by the wire layer (src/wire), never by the engine itself.
  ProtocolError = 8,
  /// Version negotiation failed: the client's advertised version range
  /// does not intersect what this server speaks (wire Hello/HelloAck).
  UnsupportedVersion = 9,
  /// Admission control shed this request: the service is past its
  /// pressure threshold for the request's priority class.  Distinct
  /// from QueueFull (a per-class subqueue overflowing) — Overloaded is
  /// a *policy* rejection and carries a retry-after hint that
  /// net::Client / ClusterClient honour in their backoff.
  Overloaded = 10,
  /// The request was cancelled server-side (wire CancelRequest) before
  /// it produced a result — typically a hedged duplicate whose sibling
  /// already won.  The work was dequeued or abandoned at a chunk
  /// boundary; no payload is attached.
  Cancelled = 11,
};

std::string_view to_string(StatusCode code);

/// Status of one query: a code plus a human-readable detail message
/// (empty on success).
struct Status {
  StatusCode code = StatusCode::Ok;
  std::string message;
  /// Overloaded only: how long the shedding server suggests waiting
  /// before a retry (0 = no hint).  Travels the wire as a v2 response
  /// extension; clients sleep max(backoff, hint).
  std::uint32_t retry_after_ms = 0;

  bool ok() const { return code == StatusCode::Ok; }

  static Status okay() { return {}; }
  static Status queue_full() {
    return {StatusCode::QueueFull, "bounded queue full; request rejected"};
  }
  static Status deadline_exceeded() {
    return {StatusCode::DeadlineExceeded, "deadline expired before execution"};
  }
  static Status parse_error(std::string message) {
    return {StatusCode::ParseError, std::move(message)};
  }
  static Status invalid_request(std::string message) {
    return {StatusCode::InvalidRequest, std::move(message)};
  }
  static Status shutting_down() {
    return {StatusCode::ShuttingDown, "engine is shutting down"};
  }
  static Status internal_error(std::string message) {
    return {StatusCode::InternalError, std::move(message)};
  }
  static Status unavailable(std::string message) {
    return {StatusCode::Unavailable, std::move(message)};
  }
  static Status protocol_error(std::string message) {
    return {StatusCode::ProtocolError, std::move(message)};
  }
  static Status unsupported_version(std::string message) {
    return {StatusCode::UnsupportedVersion, std::move(message)};
  }
  static Status overloaded(std::string message, std::uint32_t retry_after_ms) {
    return {StatusCode::Overloaded, std::move(message), retry_after_ms};
  }
  static Status cancelled() {
    return {StatusCode::Cancelled, "request cancelled by the client"};
  }

  /// "ok" or "queue-full: bounded queue full; request rejected".
  std::string to_string() const;

  friend bool operator==(const Status&, const Status&) = default;
};

}  // namespace mpct::service
