#include "service/engine.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "arch/adl_parser.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "explore/recommend.hpp"
#include "service/fingerprint.hpp"

namespace mpct::service {

namespace {

QueryResponse rejected(Status status) {
  QueryResponse response;
  response.status = std::move(status);
  return response;
}

std::future<QueryResponse> ready_future(QueryResponse response) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

QueryResponse execute_classify(const ClassifyRequest& request) {
  QueryResponse response;
  ClassifyResponse payload;
  if (const auto* spec = std::get_if<arch::ArchitectureSpec>(&request.input)) {
    payload.spec = *spec;
  } else {
    const arch::ParseResult parsed =
        arch::parse_single_adl(std::get<std::string>(request.input));
    if (!parsed.ok()) {
      std::string message;
      for (const arch::ParseError& error : parsed.errors) {
        if (!message.empty()) message += "; ";
        message += error.to_string();
      }
      response.status = Status::parse_error(std::move(message));
      return response;
    }
    payload.spec = parsed.specs.front();
  }
  payload.classification = payload.spec.classify();
  payload.flexibility = payload.spec.flexibility();
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

QueryResponse execute_recommend(const RecommendRequest& request,
                                const cost::ComponentLibrary& library) {
  QueryResponse response;
  if (request.requirements.n <= 0) {
    response.status = Status::invalid_request(
        "recommend: design-point n must be positive, got " +
        std::to_string(request.requirements.n));
    return response;
  }
  RecommendResponse payload;
  payload.recommendations =
      explore::recommend(request.requirements, library);
  if (request.top_k != 0 &&
      payload.recommendations.size() > request.top_k) {
    payload.recommendations.resize(request.top_k);
  }
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

QueryResponse execute_cost(const CostRequest& request,
                           const cost::ComponentLibrary& library) {
  QueryResponse response;
  std::vector<std::int64_t> sweep = request.n_sweep;
  if (sweep.empty()) sweep.push_back(request.options.n);
  for (std::int64_t n : sweep) {
    if (n <= 0) {
      response.status = Status::invalid_request(
          "cost: sweep value n must be positive, got " + std::to_string(n));
      return response;
    }
  }
  CostResponse payload;
  payload.points.reserve(sweep.size());
  for (std::int64_t n : sweep) {
    cost::EstimateOptions options = request.options;
    options.n = n;
    CostResponse::Point point;
    point.n = n;
    if (const auto* mc = std::get_if<MachineClass>(&request.target)) {
      point.area = cost::estimate_area(*mc, library, options);
      point.config_bits = cost::estimate_config_bits(*mc, library, options);
    } else {
      const auto& spec = std::get<arch::ArchitectureSpec>(request.target);
      point.area = cost::estimate_area(spec, library, options);
      point.config_bits = cost::estimate_config_bits(spec, library, options);
    }
    payload.points.push_back(std::move(point));
  }
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

}  // namespace

QueryEngine::QueryEngine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards, options_.cache_capacity_per_shard),
      queue_(std::make_unique<BoundedQueue<Task>>(
          options_.queue_capacity == 0 ? 1 : options_.queue_capacity)) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.start_workers) start();
}

QueryEngine::~QueryEngine() { shutdown(); }

void QueryEngine::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_ || shutdown_ || options_.worker_threads == 0) return;
  started_ = true;
  workers_.reserve(options_.worker_threads);
  for (unsigned i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::future<QueryResponse> QueryEngine::submit(Request request,
                                               Deadline deadline) {
  metrics_.submitted.add();

  if (deadline.expired()) {
    metrics_.rejected_deadline.add();
    return ready_future(rejected(Status::deadline_exceeded()));
  }

  if (options_.worker_threads == 0) {
    // Single-threaded fallback: execute inline, deterministically.
    metrics_.batch_sizes.record(1);
    return ready_future(run_request(request, deadline, Clock::now()));
  }

  Task task;
  task.request = std::move(request);
  task.deadline = deadline;
  task.enqueued = Clock::now();
  std::future<QueryResponse> future = task.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) {
      metrics_.rejected_shutdown.add();
      return ready_future(rejected(Status::shutting_down()));
    }
    if (!queue_->try_push(task)) {
      metrics_.rejected_queue_full.add();
      return ready_future(rejected(Status::queue_full()));
    }
    ++pending_;
  }
  metrics_.queue_depth.increment();
  return future;
}

std::vector<std::future<QueryResponse>> QueryEngine::submit_batch(
    std::vector<Request> requests, Deadline deadline) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(submit(std::move(request), deadline));
  }
  return futures;
}

QueryResponse QueryEngine::execute(const Request& request, Deadline deadline) {
  metrics_.submitted.add();
  if (deadline.expired()) {
    metrics_.rejected_deadline.add();
    return rejected(Status::deadline_exceeded());
  }
  return run_request(request, deadline, Clock::now());
}

void QueryEngine::worker_loop() {
  std::vector<Task> batch;
  for (;;) {
    batch.clear();
    Task first;
    if (!queue_->pop(first)) return;  // closed and drained
    batch.push_back(std::move(first));
    while (batch.size() < options_.max_batch) {
      std::optional<Task> next = queue_->try_pop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    metrics_.batch_sizes.record(batch.size());
    for (Task& task : batch) {
      metrics_.queue_depth.decrement();
      metrics_.in_flight.increment();
      QueryResponse response =
          run_request(task.request, task.deadline, task.enqueued);
      metrics_.in_flight.decrement();
      finish_task(task, std::move(response));
    }
  }
}

void QueryEngine::finish_task(Task& task, QueryResponse response) {
  task.promise.set_value(std::move(response));
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    --pending_;
  }
  drained_.notify_all();
}

QueryResponse QueryEngine::run_request(const Request& request,
                                       Deadline deadline,
                                       Clock::time_point start) {
  QueryResponse response;
  if (deadline.expired()) {
    metrics_.rejected_deadline.add();
    response = rejected(Status::deadline_exceeded());
  } else {
    response = execute_cached(request);
  }
  response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - start);
  metrics_.latency(request_type(request)).record(response.latency);
  if (response.ok()) {
    metrics_.completed.add();
  } else if (response.status.code != StatusCode::DeadlineExceeded) {
    metrics_.failed.add();
  }
  return response;
}

QueryResponse QueryEngine::execute_cached(const Request& request) {
  if (!options_.enable_cache) return execute_uncached(request);

  const Fingerprint key = fingerprint(request);
  if (std::shared_ptr<const ResponsePayload> hit = cache_.get(key)) {
    metrics_.cache_hits.add();
    QueryResponse response;
    response.payload = std::move(hit);
    response.cache_hit = true;
    return response;
  }
  metrics_.cache_misses.add();
  QueryResponse response = execute_uncached(request);
  if (response.ok()) cache_.put(key, response.payload);
  return response;
}

QueryResponse QueryEngine::execute_uncached(const Request& request) const {
  try {
    return std::visit(
        [this](const auto& req) -> QueryResponse {
          using T = std::decay_t<decltype(req)>;
          if constexpr (std::is_same_v<T, ClassifyRequest>) {
            return execute_classify(req);
          } else if constexpr (std::is_same_v<T, RecommendRequest>) {
            return execute_recommend(req, options_.library);
          } else {
            return execute_cost(req, options_.library);
          }
        },
        request);
  } catch (const std::exception& e) {
    return rejected(Status::internal_error(e.what()));
  } catch (...) {
    return rejected(Status::internal_error("unknown exception"));
  }
}

void QueryEngine::drain() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  drained_.wait(lock, [this] { return pending_ == 0; });
}

void QueryEngine::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  queue_->close();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  // An engine that was never start()ed can still hold enqueued tasks;
  // every accepted future must become ready, so reject them here.
  while (std::optional<Task> leftover = queue_->try_pop()) {
    metrics_.queue_depth.decrement();
    metrics_.rejected_shutdown.add();
    finish_task(*leftover, rejected(Status::shutting_down()));
  }
}

}  // namespace mpct::service
