#include "service/engine.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "arch/adl_parser.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "explore/recommend.hpp"
#include "service/fingerprint.hpp"
#include "trace/trace.hpp"

namespace mpct::service {

namespace {

/// Static-storage span name for the per-type execute span (trace span
/// names must outlive the tracer, so no runtime concatenation).
const char* execute_span_name(RequestType type) {
  switch (type) {
    case RequestType::Classify:   return "execute.classify";
    case RequestType::Recommend:  return "execute.recommend";
    case RequestType::Cost:       return "execute.cost";
    case RequestType::Sweep:      return "execute.sweep";
    case RequestType::FaultSweep: return "execute.fault_sweep";
    case RequestType::SweepChunk: return "execute.sweep_chunk";
    case RequestType::FaultChunk: return "execute.fault_chunk";
    case RequestType::Simulate:   return "execute.simulate";
  }
  return "execute";
}

QueryResponse rejected(Status status) {
  QueryResponse response;
  response.status = std::move(status);
  return response;
}

std::future<QueryResponse> ready_future(QueryResponse response) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

/// Resolve an immediately-available response on the submitter's thread:
/// through the callback (submit_async, returning an invalid future the
/// caller discards) or as a ready future (submit).
std::future<QueryResponse> resolve_ready(
    const QueryEngine::ResponseCallback& callback, QueryResponse response) {
  if (callback) {
    callback(std::move(response));
    return {};
  }
  return ready_future(std::move(response));
}

QueryResponse execute_classify(const ClassifyRequest& request) {
  QueryResponse response;
  ClassifyResponse payload;
  if (const auto* spec = std::get_if<arch::ArchitectureSpec>(&request.input)) {
    payload.spec = *spec;
  } else {
    const arch::ParseResult parsed =
        arch::parse_single_adl(std::get<std::string>(request.input));
    if (!parsed.ok()) {
      std::string message;
      for (const arch::ParseError& error : parsed.errors) {
        if (!message.empty()) message += "; ";
        message += error.to_string();
      }
      response.status = Status::parse_error(std::move(message));
      return response;
    }
    payload.spec = parsed.specs.front();
  }
  payload.classification = payload.spec.classify();
  payload.flexibility = payload.spec.flexibility();
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

QueryResponse execute_recommend(const RecommendRequest& request,
                                const cost::ComponentLibrary& library) {
  QueryResponse response;
  if (request.requirements.n <= 0) {
    response.status = Status::invalid_request(
        "recommend: design-point n must be positive, got " +
        std::to_string(request.requirements.n));
    return response;
  }
  RecommendResponse payload;
  payload.recommendations =
      explore::recommend(request.requirements, library);
  if (request.top_k != 0 &&
      payload.recommendations.size() > request.top_k) {
    payload.recommendations.resize(request.top_k);
  }
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

Status validate_sweep(const explore::SweepGrid& grid) {
  const explore::SweepGrid g = grid.normalized();
  for (std::int64_t n : g.n_values) {
    if (n <= 0) {
      return Status::invalid_request(
          "sweep: design-point n must be positive, got " + std::to_string(n));
    }
  }
  for (std::int64_t v : g.lut_budgets) {
    if (v <= 0) {
      return Status::invalid_request(
          "sweep: lut_budget must be positive, got " + std::to_string(v));
    }
  }
  return Status::okay();
}

/// Sequential sweep — the inline (worker_threads == 0) and execute()
/// paths; the worker pool goes through submit_sweep() instead.
QueryResponse execute_sweep(const SweepRequest& request,
                            const cost::ComponentLibrary& library) {
  QueryResponse response;
  Status valid = validate_sweep(request.grid);
  if (!valid.ok()) {
    response.status = std::move(valid);
    return response;
  }
  SweepResponse payload;
  payload.result = explore::sweep(request.grid, library);
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

Status validate_curve(const fault::CurveSpec& spec) {
  for (double rate : spec.fault_rates) {
    if (!(rate >= 0.0 && rate <= 1.0)) {
      return Status::invalid_request(
          "fault_sweep: fault rate must be in [0, 1], got " +
          std::to_string(rate));
    }
  }
  if (spec.trials_per_rate <= 0) {
    return Status::invalid_request(
        "fault_sweep: trials_per_rate must be positive, got " +
        std::to_string(spec.trials_per_rate));
  }
  if ((spec.noc_width > 0) != (spec.noc_height > 0)) {
    return Status::invalid_request(
        "fault_sweep: NoC needs both dimensions positive, got " +
        std::to_string(spec.noc_width) + "x" +
        std::to_string(spec.noc_height));
  }
  return Status::okay();
}

/// Sequential curve — the inline (worker_threads == 0) and execute()
/// paths; the worker pool goes through submit_fault_sweep() instead.
QueryResponse execute_fault_sweep(const FaultSweepRequest& request,
                                  const cost::ComponentLibrary& library) {
  QueryResponse response;
  Status valid = validate_curve(request.spec);
  if (!valid.ok()) {
    response.status = std::move(valid);
    return response;
  }
  FaultSweepResponse payload;
  payload.result = fault::evaluate_curve(request.spec, library);
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

Status validate_chunk_range(std::string_view what, std::uint64_t begin,
                            std::uint64_t end, std::uint64_t cells) {
  if (begin >= end || end > cells) {
    return Status::invalid_request(
        std::string(what) + ": chunk range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") invalid for " + std::to_string(cells) +
        " cells");
  }
  return Status::okay();
}

/// One disjoint cell range of a sweep, executed on a single worker — how
/// the cluster proxy scatters a grid across backends.  Unlike a full
/// SweepRequest this goes through the normal cached single-task path, so
/// a repeated chunk (same grid, same range) is a cache hit on the server
/// that owns it on the consistent-hash ring.
QueryResponse execute_sweep_chunk(const SweepChunkRequest& request,
                                  const cost::ComponentLibrary& library) {
  QueryResponse response;
  Status valid = validate_sweep(request.grid);
  if (!valid.ok()) {
    response.status = std::move(valid);
    return response;
  }
  explore::SweepEvaluator evaluator(request.grid, library);
  valid = validate_chunk_range("sweep_chunk", request.begin, request.end,
                               evaluator.cell_count());
  if (!valid.ok()) {
    response.status = std::move(valid);
    return response;
  }
  SweepChunkResponse payload;
  payload.points.resize(request.end - request.begin);
  evaluator.evaluate_range(request.begin, request.end, payload.points.data());
  payload.candidate_classes = evaluator.candidate_count();
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

/// One disjoint (rate x trial) cell range of a degradation curve.  The
/// chunk carries the full spec because each trial's RNG stream derives
/// from its flat cell index over the whole spec — so outcomes are
/// bit-identical to the same cells of a single-server evaluation.
QueryResponse execute_fault_chunk(const FaultChunkRequest& request,
                                  const cost::ComponentLibrary& library) {
  QueryResponse response;
  Status valid = validate_curve(request.spec);
  if (!valid.ok()) {
    response.status = std::move(valid);
    return response;
  }
  fault::CurveEvaluator evaluator(request.spec, library);
  valid = validate_chunk_range("fault_chunk", request.begin, request.end,
                               evaluator.cell_count());
  if (!valid.ok()) {
    response.status = std::move(valid);
    return response;
  }
  FaultChunkResponse payload;
  payload.outcomes.resize(request.end - request.begin);
  evaluator.evaluate_range(request.begin, request.end,
                           payload.outcomes.data());
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

/// Lower a workload onto the machine the target names and run it.  The
/// request is wrong (InvalidRequest) whenever the lowering refuses it:
/// bad spec bounds, an unclassifiable target, a class without the
/// switches the kernel needs, or faults that break the fixed mapping.
/// Only a genuine machine trap escapes to the InternalError catch-all.
QueryResponse execute_simulate(const SimulateRequest& request) {
  QueryResponse response;
  const std::string bad_spec = workload::validate(request.workload);
  if (!bad_spec.empty()) {
    response.status = Status::invalid_request("simulate: " + bad_spec);
    return response;
  }
  if (request.options.width < 1 || request.options.width > 64) {
    response.status = Status::invalid_request(
        "simulate: width must be 1..64, got " +
        std::to_string(request.options.width));
    return response;
  }
  if (request.options.max_cycles < 1 ||
      request.options.max_cycles > 100'000'000) {
    response.status = Status::invalid_request(
        "simulate: max_cycles must be 1..100000000, got " +
        std::to_string(request.options.max_cycles));
    return response;
  }
  MachineClass target;
  if (const auto* mc = std::get_if<MachineClass>(&request.target)) {
    target = *mc;
  } else {
    const auto& spec = std::get<arch::ArchitectureSpec>(request.target);
    const Classification classification = spec.classify();
    if (!classification.ok()) {
      response.status = Status::invalid_request(
          "simulate: target spec is not a runnable taxonomy class: " +
          classification.note);
      return response;
    }
    const std::optional<MachineClass> canonical =
        canonical_class(*classification.name);
    if (!canonical) {
      response.status = Status::invalid_request(
          "simulate: " + to_string(*classification.name) +
          " has no canonical machine class");
      return response;
    }
    target = *canonical;
  }
  SimulateResponse payload;
  try {
    payload.result = workload::run_workload(request.workload, target,
                                            request.options, request.faults,
                                            request.seed);
  } catch (const workload::LoweringError& e) {
    response.status =
        Status::invalid_request(std::string("simulate: ") + e.what());
    return response;
  }
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

/// Keep every second element, always including the first; an axis of
/// fewer than two entries is left alone.
template <typename T>
void stride_axis(std::vector<T>& axis) {
  if (axis.size() < 2) return;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < axis.size(); i += 2) {
    axis[kept++] = std::move(axis[i]);
  }
  axis.resize(kept);
}

/// Admission said Degrade: shrink grid work in place so it costs a
/// fraction of the full request — a sweep keeps every second n / LUT
/// value, a fault curve keeps every second rate at half the trials.
/// Returns true when the request actually shrank (the response must
/// then carry QueryResponse::sampled).  The strided grid fingerprints
/// differently from the full one, so degraded and full-precision
/// results never share a cache entry.
bool stride_for_degrade(Request& request) {
  if (auto* sweep = std::get_if<SweepRequest>(&request)) {
    explore::SweepGrid grid = sweep->grid.normalized();
    const std::size_t before = grid.cell_count();
    stride_axis(grid.n_values);
    stride_axis(grid.lut_budgets);
    if (grid.cell_count() == before) return false;
    sweep->grid = std::move(grid);
    return true;
  }
  if (auto* curve = std::get_if<FaultSweepRequest>(&request)) {
    fault::CurveSpec spec = curve->spec.normalized();
    const std::size_t before = spec.cell_count();
    stride_axis(spec.fault_rates);
    if (spec.trials_per_rate > 1) spec.trials_per_rate /= 2;
    if (spec.cell_count() == before) return false;
    curve->spec = std::move(spec);
    return true;
  }
  return false;
}

QueryResponse execute_cost(const CostRequest& request,
                           const cost::ComponentLibrary& library) {
  QueryResponse response;
  std::vector<std::int64_t> sweep = request.n_sweep;
  if (sweep.empty()) sweep.push_back(request.options.n);
  for (std::int64_t n : sweep) {
    if (n <= 0) {
      response.status = Status::invalid_request(
          "cost: sweep value n must be positive, got " + std::to_string(n));
      return response;
    }
  }
  CostResponse payload;
  payload.points.reserve(sweep.size());
  for (std::int64_t n : sweep) {
    cost::EstimateOptions options = request.options;
    options.n = n;
    CostResponse::Point point;
    point.n = n;
    if (const auto* mc = std::get_if<MachineClass>(&request.target)) {
      point.area = cost::estimate_area(*mc, library, options);
      point.config_bits = cost::estimate_config_bits(*mc, library, options);
    } else {
      const auto& spec = std::get<arch::ArchitectureSpec>(request.target);
      point.area = cost::estimate_area(spec, library, options);
      point.config_bits = cost::estimate_config_bits(spec, library, options);
    }
    payload.points.push_back(std::move(point));
  }
  response.payload =
      std::make_shared<const ResponsePayload>(std::move(payload));
  return response;
}

}  // namespace

QueryEngine::QueryEngine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards, options_.cache_capacity_per_shard),
      queue_(std::make_unique<qos::WfqQueue<Task>>(
          options_.queue_capacity == 0 ? 1 : options_.queue_capacity,
          options_.wfq_weights)),
      admission_(options_.admission) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.start_workers) start();
}

/// With QoS off, every task rides the Interactive subqueue no matter
/// its recorded class — one FIFO, byte-for-byte the pre-QoS dispatch
/// order.  The class is still stamped on the task so callers can
/// observe it.
qos::PriorityClass QueryEngine::enqueue_class(qos::PriorityClass cls) const {
  return options_.enable_qos ? cls : qos::PriorityClass::Interactive;
}

QueryEngine::~QueryEngine() { shutdown(); }

void QueryEngine::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_ || shutdown_ || options_.worker_threads == 0) return;
  started_ = true;
  workers_.reserve(options_.worker_threads);
  for (unsigned i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::future<QueryResponse> QueryEngine::submit(Request request,
                                               Deadline deadline) {
  return submit_impl(std::move(request), deadline, nullptr);
}

std::future<QueryResponse> QueryEngine::submit(Request request,
                                               Deadline deadline,
                                               qos::PriorityClass priority) {
  return submit_impl(std::move(request), deadline, nullptr, priority);
}

void QueryEngine::submit_async(Request request, Deadline deadline,
                               ResponseCallback callback) {
  submit_impl(std::move(request), deadline, std::move(callback));
}

void QueryEngine::submit_async(Request request, Deadline deadline,
                               qos::PriorityClass priority,
                               std::uint64_t cancel_owner,
                               std::uint64_t cancel_id,
                               ResponseCallback callback) {
  submit_impl(std::move(request), deadline, std::move(callback), priority,
              cancel_owner, cancel_id);
}

std::future<QueryResponse> QueryEngine::submit_impl(
    Request request, Deadline deadline, ResponseCallback callback,
    std::optional<qos::PriorityClass> priority, std::uint64_t cancel_owner,
    std::uint64_t cancel_id) {
  trace::ScopedSpan span("engine.submit", trace::Category::Engine, "type",
                         static_cast<std::int64_t>(request_type(request)));
  metrics_.submitted.add();

  if (deadline.expired()) {
    metrics_.rejected_deadline.add();
    trace::emit_instant("deadline.expired", trace::Category::Mark);
    return resolve_ready(callback, rejected(Status::deadline_exceeded()));
  }

  const qos::PriorityClass cls =
      priority.value_or(qos::default_priority(request));
  bool degraded = false;
  bool strided = false;
  if (options_.enable_qos) {
    admission_.observe(interactive_buckets(), Clock::now());
    const qos::Admission admission =
        admission_.decide(cls, queue_->max_fill());
    if (admission.action == qos::AdmissionAction::Shed) {
      // Disjoint from the lifecycle rejection counters by design: a
      // shed is a policy refusal, never counted as a deadline / queue /
      // shutdown event (docs/SERVICE.md, "Counting invariants").
      if (cls == qos::PriorityClass::Background) {
        metrics_.qos_shed_background.add();
      } else {
        metrics_.qos_shed_batch.add();
      }
      trace::emit_instant("qos.shed", trace::Category::Qos);
      return resolve_ready(
          callback,
          rejected(Status::overloaded(
              std::string(qos::to_string(cls)) + " load shed: pressure " +
                  std::to_string(admission.pressure),
              admission.retry_after_ms)));
    }
    if (admission.action == qos::AdmissionAction::Degrade) {
      degraded = true;
      strided = stride_for_degrade(request);
      if (strided) trace::emit_instant("qos.degrade", trace::Category::Qos);
    }
  }

  if (options_.worker_threads == 0) {
    // Single-threaded fallback: execute inline, deterministically.
    metrics_.batch_sizes.record(1);
    QueryResponse response =
        run_request(request, deadline, Clock::now(), degraded);
    if (strided) mark_degraded(response);
    return resolve_ready(callback, std::move(response));
  }

  if (auto* sweep_request = std::get_if<SweepRequest>(&request)) {
    return submit_sweep(std::move(*sweep_request), deadline,
                        std::move(callback), cls, degraded, strided,
                        cancel_owner, cancel_id);
  }
  if (auto* fault_request = std::get_if<FaultSweepRequest>(&request)) {
    return submit_fault_sweep(std::move(*fault_request), deadline,
                              std::move(callback), cls, degraded, strided,
                              cancel_owner, cancel_id);
  }

  Task task;
  task.request = std::move(request);
  task.deadline = deadline;
  task.enqueued = Clock::now();
  task.trace_id = trace::current_trace_id();
  task.callback = std::move(callback);
  task.priority = cls;
  task.allow_stale = degraded;
  if (cancel_owner != 0 || cancel_id != 0) {
    task.cancel = cancels_.add(cancel_owner, cancel_id);
    task.cancel_owner = cancel_owner;
    task.cancel_id = cancel_id;
  }
  std::future<QueryResponse> future;
  if (!task.callback) future = task.promise.get_future();

  Status rejection;
  {
    trace::ScopedSpan enqueue("engine.enqueue", trace::Category::Engine);
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) {
      metrics_.rejected_shutdown.add();
      rejection = Status::shutting_down();
    } else if (!queue_->try_push(enqueue_class(cls), task)) {
      metrics_.rejected_queue_full.add();
      rejection = Status::queue_full();
    } else {
      ++pending_;
    }
  }
  if (!rejection.ok()) {
    if (task.cancel) cancels_.erase(task.cancel_owner, task.cancel_id);
    // Resolved after the lock is released so a callback can never run
    // while the engine's lifecycle mutex is held.
    return resolve_ready(task.callback, rejected(std::move(rejection)));
  }
  metrics_.queue_depth.increment();
  return future;
}

std::vector<std::future<QueryResponse>> QueryEngine::submit_batch(
    std::vector<Request> requests, Deadline deadline) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(submit(std::move(request), deadline));
  }
  return futures;
}

QueryResponse QueryEngine::execute(const Request& request, Deadline deadline) {
  metrics_.submitted.add();
  if (deadline.expired()) {
    metrics_.rejected_deadline.add();
    return rejected(Status::deadline_exceeded());
  }
  return run_request(request, deadline, Clock::now());
}

void QueryEngine::worker_loop() {
  std::vector<Task> batch;
  for (;;) {
    batch.clear();
    Task first;
    if (!queue_->pop(first)) return;  // closed and drained
    batch.push_back(std::move(first));
    while (batch.size() < options_.max_batch) {
      std::optional<Task> next = queue_->try_pop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    metrics_.batch_sizes.record(batch.size());
    for (Task& task : batch) {
      metrics_.queue_depth.decrement();
      metrics_.in_flight.increment();
      // Restore the submitter's trace context for everything this task
      // records — queue.wait, execute spans, chunk spans, merge spans.
      trace::TraceContextScope context(task.trace_id);
      if (trace::enabled()) [[unlikely]] {
        // The wait is only measurable here: the submitter stamped
        // task.enqueued, this worker knows the dequeue time.
        trace::emit_span("queue.wait", trace::Category::Queue, task.enqueued,
                         Clock::now());
      }
      if (task.sweep_job) {
        run_sweep_chunk(task);
        metrics_.in_flight.decrement();
        continue;
      }
      if (task.curve_job) {
        run_curve_chunk(task);
        metrics_.in_flight.decrement();
        continue;
      }
      if (task.cancel && task.cancel->is_cancelled()) {
        // The cancel arrived after this worker popped the task (the
        // queue sweep missed it) — honour it here instead of spending
        // the execution.
        metrics_.qos_cancelled_inflight.add();
        trace::emit_instant("qos.cancelled", trace::Category::Qos);
        metrics_.in_flight.decrement();
        finish_task(task, rejected(Status::cancelled()));
        continue;
      }
      QueryResponse response = run_request(task.request, task.deadline,
                                           task.enqueued, task.allow_stale);
      metrics_.in_flight.decrement();
      finish_task(task, std::move(response));
    }
  }
}

void QueryEngine::finish_task(Task& task, QueryResponse response) {
  if (task.cancel) cancels_.erase(task.cancel_owner, task.cancel_id);
  if (task.callback) {
    task.callback(std::move(response));
  } else {
    task.promise.set_value(std::move(response));
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    --pending_;
  }
  drained_.notify_all();
}

bool QueryEngine::SweepJob::fail(StatusCode code, std::string message) {
  int expected = 0;
  if (fail_code.compare_exchange_strong(expected, static_cast<int>(code),
                                        std::memory_order_acq_rel)) {
    // Only the winning CAS writes the message; complete_sweep() reads it
    // after the final fetch_sub on `remaining` synchronizes with ours.
    fail_message = std::move(message);
    return true;
  }
  return false;
}

void QueryEngine::SweepJob::resolve(QueryResponse response) {
  if (callback) {
    callback(std::move(response));
  } else {
    promise.set_value(std::move(response));
  }
}

std::future<QueryResponse> QueryEngine::submit_sweep(
    SweepRequest request, Deadline deadline, ResponseCallback callback,
    qos::PriorityClass priority, bool degraded, bool strided,
    std::uint64_t cancel_owner, std::uint64_t cancel_id) {
  const Clock::time_point enqueued = Clock::now();

  Status valid = validate_sweep(request.grid);
  if (!valid.ok()) {
    metrics_.failed.add();
    return resolve_ready(callback, rejected(std::move(valid)));
  }

  // Same key fingerprint(Request) computes, without re-wrapping the
  // request: the type tag first, then the grid hash — so the inline and
  // chunk-parallel paths share cache entries.  A strided (degraded)
  // grid hashes differently, so it can only hit other degraded runs.
  FingerprintBuilder key_builder;
  key_builder.mix(static_cast<int>(RequestType::Sweep))
      .mix(fingerprint(request.grid));
  const Fingerprint key = key_builder.value();

  if (options_.enable_cache) {
    bool served_stale = false;
    std::shared_ptr<const ResponsePayload> hit;
    {
      trace::ScopedSpan probe("cache.probe", trace::Category::Cache);
      hit = probe_cache(key, degraded, served_stale);
      probe.annotate("hit", hit ? 1 : 0);
    }
    if (hit) {
      metrics_.cache_hits.add();
      QueryResponse response;
      response.payload = std::move(hit);
      response.cache_hit = true;
      if (served_stale || strided) mark_degraded(response);
      response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - enqueued);
      metrics_.latency(RequestType::Sweep).record(response.latency);
      metrics_.completed.add();
      return resolve_ready(callback, std::move(response));
    }
    metrics_.cache_misses.add();
  }

  auto job = std::make_shared<SweepJob>(
      explore::SweepEvaluator(request.grid, options_.library));
  const std::size_t cells = job->evaluator.cell_count();
  job->points.resize(cells);
  job->key = key;
  job->enqueued = enqueued;
  job->trace_id = trace::current_trace_id();
  job->callback = std::move(callback);
  job->sampled = strided;
  if (cancel_owner != 0 || cancel_id != 0) {
    job->cancel = cancels_.add(cancel_owner, cancel_id);
    job->cancel_owner = cancel_owner;
    job->cancel_id = cancel_id;
  }
  std::future<QueryResponse> future;
  if (!job->callback) future = job->promise.get_future();

  // Aim for ~2 chunks per worker (load balance without queue churn), but
  // never more chunks than the queue could ever hold.
  std::size_t target_chunks =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   options_.worker_threads) * 2);
  target_chunks = std::min(target_chunks,
                           std::max<std::size_t>(1, queue_->capacity()));
  std::size_t chunk_cells =
      std::max<std::size_t>(1, (cells + target_chunks - 1) / target_chunks);
  // Round up to whole grid rows so every chunk runs the evaluator's
  // batch kernel end to end (a split row falls back to the scalar edge
  // path — correct, just slower).
  const std::size_t row = std::max<std::size_t>(1, job->evaluator.row_cells());
  chunk_cells = (chunk_cells + row - 1) / row * row;
  const std::size_t chunk_count = (cells + chunk_cells - 1) / chunk_cells;
  job->remaining.store(chunk_count, std::memory_order_relaxed);

  Status rejection;
  {
    trace::ScopedSpan enqueue("engine.enqueue", trace::Category::Engine);
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) {
      metrics_.rejected_shutdown.add();
      rejection = Status::shutting_down();
    } else if (!queue_->has_room(enqueue_class(priority), chunk_count)) {
      // All-or-nothing enqueue: pushes are serialized by lifecycle_mutex_
      // and concurrent pops only shrink the queue, so after this capacity
      // check every chunk's try_push is guaranteed to succeed.
      metrics_.rejected_queue_full.add();
      rejection = Status::queue_full();
    } else {
      for (std::size_t i = 0; i < chunk_count; ++i) {
        Task task;
        task.deadline = deadline;
        task.enqueued = enqueued;
        task.trace_id = job->trace_id;
        task.sweep_job = job;
        task.priority = priority;
        task.chunk_begin = i * chunk_cells;
        task.chunk_end = std::min(cells, task.chunk_begin + chunk_cells);
        if (!queue_->try_push(enqueue_class(priority), task)) {
          // Unreachable (see the capacity check above); keep the job's
          // chunk accounting consistent anyway so the request resolves.
          job->fail(StatusCode::InternalError, "sweep chunk enqueue failed");
          if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            job->resolve(rejected(Status::internal_error(job->fail_message)));
            return future;  // no chunk enqueued; pending_ untouched
          }
          continue;
        }
        metrics_.queue_depth.increment();
      }
      ++pending_;
    }
  }
  if (!rejection.ok()) {
    if (job->cancel) cancels_.erase(job->cancel_owner, job->cancel_id);
    // Resolved after the lock is released so a callback can never run
    // while the engine's lifecycle mutex is held.
    return resolve_ready(job->callback, rejected(std::move(rejection)));
  }
  return future;
}

bool QueryEngine::CurveJob::fail(StatusCode code, std::string message) {
  int expected = 0;
  if (fail_code.compare_exchange_strong(expected, static_cast<int>(code),
                                        std::memory_order_acq_rel)) {
    fail_message = std::move(message);
    return true;
  }
  return false;
}

void QueryEngine::CurveJob::resolve(QueryResponse response) {
  if (callback) {
    callback(std::move(response));
  } else {
    promise.set_value(std::move(response));
  }
}

std::future<QueryResponse> QueryEngine::submit_fault_sweep(
    FaultSweepRequest request, Deadline deadline, ResponseCallback callback,
    qos::PriorityClass priority, bool degraded, bool strided,
    std::uint64_t cancel_owner, std::uint64_t cancel_id) {
  const Clock::time_point enqueued = Clock::now();

  Status valid = validate_curve(request.spec);
  if (!valid.ok()) {
    metrics_.failed.add();
    return resolve_ready(callback, rejected(std::move(valid)));
  }

  // Same key fingerprint(Request) computes, so the inline and
  // chunk-parallel paths share cache entries.  A strided (degraded)
  // spec hashes differently, so it can only hit other degraded runs.
  FingerprintBuilder key_builder;
  key_builder.mix(static_cast<int>(RequestType::FaultSweep))
      .mix(fingerprint(request.spec));
  const Fingerprint key = key_builder.value();

  if (options_.enable_cache) {
    bool served_stale = false;
    std::shared_ptr<const ResponsePayload> hit;
    {
      trace::ScopedSpan probe("cache.probe", trace::Category::Cache);
      hit = probe_cache(key, degraded, served_stale);
      probe.annotate("hit", hit ? 1 : 0);
    }
    if (hit) {
      metrics_.cache_hits.add();
      QueryResponse response;
      response.payload = std::move(hit);
      response.cache_hit = true;
      if (served_stale || strided) mark_degraded(response);
      response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - enqueued);
      metrics_.latency(RequestType::FaultSweep).record(response.latency);
      metrics_.completed.add();
      return resolve_ready(callback, std::move(response));
    }
    metrics_.cache_misses.add();
  }

  auto job = std::make_shared<CurveJob>(
      fault::CurveEvaluator(request.spec, options_.library));
  const std::size_t cells = job->evaluator.cell_count();
  job->outcomes.resize(cells);
  job->key = key;
  job->enqueued = enqueued;
  job->trace_id = trace::current_trace_id();
  job->callback = std::move(callback);
  job->sampled = strided;
  if (cancel_owner != 0 || cancel_id != 0) {
    job->cancel = cancels_.add(cancel_owner, cancel_id);
    job->cancel_owner = cancel_owner;
    job->cancel_id = cancel_id;
  }
  std::future<QueryResponse> future;
  if (!job->callback) future = job->promise.get_future();

  std::size_t target_chunks =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   options_.worker_threads) * 2);
  target_chunks = std::min(target_chunks,
                           std::max<std::size_t>(1, queue_->capacity()));
  const std::size_t chunk_cells =
      std::max<std::size_t>(1, (cells + target_chunks - 1) / target_chunks);
  const std::size_t chunk_count = (cells + chunk_cells - 1) / chunk_cells;
  job->remaining.store(chunk_count, std::memory_order_relaxed);

  Status rejection;
  {
    trace::ScopedSpan enqueue("engine.enqueue", trace::Category::Engine);
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) {
      metrics_.rejected_shutdown.add();
      rejection = Status::shutting_down();
    } else if (!queue_->has_room(enqueue_class(priority), chunk_count)) {
      // All-or-nothing enqueue under lifecycle_mutex_, exactly like
      // submit_sweep: after the capacity check every try_push succeeds.
      metrics_.rejected_queue_full.add();
      rejection = Status::queue_full();
    } else {
      for (std::size_t i = 0; i < chunk_count; ++i) {
        Task task;
        task.deadline = deadline;
        task.enqueued = enqueued;
        task.trace_id = job->trace_id;
        task.curve_job = job;
        task.priority = priority;
        task.chunk_begin = i * chunk_cells;
        task.chunk_end = std::min(cells, task.chunk_begin + chunk_cells);
        if (!queue_->try_push(enqueue_class(priority), task)) {
          job->fail(StatusCode::InternalError,
                    "fault sweep chunk enqueue failed");
          if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            job->resolve(rejected(Status::internal_error(job->fail_message)));
            return future;  // no chunk enqueued; pending_ untouched
          }
          continue;
        }
        metrics_.queue_depth.increment();
      }
      ++pending_;
    }
  }
  if (!rejection.ok()) {
    if (job->cancel) cancels_.erase(job->cancel_owner, job->cancel_id);
    // Resolved after the lock is released so a callback can never run
    // while the engine's lifecycle mutex is held.
    return resolve_ready(job->callback, rejected(std::move(rejection)));
  }
  return future;
}

void QueryEngine::run_curve_chunk(Task& task) {
  CurveJob& job = *task.curve_job;
  {
    // Scoped so the merge (complete_curve) traces as a sibling span, not
    // a child of whichever chunk happens to finish last.
    trace::ScopedSpan span(
        "fault.chunk", trace::Category::Chunk, "cells",
        static_cast<std::int64_t>(task.chunk_end - task.chunk_begin));
    if (job.cancel && job.cancel->is_cancelled()) {
      // Cooperative cancellation: checked once per chunk, so an
      // in-flight Monte-Carlo sweep stops within one chunk's work.
      if (job.fail(StatusCode::Cancelled)) {
        metrics_.qos_cancelled_inflight.add();
        trace::emit_instant("qos.cancelled", trace::Category::Qos);
      }
    } else if (task.deadline.expired()) {
      trace::emit_instant("deadline.expired", trace::Category::Mark);
      job.fail(StatusCode::DeadlineExceeded);
    } else if (job.fail_code.load(std::memory_order_relaxed) == 0) {
      try {
        job.evaluator.evaluate_range(task.chunk_begin, task.chunk_end,
                                     job.outcomes.data() + task.chunk_begin);
      } catch (const std::exception& e) {
        job.fail(StatusCode::InternalError, e.what());
      } catch (...) {
        job.fail(StatusCode::InternalError, "unknown exception");
      }
    }
  }
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    complete_curve(task);
  }
}

void QueryEngine::complete_curve(Task& task) {
  CurveJob& job = *task.curve_job;
  QueryResponse response;
  {
    // Closed before the end-to-end latency is stamped, so queue-wait +
    // chunk + merge spans stay accountable within the recorded latency.
    trace::ScopedSpan span("fault.merge", trace::Category::Merge);
    const int fail = job.fail_code.load(std::memory_order_acquire);
    if (fail != 0) {
      switch (static_cast<StatusCode>(fail)) {
        case StatusCode::DeadlineExceeded:
          metrics_.rejected_deadline.add();
          metrics_.expired_in_queue.add();
          response = rejected(Status::deadline_exceeded());
          break;
        case StatusCode::ShuttingDown:
          metrics_.rejected_shutdown.add();
          response = rejected(Status::shutting_down());
          break;
        case StatusCode::Cancelled:
          // Already counted (queued or in-flight) by whoever won the
          // fail CAS; the response is just the ack.
          response = rejected(Status::cancelled());
          break;
        default:
          response = rejected(Status::internal_error(job.fail_message));
          trace::emit_instant("request.failed", trace::Category::Mark);
          break;
      }
    } else {
      FaultSweepResponse payload;
      payload.result.spec = job.evaluator.spec();
      payload.result.points = job.evaluator.finalize(job.outcomes);
      response.payload =
          std::make_shared<const ResponsePayload>(std::move(payload));
      if (options_.enable_cache) cache_.put(job.key, response.payload);
      if (job.sampled) mark_degraded(response);
    }
  }
  response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - job.enqueued);
  metrics_.latency(RequestType::FaultSweep).record(response.latency);
  if (response.ok()) {
    metrics_.completed.add();
  } else if (response.status.code != StatusCode::DeadlineExceeded &&
             response.status.code != StatusCode::Cancelled) {
    metrics_.failed.add();
  }
  if (job.cancel) cancels_.erase(job.cancel_owner, job.cancel_id);
  job.resolve(std::move(response));
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    --pending_;
  }
  drained_.notify_all();
}

void QueryEngine::run_sweep_chunk(Task& task) {
  SweepJob& job = *task.sweep_job;
  {
    // Scoped so the merge (complete_sweep) traces as a sibling span, not
    // a child of whichever chunk happens to finish last.
    trace::ScopedSpan span(
        "sweep.chunk", trace::Category::Chunk, "cells",
        static_cast<std::int64_t>(task.chunk_end - task.chunk_begin));
    if (job.cancel && job.cancel->is_cancelled()) {
      // Cooperative cancellation: checked once per chunk, so an
      // in-flight sweep stops within one chunk's work.
      if (job.fail(StatusCode::Cancelled)) {
        metrics_.qos_cancelled_inflight.add();
        trace::emit_instant("qos.cancelled", trace::Category::Qos);
      }
    } else if (task.deadline.expired()) {
      trace::emit_instant("deadline.expired", trace::Category::Mark);
      job.fail(StatusCode::DeadlineExceeded);
    } else if (job.fail_code.load(std::memory_order_relaxed) == 0) {
      try {
        job.evaluator.evaluate_range(task.chunk_begin, task.chunk_end,
                                     job.points.data() + task.chunk_begin);
      } catch (const std::exception& e) {
        job.fail(StatusCode::InternalError, e.what());
      } catch (...) {
        job.fail(StatusCode::InternalError, "unknown exception");
      }
    }
  }
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    complete_sweep(task);
  }
}

void QueryEngine::complete_sweep(Task& task) {
  SweepJob& job = *task.sweep_job;
  QueryResponse response;
  {
    // Closed before the end-to-end latency is stamped, so queue-wait +
    // chunk + merge spans stay accountable within the recorded latency.
    trace::ScopedSpan span("sweep.merge", trace::Category::Merge);
    const int fail = job.fail_code.load(std::memory_order_acquire);
    if (fail != 0) {
      switch (static_cast<StatusCode>(fail)) {
        case StatusCode::DeadlineExceeded:
          metrics_.rejected_deadline.add();
          metrics_.expired_in_queue.add();
          response = rejected(Status::deadline_exceeded());
          break;
        case StatusCode::ShuttingDown:
          metrics_.rejected_shutdown.add();
          response = rejected(Status::shutting_down());
          break;
        case StatusCode::Cancelled:
          // Already counted (queued or in-flight) by whoever won the
          // fail CAS; the response is just the ack.
          response = rejected(Status::cancelled());
          break;
        default:
          response = rejected(Status::internal_error(job.fail_message));
          trace::emit_instant("request.failed", trace::Category::Mark);
          break;
      }
    } else {
      SweepResponse payload;
      payload.result.candidate_classes = job.evaluator.candidate_count();
      payload.result.points = std::move(job.points);
      payload.result.pareto_front =
          explore::pareto_front(payload.result.points);
      response.payload =
          std::make_shared<const ResponsePayload>(std::move(payload));
      if (options_.enable_cache) cache_.put(job.key, response.payload);
      if (job.sampled) mark_degraded(response);
    }
  }
  response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - job.enqueued);
  metrics_.latency(RequestType::Sweep).record(response.latency);
  if (response.ok()) {
    metrics_.completed.add();
  } else if (response.status.code != StatusCode::DeadlineExceeded &&
             response.status.code != StatusCode::Cancelled) {
    metrics_.failed.add();
  }
  if (job.cancel) cancels_.erase(job.cancel_owner, job.cancel_id);
  job.resolve(std::move(response));
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    --pending_;
  }
  drained_.notify_all();
}

QueryResponse QueryEngine::run_request(const Request& request,
                                       Deadline deadline,
                                       Clock::time_point start,
                                       bool allow_stale) {
  QueryResponse response;
  if (deadline.expired()) {
    // The submit-time check already passed, so this request aged out
    // after acceptance — while queued (worker path) or between the
    // check and execution (inline path).
    metrics_.rejected_deadline.add();
    metrics_.expired_in_queue.add();
    trace::emit_instant("deadline.expired", trace::Category::Mark);
    response = rejected(Status::deadline_exceeded());
  } else {
    trace::ScopedSpan span(execute_span_name(request_type(request)),
                           trace::Category::Execute);
    response = execute_cached(request, allow_stale);
    if (const auto* sim = std::get_if<SimulateRequest>(&request)) {
      if (response.ok() && !response.cache_hit) {
        metrics_.sim_runs.add();
        if (!sim->faults.empty()) metrics_.sim_fault_runs.add();
        if (const SimulateResponse* payload = response.simulate()) {
          metrics_.sim_cycles.add(
              static_cast<std::uint64_t>(payload->result.cycles));
        }
      }
    }
  }
  response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - start);
  metrics_.latency(request_type(request)).record(response.latency);
  if (response.ok()) {
    metrics_.completed.add();
  } else if (response.status.code != StatusCode::DeadlineExceeded) {
    metrics_.failed.add();
    // Tail-sampling trigger: a failed request force-keeps its trace.
    trace::emit_instant("request.failed", trace::Category::Mark);
  }
  return response;
}

QueryResponse QueryEngine::execute_cached(const Request& request,
                                          bool allow_stale) {
  if (!options_.enable_cache) return execute_uncached(request);

  const Fingerprint key = fingerprint(request);
  bool served_stale = false;
  std::shared_ptr<const ResponsePayload> hit;
  {
    trace::ScopedSpan probe("cache.probe", trace::Category::Cache);
    hit = probe_cache(key, allow_stale, served_stale);
    probe.annotate("hit", hit ? 1 : 0);
  }
  if (hit) {
    metrics_.cache_hits.add();
    QueryResponse response;
    response.payload = std::move(hit);
    response.cache_hit = true;
    if (served_stale) mark_degraded(response);
    return response;
  }
  metrics_.cache_misses.add();
  QueryResponse response = execute_uncached(request);
  if (response.ok()) cache_.put(key, response.payload);
  return response;
}

/// Soft-TTL ladder: with the TTL disabled (the default) this is a plain
/// cache lookup, byte-for-byte the pre-QoS behavior.  With a TTL, a
/// fresh entry is a hit; a stale one is served only under admission
/// Degrade (trading staleness for a worker's time), otherwise treated
/// as a miss so the recompute refreshes it.
std::shared_ptr<const ResponsePayload> QueryEngine::probe_cache(
    Fingerprint key, bool allow_stale, bool& served_stale) {
  served_stale = false;
  if (options_.cache_soft_ttl.count() <= 0) return cache_.get(key);
  std::chrono::steady_clock::duration age{};
  std::shared_ptr<const ResponsePayload> hit = cache_.get(key, &age);
  if (!hit || age <= options_.cache_soft_ttl) return hit;
  if (!allow_stale) return nullptr;  // stale ⇒ miss; the put() refreshes
  served_stale = true;
  return hit;
}

void QueryEngine::mark_degraded(QueryResponse& response) {
  if (!response.ok() || response.sampled) return;
  response.sampled = true;
  metrics_.qos_degraded_responses.add();
}

LatencyHistogram::Buckets QueryEngine::interactive_buckets() const {
  LatencyHistogram::Buckets merged{};
  for (const RequestType type :
       {RequestType::Classify, RequestType::Recommend, RequestType::Cost,
        RequestType::Simulate}) {
    const LatencyHistogram::Buckets b = metrics_.latency(type).buckets();
    for (std::size_t i = 0; i < b.counts.size(); ++i) {
      merged.counts[i] += b.counts[i];
    }
    merged.count += b.count;
    merged.sum_ns += b.sum_ns;
  }
  return merged;
}

bool QueryEngine::cancel(std::uint64_t owner, std::uint64_t id) {
  trace::ScopedSpan span("qos.cancel", trace::Category::Qos);
  qos::CancelToken token = cancels_.cancel(owner, id);
  if (!token) return false;

  // Dequeue-if-queued: the reclaimed-capacity half of cancellation.
  // Anything still waiting is pulled out of its subqueue now; in-flight
  // work sees the token at the next chunk boundary instead.
  std::vector<Task> removed;
  queue_->remove_all_if(
      [owner, id](const Task& task) {
        if (task.sweep_job) {
          return task.sweep_job->cancel_owner == owner &&
                 task.sweep_job->cancel_id == id && task.sweep_job->cancel;
        }
        if (task.curve_job) {
          return task.curve_job->cancel_owner == owner &&
                 task.curve_job->cancel_id == id && task.curve_job->cancel;
        }
        return task.cancel_owner == owner && task.cancel_id == id &&
               task.cancel != nullptr;
      },
      removed);
  for (Task& task : removed) {
    metrics_.queue_depth.decrement();
    if (task.sweep_job) {
      if (task.sweep_job->fail(StatusCode::Cancelled)) {
        metrics_.qos_cancelled_queued.add();
        trace::emit_instant("qos.cancelled", trace::Category::Qos);
      }
      if (task.sweep_job->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        complete_sweep(task);
      }
      continue;
    }
    if (task.curve_job) {
      if (task.curve_job->fail(StatusCode::Cancelled)) {
        metrics_.qos_cancelled_queued.add();
        trace::emit_instant("qos.cancelled", trace::Category::Qos);
      }
      if (task.curve_job->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        complete_curve(task);
      }
      continue;
    }
    metrics_.qos_cancelled_queued.add();
    trace::emit_instant("qos.cancelled", trace::Category::Qos);
    finish_task(task, rejected(Status::cancelled()));
  }
  return true;
}

QueryResponse QueryEngine::execute_uncached(const Request& request) const {
  try {
    return std::visit(
        [this](const auto& req) -> QueryResponse {
          using T = std::decay_t<decltype(req)>;
          if constexpr (std::is_same_v<T, ClassifyRequest>) {
            return execute_classify(req);
          } else if constexpr (std::is_same_v<T, RecommendRequest>) {
            return execute_recommend(req, options_.library);
          } else if constexpr (std::is_same_v<T, SweepRequest>) {
            return execute_sweep(req, options_.library);
          } else if constexpr (std::is_same_v<T, FaultSweepRequest>) {
            return execute_fault_sweep(req, options_.library);
          } else if constexpr (std::is_same_v<T, SweepChunkRequest>) {
            return execute_sweep_chunk(req, options_.library);
          } else if constexpr (std::is_same_v<T, FaultChunkRequest>) {
            return execute_fault_chunk(req, options_.library);
          } else if constexpr (std::is_same_v<T, SimulateRequest>) {
            return execute_simulate(req);
          } else {
            static_assert(std::is_same_v<T, CostRequest>);
            return execute_cost(req, options_.library);
          }
        },
        request);
  } catch (const std::exception& e) {
    return rejected(Status::internal_error(e.what()));
  } catch (...) {
    return rejected(Status::internal_error("unknown exception"));
  }
}

void QueryEngine::drain() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  drained_.wait(lock, [this] { return pending_ == 0; });
}

void QueryEngine::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  queue_->close();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  // An engine that was never start()ed can still hold enqueued tasks;
  // every accepted future must become ready, so reject them here.
  while (std::optional<Task> leftover = queue_->try_pop()) {
    metrics_.queue_depth.decrement();
    if (leftover->sweep_job) {
      // Sweep chunks resolve through their shared job; the last chunk
      // drained answers ShuttingDown (and counts it) exactly once.
      leftover->sweep_job->fail(StatusCode::ShuttingDown);
      if (leftover->sweep_job->remaining.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        complete_sweep(*leftover);
      }
      continue;
    }
    if (leftover->curve_job) {
      leftover->curve_job->fail(StatusCode::ShuttingDown);
      if (leftover->curve_job->remaining.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        complete_curve(*leftover);
      }
      continue;
    }
    metrics_.rejected_shutdown.add();
    finish_task(*leftover, rejected(Status::shutting_down()));
  }
}

}  // namespace mpct::service
