#include "service/fingerprint.hpp"

#include <cstring>

namespace mpct::service {

namespace {

constexpr Fingerprint kPrime = 0x100000001b3ULL;

}  // namespace

namespace {

/// splitmix64 finaliser: full avalanche per 64-bit word, so the builder
/// can consume input a word at a time (~8x fewer multiplies than
/// byte-at-a-time FNV — fingerprinting sits on the cache hit path, where
/// it must stay well below the cost of the query it short-circuits).
constexpr std::uint64_t avalanche(std::uint64_t w) {
  w ^= w >> 30;
  w *= 0xbf58476d1ce4e5b9ULL;
  w ^= w >> 27;
  w *= 0x94d049bb133111ebULL;
  w ^= w >> 31;
  return w;
}

}  // namespace

FingerprintBuilder& FingerprintBuilder::mix_bytes(const void* data,
                                                  std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  // Fold the length first so variable-width fields cannot alias.
  hash_ = (hash_ ^ avalanche(size)) * kPrime;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
    hash_ = (hash_ ^ avalanche(word)) * kPrime;
    bytes += 8;
    size -= 8;
  }
  if (size > 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes, size);
    hash_ = (hash_ ^ avalanche(word)) * kPrime;
  }
  return *this;
}

FingerprintBuilder& FingerprintBuilder::mix(std::string_view text) {
  return mix_bytes(text.data(), text.size());
}

FingerprintBuilder& FingerprintBuilder::mix(std::uint64_t value) {
  return mix_bytes(&value, sizeof(value));
}

FingerprintBuilder& FingerprintBuilder::mix(std::int64_t value) {
  return mix(static_cast<std::uint64_t>(value));
}

FingerprintBuilder& FingerprintBuilder::mix(int value) {
  return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(value)));
}

FingerprintBuilder& FingerprintBuilder::mix(bool value) {
  return mix(static_cast<std::uint64_t>(value ? 1 : 0));
}

FingerprintBuilder& FingerprintBuilder::mix(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return mix(bits);
}

Fingerprint fingerprint(const arch::Count& count) {
  FingerprintBuilder b;
  b.mix(static_cast<int>(count.kind()))
      .mix(count.value())
      .mix(static_cast<int>(count.symbol()));
  return b.value();
}

Fingerprint fingerprint(const arch::ConnectivityExpr& expr) {
  FingerprintBuilder b;
  b.mix(static_cast<int>(expr.kind))
      .mix(fingerprint(expr.left))
      .mix(fingerprint(expr.right));
  return b.value();
}

Fingerprint fingerprint(const arch::ArchitectureSpec& spec) {
  FingerprintBuilder b;
  // Metadata fields participate because ClassifyResponse echoes the whole
  // spec back: two specs differing only in description must not share a
  // cache entry.
  b.mix(spec.name)
      .mix(spec.citation)
      .mix(spec.description)
      .mix(spec.year)
      .mix(spec.category)
      .mix(static_cast<int>(spec.granularity))
      .mix(fingerprint(spec.ips))
      .mix(fingerprint(spec.dps));
  for (const arch::ConnectivityExpr& cell : spec.connectivity) {
    b.mix(fingerprint(cell));
  }
  b.mix(spec.paper_name.has_value());
  if (spec.paper_name) b.mix(*spec.paper_name);
  b.mix(spec.paper_flexibility.has_value());
  if (spec.paper_flexibility) b.mix(*spec.paper_flexibility);
  return b.value();
}

Fingerprint fingerprint(const MachineClass& mc) {
  FingerprintBuilder b;
  b.mix(static_cast<int>(mc.granularity))
      .mix(static_cast<int>(mc.ips))
      .mix(static_cast<int>(mc.dps));
  for (SwitchKind kind : mc.switches) b.mix(static_cast<int>(kind));
  return b.value();
}

Fingerprint fingerprint(const explore::Requirements& requirements) {
  FingerprintBuilder b;
  b.mix(requirements.min_flexibility)
      .mix(requirements.paradigm.has_value())
      .mix(requirements.paradigm ? static_cast<int>(*requirements.paradigm)
                                 : -1)
      .mix(requirements.needs_independent_programs)
      .mix(requirements.needs_pe_exchange)
      .mix(requirements.needs_shared_memory)
      .mix(requirements.n)
      .mix(requirements.lut_budget)
      .mix(static_cast<int>(requirements.objective));
  return b.value();
}

Fingerprint fingerprint(const explore::SweepGrid& grid) {
  // Hash the un-normalized grid: an explicit single-value axis and an
  // empty axis that normalizes to the same value produce byte-identical
  // SweepResults... except for the axes echoed back, so they must key
  // separately anyway.
  FingerprintBuilder b;
  b.mix(fingerprint(grid.base));
  b.mix(static_cast<std::uint64_t>(grid.n_values.size()));
  for (std::int64_t n : grid.n_values) b.mix(n);
  b.mix(static_cast<std::uint64_t>(grid.lut_budgets.size()));
  for (std::int64_t v : grid.lut_budgets) b.mix(v);
  b.mix(static_cast<std::uint64_t>(grid.objectives.size()));
  for (explore::Requirements::Objective o : grid.objectives) {
    b.mix(static_cast<int>(o));
  }
  return b.value();
}

Fingerprint fingerprint(const cost::EstimateOptions& options) {
  FingerprintBuilder b;
  b.mix(options.n).mix(options.m).mix(options.v).mix(
      options.include_ip_dp_switch);
  return b.value();
}

Fingerprint fingerprint(const fault::CurveSpec& spec) {
  // Hash the un-normalized spec, mirroring the SweepGrid rationale: the
  // normalized spec is echoed back in the response, so specs that
  // normalize equal still key separately.
  FingerprintBuilder b;
  b.mix(fingerprint(spec.machine));
  b.mix(fingerprint(spec.bindings));
  b.mix(spec.noc_width).mix(spec.noc_height);
  b.mix(static_cast<std::uint64_t>(spec.fault_rates.size()));
  for (double rate : spec.fault_rates) b.mix(rate);
  b.mix(spec.trials_per_rate);
  b.mix(spec.seed);
  return b.value();
}

Fingerprint fingerprint(const fault::FaultSet& faults) {
  // The set is canonical (sorted, deduped), so equal sets hash equal no
  // matter what order the faults were added in.
  FingerprintBuilder b;
  b.mix(static_cast<std::uint64_t>(faults.size()));
  for (const fault::Fault& f : faults.faults()) {
    b.mix(static_cast<int>(f.kind))
        .mix(static_cast<int>(f.role))
        .mix(static_cast<std::int64_t>(f.index))
        .mix(static_cast<std::int64_t>(f.index2));
  }
  return b.value();
}

Fingerprint fingerprint(const workload::WorkloadSpec& spec) {
  FingerprintBuilder b;
  b.mix(static_cast<int>(spec.kernel))
      .mix(static_cast<std::int64_t>(spec.size))
      .mix(static_cast<std::int64_t>(spec.iterations))
      .mix(spec.alpha);
  return b.value();
}

Fingerprint fingerprint(const workload::RunOptions& options) {
  FingerprintBuilder b;
  b.mix(static_cast<std::int64_t>(options.width)).mix(options.max_cycles);
  return b.value();
}

Fingerprint fingerprint(const Request& request) {
  FingerprintBuilder b;
  b.mix(static_cast<int>(request_type(request)));
  std::visit(
      [&b](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, ClassifyRequest>) {
          b.mix(req.input.index());
          if (const auto* spec =
                  std::get_if<arch::ArchitectureSpec>(&req.input)) {
            b.mix(fingerprint(*spec));
          } else {
            b.mix(std::get<std::string>(req.input));
          }
        } else if constexpr (std::is_same_v<T, RecommendRequest>) {
          b.mix(fingerprint(req.requirements))
              .mix(static_cast<std::uint64_t>(req.top_k));
        } else if constexpr (std::is_same_v<T, SweepRequest>) {
          b.mix(fingerprint(req.grid));
        } else if constexpr (std::is_same_v<T, FaultSweepRequest>) {
          b.mix(fingerprint(req.spec));
        } else if constexpr (std::is_same_v<T, SweepChunkRequest>) {
          b.mix(fingerprint(req.grid)).mix(req.begin).mix(req.end);
        } else if constexpr (std::is_same_v<T, FaultChunkRequest>) {
          b.mix(fingerprint(req.spec)).mix(req.begin).mix(req.end);
        } else if constexpr (std::is_same_v<T, SimulateRequest>) {
          b.mix(fingerprint(req.workload));
          b.mix(req.target.index());
          if (const auto* mc = std::get_if<MachineClass>(&req.target)) {
            b.mix(fingerprint(*mc));
          } else {
            b.mix(fingerprint(std::get<arch::ArchitectureSpec>(req.target)));
          }
          b.mix(fingerprint(req.options));
          b.mix(fingerprint(req.faults));
          b.mix(req.seed);
        } else {
          static_assert(std::is_same_v<T, CostRequest>);
          b.mix(req.target.index());
          if (const auto* mc = std::get_if<MachineClass>(&req.target)) {
            b.mix(fingerprint(*mc));
          } else {
            b.mix(fingerprint(std::get<arch::ArchitectureSpec>(req.target)));
          }
          b.mix(fingerprint(req.options));
          b.mix(static_cast<std::uint64_t>(req.n_sweep.size()));
          for (std::int64_t n : req.n_sweep) b.mix(n);
        }
      },
      request);
  return b.value();
}

}  // namespace mpct::service
