#include "service/status.hpp"

namespace mpct::service {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::Ok:
      return "ok";
    case StatusCode::QueueFull:
      return "queue-full";
    case StatusCode::DeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::ParseError:
      return "parse-error";
    case StatusCode::InvalidRequest:
      return "invalid-request";
    case StatusCode::ShuttingDown:
      return "shutting-down";
    case StatusCode::InternalError:
      return "internal-error";
    case StatusCode::Unavailable:
      return "unavailable";
    case StatusCode::ProtocolError:
      return "protocol-error";
    case StatusCode::UnsupportedVersion:
      return "unsupported-version";
    case StatusCode::Overloaded:
      return "overloaded";
    case StatusCode::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out(service::to_string(code));
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace mpct::service
