#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mpct::service {

/// Bounded multi-producer multi-consumer queue with *explicit*
/// backpressure: try_push never blocks — when the queue is at capacity it
/// returns false and the caller must shed or retry.  Consumers block in
/// pop() until an item arrives or the queue is closed and drained.
///
/// A mutex + two condition variables (not a lock-free ring) keeps the
/// semantics obvious and TSan-clean; the guarded section is a deque
/// push/pop, so the lock is held for tens of nanoseconds — far below the
/// milliseconds a classify/recommend query costs.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueue without blocking.  False when full or closed; the item is
  /// left untouched in that case so the caller can reject it upstream.
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue.  False only when the queue is closed *and* empty
  /// — items enqueued before close() still drain.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking dequeue, for opportunistic batch draining.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  /// Stop accepting pushes and wake every blocked consumer.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mpct::service
