#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cost/component_library.hpp"
#include "qos/admission.hpp"
#include "qos/cancel.hpp"
#include "qos/priority.hpp"
#include "qos/wfq_queue.hpp"
#include "service/cache.hpp"
#include "service/fingerprint.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"

namespace mpct::service {

/// Tuning knobs of a QueryEngine.
struct EngineOptions {
  /// Worker threads executing queued requests.  0 selects the
  /// single-threaded fallback mode: submit() executes the request inline
  /// on the calling thread (still cached, still metered) so results and
  /// metric counts are fully deterministic — the mode ctest runs in.
  unsigned worker_threads = 4;

  /// Bounded request-queue capacity (requests, not batches).  When full,
  /// submit() rejects with StatusCode::QueueFull instead of blocking.
  std::size_t queue_capacity = 1024;

  /// Result cache geometry; shards are rounded up to a power of two.
  /// Total capacity = cache_shards * cache_capacity_per_shard.
  std::size_t cache_shards = 8;
  std::size_t cache_capacity_per_shard = 128;
  bool enable_cache = true;

  /// Upper bound on the number of requests a worker drains from the
  /// queue per wake-up (amortises queue synchronisation; recorded in the
  /// batch-size histogram).
  std::size_t max_batch = 16;

  /// When false, worker threads are created by start() instead of the
  /// constructor.  Lets tests fill the bounded queue deterministically
  /// before anything drains it.
  bool start_workers = true;

  /// Cost/recommend queries price against this library.  It is part of
  /// the engine, not the request, so cached responses can never mix
  /// libraries.
  cost::ComponentLibrary library = cost::ComponentLibrary::default_library();

  /// Master switch for the QoS serving path (src/qos).  Off (the
  /// default), the engine behaves exactly like the pre-QoS build: every
  /// request rides the Interactive subqueue in submit order (a single
  /// FIFO), admission control never runs, and no response is ever
  /// degraded.  On, requests are classed (explicitly or by
  /// qos::default_priority), dispatched by weighted fair queueing, and
  /// subject to the admission controller's degrade/shed ladder.
  bool enable_qos = false;

  /// Deficit-round-robin dispatch weights, used when enable_qos is on.
  qos::WfqWeights wfq_weights;

  /// Admission-control thresholds, used when enable_qos is on.
  qos::AdmissionOptions admission;

  /// Soft TTL for cache entries.  0 (default) disables ageing: entries
  /// live until evicted, exactly as before.  Non-zero, an entry older
  /// than this is treated as a miss (recomputed and refreshed) — unless
  /// the admission controller says Degrade, in which case the stale
  /// entry is served as-is with QueryResponse::sampled set, trading
  /// freshness for not spending a worker under pressure.
  std::chrono::milliseconds cache_soft_ttl{0};
};

/// Concurrent front door to the taxonomy library.
///
/// Turns the synchronous single-caller API (`ArchitectureSpec::classify`,
/// `explore::recommend`, `cost::estimate_area` / `estimate_config_bits`)
/// into a query service: requests are submitted (individually or as a
/// batch), flow through a bounded per-class queue (weighted fair
/// queueing when enable_qos is on, plain FIFO otherwise) into a fixed
/// worker pool,
/// hit a sharded LRU result cache keyed by canonical request fingerprint,
/// and resolve to std::future<QueryResponse> with structured Status codes
/// instead of exceptions.
///
/// Guarantees:
///  * submit() never blocks on a full queue — it returns a ready future
///    carrying StatusCode::QueueFull (explicit backpressure).
///  * Responses are bit-identical to the sequential API: workers call
///    exactly the same functions, and the taxonomy/registry singletons
///    they share are initialise-once, read-only (see the const-read notes
///    in arch/registry.hpp and core/taxonomy_table.hpp).
///  * A request whose deadline has passed is answered DeadlineExceeded,
///    never silently dropped: every accepted future becomes ready.
///  * Destruction drains the queue (pending requests complete) and joins
///    all workers.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Submit one request.  The future is always eventually satisfied; a
  /// queue-full / shutdown / expired-deadline rejection satisfies it
  /// immediately.  In single-threaded mode (worker_threads == 0) the
  /// request executes inline and the returned future is already ready.
  std::future<QueryResponse> submit(Request request,
                                    Deadline deadline = Deadline::never());

  /// Submit with an explicit QoS class instead of the request type's
  /// default (qos::default_priority) — e.g. a replay soak tagging its
  /// whole stream Background.  With enable_qos off the class is
  /// recorded on the task but everything still dispatches FIFO.
  std::future<QueryResponse> submit(Request request, Deadline deadline,
                                    qos::PriorityClass priority);

  /// Completion hook for event-driven callers (the TCP server in
  /// src/net, whose poll loop cannot block on futures).
  using ResponseCallback = std::function<void(QueryResponse)>;

  /// Submit one request, resolving through @p callback instead of a
  /// future.  The callback is invoked exactly once with the response —
  /// on the calling thread for rejections, cache hits and the inline
  /// (worker_threads == 0) mode, otherwise on whichever worker completes
  /// the request.  Backpressure still applies: a full queue invokes the
  /// callback immediately with StatusCode::QueueFull.  The callback must
  /// be fast, non-blocking and non-throwing (it runs on the worker's
  /// dequeue path), and must not call back into this engine.
  void submit_async(Request request, Deadline deadline,
                    ResponseCallback callback);

  /// submit_async with an explicit QoS class and a cancellation
  /// identity.  (@p cancel_owner, @p cancel_id) keys the request in the
  /// engine's cancel registry — the net server passes its connection
  /// serial and the wire request id, so a CancelRequest frame can name
  /// exactly this submission; (0, 0) skips registration.  Registration
  /// is dropped automatically when the request resolves.
  void submit_async(Request request, Deadline deadline,
                    qos::PriorityClass priority, std::uint64_t cancel_owner,
                    std::uint64_t cancel_id, ResponseCallback callback);

  /// Server-side cancellation: flag the request registered under
  /// (@p owner, @p id).  If it is still queued it is dequeued now and
  /// resolved with StatusCode::Cancelled (reclaimed capacity, counted
  /// as qos_cancelled_queued); if it is executing, chunk workers notice
  /// the flag at the next chunk boundary (qos_cancelled_inflight); if
  /// it already finished this is a no-op.  Returns false when the key
  /// is unknown (never registered or already resolved).
  bool cancel(std::uint64_t owner, std::uint64_t id);

  /// Submit a batch; element i of the result corresponds to request i.
  /// Requests that no longer fit in the queue are rejected individually
  /// (QueueFull) — the ones that fit still execute.
  std::vector<std::future<QueryResponse>> submit_batch(
      std::vector<Request> requests, Deadline deadline = Deadline::never());

  /// Execute a request synchronously on the calling thread, through the
  /// cache and metrics like any queued request.  This is the sequential
  /// reference path the tests compare the concurrent path against.
  QueryResponse execute(const Request& request,
                        Deadline deadline = Deadline::never());

  /// Launch the worker pool when constructed with start_workers = false.
  /// No-op when workers are already running or worker_threads == 0.
  void start();

  /// Block until every accepted request has completed.
  void drain();

  /// Stop accepting work, drain the queue, join workers.  Idempotent;
  /// called by the destructor.
  void shutdown();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

  std::size_t queue_depth() const { return queue_->size(); }
  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  const EngineOptions& options() const { return options_; }

 private:
  /// Shared state of one in-flight SweepRequest whose grid has been split
  /// into chunk tasks.  The evaluator is immutable and `points` is
  /// pre-sized, with each chunk writing only its own disjoint slice (the
  /// per-chunk scratch area) — so chunk execution needs no locking, only
  /// the final fetch_sub on `remaining` to elect the finisher.
  struct SweepJob {
    explore::SweepEvaluator evaluator;
    std::vector<explore::SweepPoint> points;
    std::promise<QueryResponse> promise;
    std::atomic<std::size_t> remaining{0};
    /// First failure wins: 0 = ok, otherwise the StatusCode to answer
    /// with (deadline, shutdown, internal).
    std::atomic<int> fail_code{0};
    std::string fail_message;  ///< written only by the winning CAS
    Fingerprint key = 0;
    Clock::time_point enqueued;
    /// Submitter's trace context, restored on every worker that runs a
    /// chunk so the whole scatter/merge carries one trace ID.
    std::uint64_t trace_id = 0;

    /// Set instead of using `promise` for submit_async() sweeps.
    ResponseCallback callback;

    /// The grid was strided by admission Degrade: the merged response
    /// carries QueryResponse::sampled.
    bool sampled = false;
    /// Cancellation identity + shared token (null when unregistered).
    qos::CancelToken cancel;
    std::uint64_t cancel_owner = 0;
    std::uint64_t cancel_id = 0;

    explicit SweepJob(explore::SweepEvaluator eval)
        : evaluator(std::move(eval)) {}
    /// Returns true when this call won the first-failure CAS — the
    /// caller that gets to count the failure exactly once.
    bool fail(StatusCode code, std::string message = {});
    /// Deliver the response through the callback when set, else the
    /// promise.  Called exactly once, by the finisher.
    void resolve(QueryResponse response);
  };

  /// Shared state of one in-flight FaultSweepRequest — the Monte-Carlo
  /// twin of SweepJob: the (rate x trial) cell range is chunked across
  /// the pool, each chunk writes its disjoint TrialOutcome slice, and
  /// the last finisher runs the sequential index-order reduction
  /// (CurveEvaluator::finalize), so the curve is bit-identical to the
  /// inline fault::evaluate_curve() path.
  struct CurveJob {
    fault::CurveEvaluator evaluator;
    std::vector<fault::TrialOutcome> outcomes;
    std::promise<QueryResponse> promise;
    std::atomic<std::size_t> remaining{0};
    std::atomic<int> fail_code{0};
    std::string fail_message;  ///< written only by the winning CAS
    Fingerprint key = 0;
    Clock::time_point enqueued;
    /// Submitter's trace context (see SweepJob::trace_id).
    std::uint64_t trace_id = 0;

    /// Set instead of using `promise` for submit_async() fault sweeps.
    ResponseCallback callback;

    /// See SweepJob: degraded-precision marker + cancellation identity.
    bool sampled = false;
    qos::CancelToken cancel;
    std::uint64_t cancel_owner = 0;
    std::uint64_t cancel_id = 0;

    explicit CurveJob(fault::CurveEvaluator eval)
        : evaluator(std::move(eval)) {}
    /// Returns true when this call won the first-failure CAS.
    bool fail(StatusCode code, std::string message = {});
    void resolve(QueryResponse response);
  };

  struct Task {
    Request request;
    Deadline deadline;
    std::promise<QueryResponse> promise;
    /// Set instead of using `promise` for submit_async() requests.
    ResponseCallback callback;
    Clock::time_point enqueued;
    /// Trace context active on the submitting thread, captured at
    /// submit and restored around the worker's execution so queue.wait
    /// and execute spans join the request's trace.
    std::uint64_t trace_id = 0;
    /// Non-null for a sweep / curve chunk; `request` is then unused and
    /// the response flows through the job's promise instead.
    std::shared_ptr<SweepJob> sweep_job;
    std::shared_ptr<CurveJob> curve_job;
    std::size_t chunk_begin = 0;
    std::size_t chunk_end = 0;
    /// QoS class this task was admitted under (chunks inherit their
    /// job's class) — the WFQ subqueue it waits in.
    qos::PriorityClass priority = qos::PriorityClass::Interactive;
    /// Admission said Degrade at submit: the cache may answer with an
    /// entry past its soft-TTL (marked sampled) instead of recomputing.
    bool allow_stale = false;
    /// Cancellation token + registry identity (plain tasks only; chunk
    /// tasks carry their token on the shared job).
    qos::CancelToken cancel;
    std::uint64_t cancel_owner = 0;
    std::uint64_t cancel_id = 0;
  };

  void worker_loop();
  void finish_task(Task& task, QueryResponse response);

  /// Common body of submit() and submit_async(): with a null callback
  /// the response flows through the returned future; with a callback the
  /// future is default-constructed (invalid) and unused.  @p priority
  /// nullopt derives the class from the request type; the admission
  /// controller (enable_qos only) may degrade or shed before any
  /// enqueue.
  std::future<QueryResponse> submit_impl(
      Request request, Deadline deadline, ResponseCallback callback,
      std::optional<qos::PriorityClass> priority = std::nullopt,
      std::uint64_t cancel_owner = 0, std::uint64_t cancel_id = 0);

  /// Parallel fast path for SweepRequest: validate, probe the cache,
  /// split the grid into chunk tasks and enqueue them all (atomically —
  /// either every chunk is accepted or the request is rejected).
  /// @p degraded marks an admission-Degrade submission (the grid was
  /// already strided by the caller when stridable; stale cache hits are
  /// allowed); @p strided says the grid actually shrank.
  std::future<QueryResponse> submit_sweep(SweepRequest request,
                                          Deadline deadline,
                                          ResponseCallback callback,
                                          qos::PriorityClass priority,
                                          bool degraded, bool strided,
                                          std::uint64_t cancel_owner,
                                          std::uint64_t cancel_id);
  /// Evaluate one chunk; the last chunk to finish calls complete_sweep().
  void run_sweep_chunk(Task& task);
  /// Merge the Pareto front, publish to the cache, resolve the future.
  void complete_sweep(Task& task);

  /// FaultSweepRequest mirror of the sweep path: validate, probe the
  /// cache, split the Monte-Carlo cells into chunk tasks, enqueue
  /// all-or-nothing under lifecycle_mutex_.
  std::future<QueryResponse> submit_fault_sweep(FaultSweepRequest request,
                                                Deadline deadline,
                                                ResponseCallback callback,
                                                qos::PriorityClass priority,
                                                bool degraded, bool strided,
                                                std::uint64_t cancel_owner,
                                                std::uint64_t cancel_id);
  void run_curve_chunk(Task& task);
  /// Reduce the trial outcomes into the curve, publish, resolve.
  void complete_curve(Task& task);

  /// Deadline check + cache + execution + completion metrics; shared by
  /// workers, the inline single-threaded path, and execute().
  /// @p allow_stale lets the cache serve past its soft-TTL (admission
  /// Degrade), marking the response sampled.
  QueryResponse run_request(const Request& request, Deadline deadline,
                            Clock::time_point start, bool allow_stale = false);
  QueryResponse execute_uncached(const Request& request) const;
  QueryResponse execute_cached(const Request& request, bool allow_stale);

  /// Cache lookup honouring the soft-TTL ladder: a fresh entry is a
  /// hit; a stale one is served only when @p allow_stale (setting
  /// @p served_stale), otherwise treated as a miss so the recompute
  /// refreshes it.  Engine-level hit/miss counters are the caller's.
  std::shared_ptr<const ResponsePayload> probe_cache(Fingerprint key,
                                                     bool allow_stale,
                                                     bool& served_stale);

  /// Merged cumulative latency buckets of the Interactive request types
  /// — the admission controller's latency signal.
  LatencyHistogram::Buckets interactive_buckets() const;

  /// Subqueue a task of class @p cls actually waits in: @p cls when
  /// QoS is on, Interactive (the single legacy FIFO) when it is off.
  qos::PriorityClass enqueue_class(qos::PriorityClass cls) const;

  /// Count + flag one degraded response exactly once (no-op when the
  /// response failed or was already marked by the stale-serve path).
  void mark_degraded(QueryResponse& response);

  EngineOptions options_;
  MetricsRegistry metrics_;
  ShardedLruCache<ResponsePayload> cache_;
  std::unique_ptr<qos::WfqQueue<Task>> queue_;
  qos::AdmissionController admission_;
  qos::CancelRegistry cancels_;
  std::vector<std::thread> workers_;

  std::mutex lifecycle_mutex_;
  std::condition_variable drained_;
  std::size_t pending_ = 0;  ///< accepted but not yet completed
  bool started_ = false;
  bool shutdown_ = false;
};

}  // namespace mpct::service
