#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "service/cache.hpp"
#include "service/request.hpp"

namespace mpct::service {

/// Monotonic event counter.  Relaxed ordering: metrics observe, they do
/// not synchronise — a snapshot taken mid-traffic is allowed to be a few
/// events stale on some counters.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-flight requests).
class Gauge {
 public:
  void increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void decrement() { value_.fetch_sub(1, std::memory_order_relaxed); }
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram: bucket i counts samples in
/// [2^i, 2^(i+1)) nanoseconds, so 40 buckets span 1 ns to ~18 minutes
/// with constant relative error (one power of two) and wait-free
/// recording — one relaxed fetch_add per sample, no allocation, no lock.
///
/// Bucket boundaries, pinned (tests/test_service.cpp holds these exact
/// edges):
///  * every bucket's lower bound is INCLUSIVE, its upper bound
///    EXCLUSIVE: a sample of exactly 2^i ns lands in bucket i, a sample
///    of 2^i - 1 ns in bucket i-1;
///  * bucket 0 is the irregular one: it covers [0, 2) ns, absorbing the
///    would-be [1, 2) bucket plus zero (and clamped negative) samples;
///  * the last bucket (i = kBucketCount - 1 = 39) is unbounded above:
///    [2^39 ns, +inf) — samples beyond ~9.2 minutes clamp into it.
/// The Prometheus exposition derives its `le` bounds from these edges:
/// bucket i's samples are exactly those <= 2^(i+1) - 1 ns, so the
/// emitted inclusive `le` bound is (2^(i+1) - 1) ns in seconds.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 40;

  void record(std::chrono::nanoseconds latency);

  /// The bucket record() files @p latency under — exposed so the
  /// boundary semantics above stay test-enforced.
  static std::size_t bucket_of(std::chrono::nanoseconds latency) {
    return bucket_index(latency);
  }

  /// Inclusive upper edge of bucket @p i in ns: 2^(i+1) - 1 (INT64_MAX
  /// for the unbounded last bucket).
  static std::int64_t bucket_upper_ns(std::size_t i);

  /// Raw wait-free view for exporters: per-bucket counts plus the
  /// `_sum` / `_count` pair.  Reads are relaxed and per-field, exactly
  /// like snapshot(): racing records may be missed, values never tear.
  struct Buckets {
    std::array<std::uint64_t, kBucketCount> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
  };
  Buckets buckets() const;

  struct Snapshot {
    std::uint64_t count = 0;
    double mean_us = 0;
    double min_us = 0;
    double max_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
  };

  /// Consistent-enough view for reporting: buckets are read one by one
  /// (relaxed), so a snapshot racing a record() may miss the newest
  /// sample — never a torn value.
  Snapshot snapshot() const;

  /// Quantile in microseconds via bucket interpolation; q in [0, 1].
  double quantile_us(double q) const;

  /// Total samples recorded so far — the cheap read the cluster client
  /// uses to decide whether quantile_us() has enough data to trust for
  /// hedge-delay derivation.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t bucket_index(std::chrono::nanoseconds latency);

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Histogram of executed batch sizes (1 = no batching win); buckets are
/// the exact sizes 1..kMaxTracked, larger batches clamp to the last.
class BatchSizeHistogram {
 public:
  static constexpr std::size_t kMaxTracked = 64;

  void record(std::size_t batch_size);
  std::uint64_t batches() const { return batches_.value(); }
  std::uint64_t requests() const { return requests_.value(); }
  double mean() const;
  /// How many executed batches had exactly @p batch_size requests
  /// (sizes above kMaxTracked clamp to the last slot).
  std::uint64_t size_count(std::size_t batch_size) const;

 private:
  Counter batches_;
  Counter requests_;
  std::array<std::atomic<std::uint64_t>, kMaxTracked> sizes_{};
};

/// Everything the engine measures, in one place.  All members are safe
/// for concurrent mutation from workers and concurrent reads from a
/// reporting thread.
class MetricsRegistry {
 public:
  // Request lifecycle.
  Counter submitted;
  Counter completed;
  Counter rejected_queue_full;
  Counter rejected_deadline;
  Counter rejected_shutdown;
  /// Requests whose deadline expired *after* acceptance — the engine had
  /// queued them but a worker (or chunk) found them dead on dequeue.  A
  /// strict subset of rejected_deadline: submit-time expiries increment
  /// only that counter, in-queue expiries increment both.  Sustained
  /// growth here means the queue itself is the bottleneck (requests age
  /// out while waiting), not the callers' deadlines.
  Counter expired_in_queue;
  Counter failed;  ///< ParseError / InvalidRequest / InternalError

  // Caching (engine-level mirror of the cache's own accounting, kept so
  // one registry renders the whole picture).
  Counter cache_hits;
  Counter cache_misses;

  // Execution shape.
  Gauge queue_depth;
  Gauge in_flight;
  BatchSizeHistogram batch_sizes;

  // Network (src/net): zeros unless a Server/Client shares this
  // registry.  Bytes/frames count whole frames as seen by the wire
  // layer, so bytes_in includes rejected frames' headers.
  Counter net_bytes_in;
  Counter net_bytes_out;
  Counter net_frames_in;
  Counter net_frames_out;
  Counter net_decode_errors;
  Counter net_connections_opened;
  Counter net_connections_closed;
  Counter net_retries;  ///< client reconnect-and-resend attempts
  Gauge net_active_connections;

  /// Logical client requests: each request a caller hands to
  /// net::Client / cluster::ClusterClient counts exactly once here, no
  /// matter how many times it is retried, failed over, or hedged on the
  /// wire (those re-sends show up in net_retries / net_hedges_sent /
  /// net_failovers instead).
  Counter net_requests_sent;
  Counter net_hedges_sent;  ///< speculative duplicates issued after p99 delay
  Counter net_hedges_won;   ///< hedged duplicate answered before the original
  Counter net_failovers;    ///< requests re-routed off an unhealthy endpoint

  // Simulation (SimulateRequest executions through src/workload; cache
  // hits do not re-count — these measure machine time actually spent).
  Counter sim_runs;        ///< workloads simulated to completion
  Counter sim_cycles;      ///< machine cycles across all simulations
  Counter sim_fault_runs;  ///< simulations with a non-empty fault set

  // Tracing pipeline (src/trace streaming export + collection): zeros
  // unless a net::TraceStreamer or a collector Server shares this
  // registry.  The sampler keep ratio is exported / (exported +
  // sampled_out); dropped counts real losses (ring wrap past the export
  // cursor, batches shed under back-pressure), sampled_out counts
  // deliberate policy discards.
  Counter trace_spans_exported;     ///< spans shipped in sent batches
  Counter trace_spans_dropped;      ///< spans lost (wrap / shed batches)
  Counter trace_spans_sampled_out;  ///< spans discarded by head sampling
  Counter trace_batches_sent;
  Counter trace_batches_dropped;    ///< batches shed (outbox full / dead link)
  Counter trace_collector_batches;  ///< batches a collector server absorbed
  Counter trace_collector_spans;    ///< spans a collector server absorbed

  // QoS (src/qos admission + cancellation).  Shed counters are
  // *disjoint* from the request-lifecycle rejection counters above:
  // an admission shed increments exactly one qos_shed_* counter and
  // answers Overloaded — it never touches rejected_deadline /
  // expired_in_queue / rejected_queue_full (see docs/SERVICE.md,
  // "Counting invariants").
  Counter qos_shed_background;     ///< Background sheds (Overloaded)
  Counter qos_shed_batch;          ///< Batch sheds (Overloaded)
  Counter qos_degraded_responses;  ///< served sampled / stale under pressure
  Counter qos_cancelled_queued;    ///< cancels that dequeued waiting work
  Counter qos_cancelled_inflight;  ///< cancels honoured at a chunk boundary
  Counter qos_cancels_received;    ///< CancelRequest frames dispatched
  Counter qos_cancels_sent;        ///< client-side wire cancels issued

  /// Submit-to-completion latency per request type.
  std::array<LatencyHistogram, kRequestTypeCount> latency_by_type;

  LatencyHistogram& latency(RequestType type) {
    return latency_by_type[static_cast<std::size_t>(type)];
  }
  const LatencyHistogram& latency(RequestType type) const {
    return latency_by_type[static_cast<std::size_t>(type)];
  }

  double cache_hit_rate() const;

  /// Render as a report::TextTable (ASCII) — one row per counter/gauge,
  /// then one row per request type with count/mean/p50/p95/p99.
  /// @p cache supplies entry counts and evictions from the cache itself.
  std::string to_table(const CacheStats& cache) const;

  /// Same data as CSV (metric,value rows then per-type latency rows),
  /// via report::CsvWriter.
  std::string to_csv(const CacheStats& cache) const;

  /// Prometheus text exposition (version 0.0.4) of the whole registry:
  /// counters as `*_total`, gauges, and per-request-type latency
  /// histograms with cumulative `_bucket{le="..."}` / `_sum` / `_count`
  /// samples whose `le` bounds come from LatencyHistogram's pinned
  /// bucket edges.  Appends the Tracer's profiling totals when
  /// @p include_profile is set.  Deterministic given frozen metric
  /// values (rendered via trace::PromWriter).
  std::string to_prometheus(const CacheStats& cache,
                            bool include_profile = false) const;
};

}  // namespace mpct::service
