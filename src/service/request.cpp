#include "service/request.hpp"

namespace mpct::service {

std::string_view to_string(RequestType type) {
  switch (type) {
    case RequestType::Classify:
      return "classify";
    case RequestType::Recommend:
      return "recommend";
    case RequestType::Cost:
      return "cost";
    case RequestType::Sweep:
      return "sweep";
    case RequestType::FaultSweep:
      return "fault_sweep";
    case RequestType::SweepChunk:
      return "sweep_chunk";
    case RequestType::FaultChunk:
      return "fault_chunk";
    case RequestType::Simulate:
      return "simulate";
  }
  return "unknown";
}

}  // namespace mpct::service
