#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/fingerprint.hpp"

namespace mpct::cluster {

/// One backend server address.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Consistent-hash ring over a fixed endpoint list.
///
/// Each endpoint is hashed onto the ring at `virtual_nodes` positions
/// (vnode hashes mix host, port and the vnode index through the same
/// FNV-1a builder the request fingerprints use), which evens out the
/// key-space share each endpoint owns.  Keys are canonical request
/// fingerprints (service::fingerprint), so identical requests from any
/// client land on the same endpoint — and therefore hit the same
/// server-side result cache.
///
/// The ring is immutable after construction; liveness is layered on top
/// (ClusterClient skips Down endpoints by walking ring successors), so
/// a node going down only moves *its* keys, which is the point of
/// consistent hashing.
class HashRing {
 public:
  HashRing() = default;
  HashRing(const std::vector<Endpoint>& endpoints, std::size_t virtual_nodes);

  std::size_t size() const { return endpoint_count_; }
  bool empty() const { return endpoint_count_ == 0; }

  /// Endpoint index owning @p key: the first vnode clockwise from it.
  std::size_t owner(service::Fingerprint key) const;

  /// Preference order for @p key: the owner, then each distinct endpoint
  /// in ring-successor order.  Every endpoint appears exactly once; the
  /// caller uses position 1, 2, ... as failover / hedge replicas.
  void ordered(service::Fingerprint key, std::vector<std::size_t>& out) const;

 private:
  /// (vnode hash, endpoint index), sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
  std::size_t endpoint_count_ = 0;
};

}  // namespace mpct::cluster
