#include "cluster/client.hpp"

#include <algorithm>
#include <utility>

#include "trace/trace.hpp"

namespace mpct::cluster {
namespace {

using Clock = service::Clock;

constexpr std::size_t kNoEndpoint = static_cast<std::size_t>(-1);

/// A server answer that means "this endpoint is going away" rather than
/// "this request is bad" — worth re-routing to a replica.
bool retryable_elsewhere(const service::Status& status) {
  return status.code == service::StatusCode::ShuttingDown ||
         status.code == service::StatusCode::Unavailable;
}

}  // namespace

ClusterClient::ClusterClient(ClusterOptions options)
    : options_(std::move(options)),
      ring_(options_.endpoints, options_.virtual_nodes),
      clients_(options_.endpoints.size()) {
  if (options_.shared_health != nullptr) {
    tracker_ = options_.shared_health;
  } else {
    own_tracker_ = std::make_unique<HealthTracker>(options_.endpoints.size(),
                                                   options_.health);
    tracker_ = own_tracker_.get();
  }
  if (options_.enable_pinger) {
    pinger_ = std::make_unique<HealthPinger>(options_.endpoints, *tracker_,
                                             options_.pinger);
    pinger_->start();
  }
}

ClusterClient::~ClusterClient() = default;

std::size_t ClusterClient::owner_of(const service::Request& request) const {
  return ring_.owner(service::fingerprint(request));
}

std::chrono::milliseconds ClusterClient::hedge_delay(
    service::RequestType type) const {
  if (options_.metrics == nullptr) return options_.hedge_max_delay;
  const auto& histogram = options_.metrics->latency(type);
  if (histogram.count() < options_.hedge_min_samples) {
    return options_.hedge_max_delay;
  }
  const double p99_us = histogram.quantile_us(options_.hedge_quantile);
  const auto delay = std::chrono::milliseconds(
      static_cast<std::int64_t>(p99_us / 1000.0) + 1);
  return std::clamp(delay, options_.hedge_min_delay, options_.hedge_max_delay);
}

void ClusterClient::candidates_for(service::Fingerprint key,
                                   std::vector<std::size_t>& out) const {
  ring_.ordered(key, out);
  // Usable endpoints first, ring order preserved within each class; Down
  // ones stay at the back as a last resort so a fleet that *looks* fully
  // down still gets connection attempts instead of an instant failure.
  std::stable_partition(out.begin(), out.end(), [this](std::size_t index) {
    return tracker_->usable(index);
  });
}

net::Client* ClusterClient::endpoint_client(std::size_t index,
                                            std::string& error) {
  auto& client = clients_[index];
  if (!client) {
    net::ClientOptions copts;
    copts.host = options_.endpoints[index].host;
    copts.port = options_.endpoints[index].port;
    copts.connect_timeout = options_.connect_timeout;
    copts.io_timeout = options_.io_timeout;
    copts.max_retries = 0;  // the cluster layer owns retry policy
    copts.protocol_version = options_.protocol_version;
    copts.metrics = options_.metrics;
    client = std::make_unique<net::Client>(copts);
  }
  if (client->connected()) return client.get();
  // Fresh connection: negotiate before any traffic so v2-only requests
  // (sweep/fault chunks) are never sent to a server stuck on v1.
  const service::Status status = client->negotiate();
  if (!status.ok()) {
    client->disconnect();
    error = status.to_string();
    return nullptr;
  }
  return client.get();
}

service::QueryResponse ClusterClient::call(
    const service::Request& request, service::Deadline deadline,
    std::uint64_t trace_id, std::optional<qos::PriorityClass> priority) {
  const service::Fingerprint key = service::fingerprint(request);
  if (trace_id == 0) trace_id = key;
  // Installed before the span so cluster.call and the hedge/failover
  // instants below are all stamped with this request's trace.
  trace::TraceContextScope context(trace_id);
  trace::ScopedSpan span("cluster.call", trace::Category::Cluster);
  span.annotate("trace_id", static_cast<std::int64_t>(trace_id));
  service::MetricsRegistry* metrics = options_.metrics;
  if (metrics) metrics->net_requests_sent.add();

  service::QueryResponse response;
  if (ring_.empty()) {
    response.status = service::Status::unavailable("cluster has no endpoints");
    return response;
  }

  const service::RequestType type = service::request_type(request);
  const Clock::time_point start = Clock::now();

  std::vector<std::size_t> candidates;
  candidates_for(key, candidates);

  struct InFlight {
    std::size_t endpoint = kNoEndpoint;
    std::uint64_t id = 0;
    net::Client* client = nullptr;
    bool is_hedge = false;
  };
  std::vector<InFlight> in_flight;
  std::size_t next_candidate = 0;
  std::string last_error = "no endpoint reachable";
  // Best non-transport answer seen from a dying endpoint; returned only
  // if every other avenue is exhausted.
  service::QueryResponse fallback;
  bool have_fallback = false;

  const auto launch_next = [&](bool as_hedge) {
    bool first_attempt = next_candidate == 0;
    while (next_candidate < candidates.size()) {
      const std::size_t index = candidates[next_candidate++];
      const bool already_in_flight =
          std::any_of(in_flight.begin(), in_flight.end(),
                      [&](const InFlight& f) { return f.endpoint == index; });
      if (already_in_flight) continue;
      std::string error;
      std::uint64_t id = 0;
      net::Client* client = endpoint_client(index, error);
      if (client == nullptr ||
          !client->send_request(request, deadline, trace_id, id, error,
                                priority)) {
        // Moving past an unreachable candidate is a failover too (except
        // for the very first attempt of a never-routed request).
        tracker_->record_failure(index);
        last_error = error;
        if (!first_attempt && metrics) metrics->net_failovers.add();
        first_attempt = false;
        continue;
      }
      in_flight.push_back({index, id, client, as_hedge});
      return true;
    }
    return false;
  };

  if (!launch_next(false)) {
    if (have_fallback) return fallback;
    response.status = service::Status::unavailable(last_error);
    return response;
  }

  const std::chrono::milliseconds hedge_after = hedge_delay(type);
  const Clock::time_point hedge_at = start + hedge_after;
  bool hedged = false;

  // Abandon an attempt: ask the server to reclaim whatever is still
  // queued (wire CancelRequest, fire-and-forget) and drop the local
  // tracking so a late answer is ignored.
  const auto abandon = [](const InFlight& f) {
    std::string cancel_error;
    f.client->send_cancel(f.id, cancel_error);
    f.client->cancel(f.id);
  };
  const auto cancel_all = [&] {
    for (const InFlight& f : in_flight) abandon(f);
    in_flight.clear();
  };

  for (;;) {
    const Clock::time_point now = Clock::now();
    if (deadline.expired(now)) {
      cancel_all();
      response.status = service::Status::deadline_exceeded();
      return response;
    }

    if (options_.enable_hedging && !hedged && in_flight.size() == 1 &&
        now >= hedge_at) {
      if (launch_next(true)) {
        hedged = true;
        if (metrics) metrics->net_hedges_sent.add();
        trace::emit_instant("cluster.hedge", trace::Category::Cluster,
                            "endpoint",
                            static_cast<std::int64_t>(in_flight.back().endpoint));
      } else {
        hedged = true;  // nowhere to hedge to; stop re-trying every loop
      }
    }

    // Pump slice: short while racing two attempts, longer when only one
    // is out — but never sleeping past the hedge fire time.
    std::chrono::milliseconds slice(in_flight.size() > 1 ? 1 : 10);
    if (options_.enable_hedging && !hedged && now < hedge_at) {
      const auto until_hedge =
          std::chrono::duration_cast<std::chrono::milliseconds>(hedge_at - now);
      slice = std::clamp(until_hedge, std::chrono::milliseconds(1), slice);
    }

    for (std::size_t i = 0; i < in_flight.size();) {
      InFlight& f = in_flight[i];
      std::string error;
      const int completed = f.client->pump(slice, error);
      if (completed < 0) {
        // Transport death: this attempt is lost; the endpoint is sick.
        tracker_->record_failure(f.endpoint);
        last_error = error;
        if (metrics) metrics->net_failovers.add();
        trace::emit_instant("cluster.failover", trace::Category::Cluster,
                            "endpoint", static_cast<std::int64_t>(f.endpoint));
        in_flight.erase(in_flight.begin() +
                        static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }

    for (std::size_t i = 0; i < in_flight.size(); ++i) {
      InFlight& f = in_flight[i];
      service::QueryResponse answer;
      if (!f.client->take_response(f.id, answer)) continue;
      tracker_->record_success(f.endpoint);
      if (retryable_elsewhere(answer.status) &&
          next_candidate < candidates.size()) {
        // The endpoint answered "I'm going away": keep the answer as a
        // fallback but re-route to the next replica.
        fallback = std::move(answer);
        have_fallback = true;
        if (metrics) metrics->net_failovers.add();
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(i));
        launch_next(false);
        --i;
        continue;
      }
      // Winner: cancel the loser on both sides — locally (its late
      // answer is dropped by the primitive layer) and server-side (a
      // wire CancelRequest dequeues the duplicate if it is still
      // queued, or stops it at the next chunk boundary).
      const bool winner_is_hedge = f.is_hedge;
      const std::uint64_t winner_id = f.id;
      for (const InFlight& other : in_flight) {
        if (other.id != winner_id || other.client != f.client) {
          trace::emit_instant("cluster.cancel_loser", trace::Category::Qos,
                              "endpoint",
                              static_cast<std::int64_t>(other.endpoint));
          abandon(other);
        }
      }
      if (metrics) {
        metrics->latency(type).record(Clock::now() - start);
        if (winner_is_hedge) metrics->net_hedges_won.add();
      }
      return answer;
    }

    if (in_flight.empty() && !launch_next(false)) {
      if (have_fallback) return fallback;
      response.status = service::Status::unavailable(last_error);
      return response;
    }
  }
}

std::vector<service::QueryResponse> ClusterClient::call_many(
    const std::vector<service::Request>& requests, service::Deadline deadline,
    std::uint64_t trace_id, std::optional<qos::PriorityClass> priority) {
  // A zero trace_id keeps the ambient context (slots fall back to their
  // per-request keys on the wire, which can't be one thread-local id).
  trace::TraceContextScope context(
      trace_id != 0 ? trace_id : trace::current_trace_id());
  trace::ScopedSpan span("cluster.call_many", trace::Category::Cluster,
                         "requests",
                         static_cast<std::int64_t>(requests.size()));
  service::MetricsRegistry* metrics = options_.metrics;
  if (metrics) metrics->net_requests_sent.add(requests.size());

  std::vector<service::QueryResponse> responses(requests.size());
  if (ring_.empty()) {
    for (auto& r : responses) {
      r.status = service::Status::unavailable("cluster has no endpoints");
    }
    return responses;
  }

  struct Slot {
    service::Fingerprint key = 0;
    std::vector<std::size_t> candidates;
    std::size_t next_candidate = 0;
    std::size_t endpoint = kNoEndpoint;
    std::uint64_t id = 0;
    Clock::time_point sent_at{};
    bool done = false;
  };
  std::vector<Slot> slots(requests.size());
  std::size_t open = requests.size();

  // Routes request i to its next viable candidate; on exhaustion the
  // slot resolves Unavailable (or @p fallback when provided — a real
  // answer from a dying endpoint beats a synthetic error).
  const auto send_one = [&](std::size_t i,
                            const service::QueryResponse* fallback) {
    Slot& slot = slots[i];
    std::string last_error = "no endpoint reachable";
    while (slot.next_candidate < slot.candidates.size()) {
      const std::size_t index = slot.candidates[slot.next_candidate++];
      std::string error;
      net::Client* client = endpoint_client(index, error);
      if (client == nullptr) {
        tracker_->record_failure(index);
        last_error = error;
        continue;
      }
      std::uint64_t id = 0;
      if (!client->send_request(requests[i], deadline,
                                trace_id != 0 ? trace_id : slot.key, id,
                                error, priority)) {
        tracker_->record_failure(index);
        last_error = error;
        continue;
      }
      slot.endpoint = index;
      slot.id = id;
      slot.sent_at = Clock::now();
      return true;
    }
    if (fallback != nullptr) {
      responses[i] = *fallback;
    } else {
      responses[i].status = service::Status::unavailable(last_error);
    }
    slot.endpoint = kNoEndpoint;
    slot.done = true;
    --open;
    return false;
  };

  for (std::size_t i = 0; i < requests.size(); ++i) {
    slots[i].key = service::fingerprint(requests[i]);
    candidates_for(slots[i].key, slots[i].candidates);
    send_one(i, nullptr);
  }

  while (open > 0) {
    if (deadline.expired()) {
      for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot& slot = slots[i];
        if (slot.done) continue;
        if (slot.endpoint != kNoEndpoint) {
          // Reclaim still-queued chunks server-side before giving up.
          std::string cancel_error;
          clients_[slot.endpoint]->send_cancel(slot.id, cancel_error);
          clients_[slot.endpoint]->cancel(slot.id);
        }
        responses[i].status = service::Status::deadline_exceeded();
        slot.done = true;
        --open;
      }
      break;
    }

    // Pump every endpoint that still carries an open slot.  A dead
    // connection loses every id it carried: re-route all of them.
    std::vector<char> pumped(clients_.size(), 0);
    for (const Slot& probe : slots) {
      if (probe.done || probe.endpoint == kNoEndpoint) continue;
      if (pumped[probe.endpoint]) continue;
      pumped[probe.endpoint] = 1;
      const std::size_t endpoint = probe.endpoint;
      std::string error;
      if (clients_[endpoint]->pump(std::chrono::milliseconds(2), error) < 0) {
        tracker_->record_failure(endpoint);
        for (std::size_t i = 0; i < slots.size(); ++i) {
          if (slots[i].done || slots[i].endpoint != endpoint) continue;
          if (metrics) metrics->net_failovers.add();
          trace::emit_instant("cluster.failover", trace::Category::Cluster,
                              "endpoint", static_cast<std::int64_t>(endpoint));
          send_one(i, nullptr);
        }
      }
    }

    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (slot.done || slot.endpoint == kNoEndpoint) continue;
      service::QueryResponse answer;
      if (!clients_[slot.endpoint]->take_response(slot.id, answer)) continue;
      tracker_->record_success(slot.endpoint);
      if (retryable_elsewhere(answer.status) &&
          slot.next_candidate < slot.candidates.size()) {
        if (metrics) metrics->net_failovers.add();
        send_one(i, &answer);
        continue;
      }
      if (metrics) {
        metrics->latency(service::request_type(requests[i]))
            .record(Clock::now() - slot.sent_at);
      }
      responses[i] = std::move(answer);
      slot.done = true;
      --open;
    }
  }
  return responses;
}

}  // namespace mpct::cluster
