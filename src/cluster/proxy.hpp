#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/health.hpp"
#include "net/server.hpp"
#include "service/metrics.hpp"
#include "service/queue.hpp"
#include "service/request.hpp"

namespace mpct::cluster {

/// Tuning knobs of a CombiningProxy.
struct ProxyOptions {
  /// Front door the proxy listens on.
  net::ServerOptions server;
  /// Backend fleet.  `cluster.metrics` defaults to the proxy's own
  /// registry, `cluster.shared_health` is overridden with the proxy's
  /// tracker (one fleet, one health view).
  ClusterOptions cluster;
  /// Worker threads, each owning one ClusterClient.
  std::size_t worker_threads = 4;
  std::size_t queue_capacity = 256;
  /// Sweep scatter factor: a sweep splits into about
  /// endpoints x this many chunks, so the fleet can balance even when
  /// backends run at different speeds.
  std::size_t chunks_per_endpoint = 2;
  /// Run a background HealthPinger against the fleet.
  bool enable_pinger = true;
};

/// Scatter/gather front end for a fleet of taxonomy servers.
///
/// Speaks the same wire protocol as net::Server, so any net::Client can
/// point at the proxy unchanged.  Grid-shaped requests (SweepRequest,
/// FaultSweepRequest) are split into disjoint flat-index chunk requests
/// (SweepChunkRequest / FaultChunkRequest, wire v2), scattered across
/// the fleet via ClusterClient::call_many, and merged with *exactly*
/// the engine's own completion logic:
///
///  * sweep — chunk points concatenate in index order,
///    pareto_front(points) recomputes the front, candidate_classes
///    comes from any chunk (each evaluates the same grid filter);
///  * fault sweep — chunk trial outcomes concatenate in index order and
///    CurveEvaluator::finalize reduces them (each trial's RNG stream
///    derives from its flat cell index, so placement cannot change it).
///
/// Merged responses are therefore bit-identical to a single server
/// evaluating the whole request (test-enforced).  Every other request
/// type passes through ClusterClient::call — consistent-hash routed,
/// health-checked, hedged.
///
/// One caveat: merged fault results assume the backends price against
/// the default component library (the proxy has no engine of its own).
/// Point the fleet at one EngineOptions::library and this holds.
class CombiningProxy {
 public:
  explicit CombiningProxy(ProxyOptions options);
  ~CombiningProxy();

  CombiningProxy(const CombiningProxy&) = delete;
  CombiningProxy& operator=(const CombiningProxy&) = delete;

  /// Bind the front door, spawn workers (and the pinger).  False +
  /// error() on failure.  A proxy starts at most once.
  bool start();

  /// Stop: close the task queue, drain the workers, then shut the
  /// server down (so every accepted request is answered before its
  /// connection dies).  Idempotent; called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (after start()).
  std::uint16_t port() const { return server_ ? server_->port() : 0; }
  const std::string& error() const { return error_; }

  service::MetricsRegistry& metrics() { return metrics_; }
  HealthTracker& health() { return tracker_; }
  /// Null unless options().enable_pinger.
  HealthPinger* pinger() { return pinger_.get(); }
  const ProxyOptions& options() const { return options_; }

 private:
  struct ProxyTask {
    service::Request request;
    service::Deadline deadline;
    std::uint64_t trace_id = 0;
    /// Front-door QoS class, forwarded verbatim on every backend frame
    /// (sweep chunks included) so a Background sweep stays Background
    /// on the whole fleet.
    qos::PriorityClass priority = qos::PriorityClass::Interactive;
    service::QueryEngine::ResponseCallback callback;
  };

  void worker_loop();
  service::QueryResponse handle(ClusterClient& cluster,
                                const service::Request& request,
                                service::Deadline deadline,
                                std::uint64_t trace_id,
                                qos::PriorityClass priority);
  service::QueryResponse scatter_sweep(ClusterClient& cluster,
                                       const service::SweepRequest& request,
                                       service::Deadline deadline,
                                       std::uint64_t trace_id,
                                       qos::PriorityClass priority);
  service::QueryResponse scatter_fault(ClusterClient& cluster,
                                       const service::FaultSweepRequest& request,
                                       service::Deadline deadline,
                                       std::uint64_t trace_id,
                                       qos::PriorityClass priority);

  ProxyOptions options_;
  service::MetricsRegistry metrics_;
  HealthTracker tracker_;
  std::unique_ptr<HealthPinger> pinger_;
  service::BoundedQueue<ProxyTask> queue_;
  std::vector<std::thread> workers_;
  std::unique_ptr<net::Server> server_;
  std::string error_;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace mpct::cluster
