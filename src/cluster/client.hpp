#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/health.hpp"
#include "cluster/ring.hpp"
#include "net/client.hpp"
#include "service/fingerprint.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"

namespace mpct::cluster {

/// Tuning knobs of a ClusterClient.
struct ClusterOptions {
  std::vector<Endpoint> endpoints;
  /// Ring positions per endpoint; more vnodes = more even key-space
  /// shares at the cost of a bigger (still tiny) sorted array.
  std::size_t virtual_nodes = 64;

  // --- Health -------------------------------------------------------
  HealthOptions health;
  /// Share another component's tracker (the proxy gives every worker's
  /// ClusterClient the same one, fed by a single HealthPinger).  Null =
  /// this client owns a private tracker.
  HealthTracker* shared_health = nullptr;
  /// Run a background HealthPinger of our own.  Leave off when a shared
  /// tracker is already being fed by someone else's pinger.
  bool enable_pinger = false;
  PingerOptions pinger;

  // --- Hedging ------------------------------------------------------
  /// After this latency quantile of the request type's *client-observed*
  /// history, re-issue the request to the next ring replica and take
  /// whichever answers first.
  bool enable_hedging = true;
  double hedge_quantile = 0.99;
  /// Until the histogram holds this many samples the hedge delay falls
  /// back to hedge_max_delay (a cold p99 estimate is noise).
  std::uint64_t hedge_min_samples = 32;
  std::chrono::milliseconds hedge_min_delay{1};
  std::chrono::milliseconds hedge_max_delay{100};

  // --- Per-connection knobs (forwarded to each net::Client) ---------
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds io_timeout{10000};
  std::uint16_t protocol_version = wire::kProtocolVersion;

  /// Client-side registry: request latencies recorded here feed the
  /// hedge delay, and net_requests_sent / net_hedges_* / net_failovers
  /// land here.  May be null (hedging then always waits hedge_max_delay).
  service::MetricsRegistry* metrics = nullptr;
};

/// Fleet-aware request router: consistent-hash placement, health-driven
/// failover, and p99-delayed hedged retries over a set of net::Servers.
///
/// Routing — call() keys the ring with the request's canonical
/// fingerprint (service::fingerprint), so identical requests from any
/// client reach the same server and hit its result cache.  Replicas for
/// failover/hedging are the ring successors, Down endpoints sorted last.
///
/// Failover — a transport error (connect refused, reset, broken stream)
/// records a failure against the endpoint and transparently re-sends to
/// the next replica; so do ShuttingDown/Unavailable answers, which mean
/// "this server is going away", not "this request is bad".  A request
/// only fails once every replica has been tried.
///
/// Hedging — when the primary has not answered after the live p99 of
/// its request type (from metrics->latency(), clamped to
/// [hedge_min_delay, hedge_max_delay]), the same request is re-issued
/// to the next replica; the first response wins and the loser is
/// cancelled both client-side (its late answer is dropped) and
/// server-side (a wire CancelRequest lets the loser's server dequeue
/// or abandon the duplicate — reclaimed capacity, not just an ignored
/// response).
///
/// Not thread-safe: one ClusterClient per thread, like net::Client.
/// Concurrent ClusterClients may share a HealthTracker.
class ClusterClient {
 public:
  explicit ClusterClient(ClusterOptions options);
  ~ClusterClient();

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Route one request (hash placement + failover + hedging).
  /// @p trace_id stamps every frame sent for this request (hedges
  /// included); 0 derives one from the request fingerprint.
  /// @p priority is the QoS class stamped on every frame (hedges
  /// inherit it); nullopt lets the wire derive the request type's
  /// default.  An Overloaded answer is returned as-is — admission shed
  /// is *policy*, so re-routing it to a replica would defeat the
  /// fleet's load shedding (the caller's net::Client backoff is the
  /// right place to wait out the retry-after hint).
  service::QueryResponse call(
      const service::Request& request,
      service::Deadline deadline = service::Deadline::never(),
      std::uint64_t trace_id = 0,
      std::optional<qos::PriorityClass> priority = std::nullopt);

  /// Scatter a batch concurrently: element i answers request i.  Each
  /// request routes independently by its own fingerprint with full
  /// failover, but no hedging — this is the proxy's chunk fan-out,
  /// where duplicated work would cost more than a tail stall.
  std::vector<service::QueryResponse> call_many(
      const std::vector<service::Request>& requests,
      service::Deadline deadline = service::Deadline::never(),
      std::uint64_t trace_id = 0,
      std::optional<qos::PriorityClass> priority = std::nullopt);

  const HashRing& ring() const { return ring_; }
  HealthTracker& health() { return *tracker_; }
  const HealthTracker& health() const { return *tracker_; }
  /// Null unless options().enable_pinger.
  HealthPinger* pinger() { return pinger_.get(); }
  const ClusterOptions& options() const { return options_; }

  /// Ring owner of @p request (test/diagnostic aid).
  std::size_t owner_of(const service::Request& request) const;

  /// Hedge delay call() would use right now for @p type (test aid).
  std::chrono::milliseconds hedge_delay(service::RequestType type) const;

 private:
  /// Connected-and-negotiated client for endpoint @p index, or null
  /// (with @p error set) when it cannot be reached.
  net::Client* endpoint_client(std::size_t index, std::string& error);
  /// Ring preference order for @p key with Down endpoints moved to the
  /// back (last resort, in case the whole fleet looks down).
  void candidates_for(service::Fingerprint key,
                      std::vector<std::size_t>& out) const;

  ClusterOptions options_;
  HashRing ring_;
  std::unique_ptr<HealthTracker> own_tracker_;
  HealthTracker* tracker_ = nullptr;
  std::unique_ptr<HealthPinger> pinger_;
  /// Lazily connected, index-aligned with options_.endpoints.
  std::vector<std::unique_ptr<net::Client>> clients_;
};

}  // namespace mpct::cluster
