#include "cluster/ring.hpp"

#include <algorithm>

namespace mpct::cluster {

std::string Endpoint::to_string() const {
  return host + ":" + std::to_string(port);
}

HashRing::HashRing(const std::vector<Endpoint>& endpoints,
                   std::size_t virtual_nodes)
    : endpoint_count_(endpoints.size()) {
  if (virtual_nodes == 0) virtual_nodes = 1;
  points_.reserve(endpoints.size() * virtual_nodes);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    for (std::size_t v = 0; v < virtual_nodes; ++v) {
      service::FingerprintBuilder b;
      b.mix(endpoints[i].host)
          .mix(static_cast<std::uint64_t>(endpoints[i].port))
          .mix(static_cast<std::uint64_t>(v));
      points_.emplace_back(b.value(), static_cast<std::uint32_t>(i));
    }
  }
  // Ties (two vnodes hashing equal) are broken by endpoint index so the
  // ring order is deterministic across processes.
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::owner(service::Fingerprint key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const auto& point, std::uint64_t k) { return point.first < k; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

void HashRing::ordered(service::Fingerprint key,
                       std::vector<std::size_t>& out) const {
  out.clear();
  if (points_.empty()) return;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const auto& point, std::uint64_t k) { return point.first < k; });
  const std::size_t start =
      it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
  std::vector<char> seen(endpoint_count_, 0);
  for (std::size_t step = 0;
       step < points_.size() && out.size() < endpoint_count_; ++step) {
    const std::uint32_t idx = points_[(start + step) % points_.size()].second;
    if (seen[idx]) continue;
    seen[idx] = 1;
    out.push_back(idx);
  }
}

}  // namespace mpct::cluster
