#include "cluster/proxy.hpp"

#include <algorithm>
#include <utility>
#include <variant>

#include "explore/sweep.hpp"
#include "fault/degradation_curve.hpp"
#include "trace/trace.hpp"

namespace mpct::cluster {

CombiningProxy::CombiningProxy(ProxyOptions options)
    : options_(std::move(options)),
      tracker_(options_.cluster.endpoints.size(), options_.cluster.health),
      queue_(options_.queue_capacity) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
}

CombiningProxy::~CombiningProxy() { stop(); }

bool CombiningProxy::start() {
  if (started_) return running();
  started_ = true;

  server_ = std::make_unique<net::Server>(
      [this](service::Request request, service::Deadline deadline,
             const net::Server::RequestContext& context,
             service::QueryEngine::ResponseCallback callback) {
        ProxyTask task{std::move(request), deadline, context.trace_id,
                       context.priority, std::move(callback)};
        if (!queue_.try_push(task)) {
          // try_push leaves the task untouched on failure, so the
          // callback is still ours to answer with.
          service::QueryResponse response;
          response.status = queue_.closed() ? service::Status::shutting_down()
                                            : service::Status::queue_full();
          task.callback(std::move(response));
        }
      },
      metrics_, options_.server);
  if (!server_->start()) {
    error_ = server_->error();
    server_.reset();
    return false;
  }

  if (options_.enable_pinger) {
    pinger_ = std::make_unique<HealthPinger>(options_.cluster.endpoints,
                                             tracker_, options_.cluster.pinger);
    pinger_->start();
  }

  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  running_.store(true, std::memory_order_release);
  return true;
}

void CombiningProxy::stop() {
  running_.store(false, std::memory_order_release);
  if (pinger_) pinger_->stop();
  // Order matters: close the queue and drain the workers *before*
  // stopping the server — handler-mode Server requires every accepted
  // request's callback to have fired before it goes away.  Requests
  // arriving in between get an inline ShuttingDown from the handler.
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (server_) server_->stop();
}

void CombiningProxy::worker_loop() {
  ClusterOptions copts = options_.cluster;
  copts.shared_health = &tracker_;
  copts.enable_pinger = false;  // one proxy, one pinger
  if (copts.metrics == nullptr) copts.metrics = &metrics_;
  ClusterClient cluster(copts);

  ProxyTask task;
  while (queue_.pop(task)) {
    service::QueryResponse response;
    // Restore the originating request's trace context so scatter and
    // cluster spans recorded on this worker join its trace.
    trace::TraceContextScope context(task.trace_id);
    if (task.deadline.expired()) {
      trace::emit_instant("deadline.expired", trace::Category::Mark);
      response.status = service::Status::deadline_exceeded();
    } else {
      response = handle(cluster, task.request, task.deadline, task.trace_id,
                        task.priority);
    }
    task.callback(std::move(response));
    task = ProxyTask{};  // drop the callback before blocking in pop()
  }
}

service::QueryResponse CombiningProxy::handle(ClusterClient& cluster,
                                              const service::Request& request,
                                              service::Deadline deadline,
                                              std::uint64_t trace_id,
                                              qos::PriorityClass priority) {
  switch (service::request_type(request)) {
    case service::RequestType::Sweep:
      return scatter_sweep(cluster, std::get<service::SweepRequest>(request),
                           deadline, trace_id, priority);
    case service::RequestType::FaultSweep:
      return scatter_fault(cluster,
                           std::get<service::FaultSweepRequest>(request),
                           deadline, trace_id, priority);
    default:
      // Point queries pass through: hash-routed, health-checked, hedged.
      return cluster.call(request, deadline, trace_id, priority);
  }
}

namespace {

/// Split [0, cells) into at most @p chunks near-equal disjoint ranges
/// whose boundaries (except the last) land on multiples of
/// @p granularity — sweep chunks align to whole grid rows so every
/// backend runs the evaluator's batch kernel end to end.
template <typename MakeRequest>
std::vector<service::Request> make_chunks(std::uint64_t cells,
                                          std::uint64_t chunks,
                                          std::uint64_t granularity,
                                          MakeRequest make_request) {
  std::vector<service::Request> requests;
  requests.reserve(static_cast<std::size_t>(chunks));
  const std::uint64_t grain = std::max<std::uint64_t>(1, granularity);
  std::uint64_t begin = 0;
  for (std::uint64_t k = 0; k < chunks; ++k) {
    std::uint64_t end = cells * (k + 1) / chunks;
    end = std::min(cells, (end + grain - 1) / grain * grain);
    if (k + 1 == chunks) end = cells;
    if (begin >= end) continue;
    requests.push_back(make_request(begin, end));
    begin = end;
  }
  return requests;
}

}  // namespace

service::QueryResponse CombiningProxy::scatter_sweep(
    ClusterClient& cluster, const service::SweepRequest& request,
    service::Deadline deadline, std::uint64_t trace_id,
    qos::PriorityClass priority) {
  trace::ScopedSpan span("proxy.scatter_sweep", trace::Category::Cluster);
  const std::uint64_t cells = request.grid.cell_count();
  if (cells == 0) {
    // An empty grid has nothing to scatter; one backend answers
    // canonically (empty points, the filter's candidate count).
    return cluster.call(service::Request(request), deadline, trace_id,
                        priority);
  }
  const std::uint64_t want = std::max<std::uint64_t>(
      1, options_.cluster.endpoints.size() * options_.chunks_per_endpoint);
  const std::uint64_t chunks = std::min(want, cells);
  span.annotate("chunks", static_cast<std::int64_t>(chunks));

  // Chunks carry the *original* grid: backends normalize it identically,
  // and identical outer sweeps then fingerprint to identical chunks —
  // deterministic placement and cache affinity on repeats.
  // One grid row (all LUT budgets x all objectives at one n) is the
  // backend batch kernel's granularity.
  const explore::SweepGrid normalized = request.grid.normalized();
  const std::uint64_t row_cells =
      static_cast<std::uint64_t>(normalized.lut_budgets.size()) *
      normalized.objectives.size();
  const auto parts = cluster.call_many(
      make_chunks(cells, chunks, row_cells,
                  [&](std::uint64_t begin, std::uint64_t end) {
                    return service::Request(
                        service::SweepChunkRequest{request.grid, begin, end});
                  }),
      deadline, trace_id, priority);

  service::QueryResponse response;
  std::size_t total_points = 0;
  for (const auto& part : parts) {
    if (!part.ok()) {
      response.status = part.status;
      return response;
    }
    const service::SweepChunkResponse* chunk = part.sweep_chunk();
    if (chunk == nullptr) {
      response.status = service::Status::internal_error(
          "backend answered a sweep chunk with the wrong payload type");
      return response;
    }
    total_points += chunk->points.size();
  }

  // Mirror engine.cpp complete_sweep(): concatenate in index order and
  // recompute the Pareto front over the full point set.
  service::SweepResponse payload;
  payload.result.points.reserve(total_points);
  for (const auto& part : parts) {
    const auto& points = part.sweep_chunk()->points;
    payload.result.points.insert(payload.result.points.end(), points.begin(),
                                 points.end());
  }
  payload.result.pareto_front = explore::pareto_front(payload.result.points);
  payload.result.candidate_classes = static_cast<std::size_t>(
      parts.front().sweep_chunk()->candidate_classes);
  response.status = service::Status::okay();
  response.payload = std::make_shared<const service::ResponsePayload>(
      std::move(payload));
  return response;
}

service::QueryResponse CombiningProxy::scatter_fault(
    ClusterClient& cluster, const service::FaultSweepRequest& request,
    service::Deadline deadline, std::uint64_t trace_id,
    qos::PriorityClass priority) {
  trace::ScopedSpan span("proxy.scatter_fault", trace::Category::Cluster);
  const std::uint64_t cells = request.spec.cell_count();
  if (cells == 0) {
    return cluster.call(service::Request(request), deadline, trace_id,
                        priority);
  }
  const std::uint64_t want = std::max<std::uint64_t>(
      1, options_.cluster.endpoints.size() * options_.chunks_per_endpoint);
  const std::uint64_t chunks = std::min(want, cells);
  span.annotate("chunks", static_cast<std::int64_t>(chunks));

  const auto parts = cluster.call_many(
      make_chunks(cells, chunks, /*granularity=*/1,
                  [&](std::uint64_t begin, std::uint64_t end) {
                    return service::Request(
                        service::FaultChunkRequest{request.spec, begin, end});
                  }),
      deadline, trace_id, priority);

  service::QueryResponse response;
  std::size_t total_outcomes = 0;
  for (const auto& part : parts) {
    if (!part.ok()) {
      response.status = part.status;
      return response;
    }
    const service::FaultChunkResponse* chunk = part.fault_chunk();
    if (chunk == nullptr) {
      response.status = service::Status::internal_error(
          "backend answered a fault chunk with the wrong payload type");
      return response;
    }
    total_outcomes += chunk->outcomes.size();
  }

  // Mirror engine.cpp complete_curve(): outcomes concatenate in flat
  // cell order, then one finalize() reduces them per rate.  finalize is
  // a pure aggregation of the outcomes, so the proxy-side evaluator
  // (default component library) matches any backend's.
  std::vector<fault::TrialOutcome> outcomes;
  outcomes.reserve(total_outcomes);
  for (const auto& part : parts) {
    const auto& chunk_outcomes = part.fault_chunk()->outcomes;
    outcomes.insert(outcomes.end(), chunk_outcomes.begin(),
                    chunk_outcomes.end());
  }
  const fault::CurveEvaluator evaluator(request.spec);
  service::FaultSweepResponse payload;
  payload.result.spec = evaluator.spec();
  payload.result.points = evaluator.finalize(outcomes);
  response.status = service::Status::okay();
  response.payload = std::make_shared<const service::ResponsePayload>(
      std::move(payload));
  return response;
}

}  // namespace mpct::cluster
