#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "net/client.hpp"

namespace mpct::cluster {

/// Per-endpoint liveness, as seen from one side of the fleet.
///
///   Up ──failure──▶ Suspect ──more failures──▶ Down
///    ▲                                           │
///    └────────────── any success ◀───────────────┘
///
/// Suspect endpoints still receive traffic (they may just be slow — a
/// hedge covers the latency), Down ones are skipped entirely until a
/// Ping succeeds.
enum class HealthState : std::uint8_t {
  Up = 0,
  Suspect = 1,
  Down = 2,
};

std::string_view to_string(HealthState state);

struct HealthOptions {
  /// Consecutive failures before Up degrades to Suspect.
  int suspect_after = 1;
  /// Consecutive failures before the endpoint is marked Down.
  int down_after = 3;
};

/// Lock-free per-endpoint health state machine, shared by every
/// ClusterClient of a fleet (and fed by the HealthPinger).  Transitions
/// are driven by two edges only — record_failure() from transport errors
/// or failed pings, record_success() from any completed round trip — so
/// callers never reason about states, just report outcomes.
class HealthTracker {
 public:
  explicit HealthTracker(std::size_t endpoints, HealthOptions options = {});

  std::size_t size() const { return count_; }

  void record_success(std::size_t endpoint);
  void record_failure(std::size_t endpoint);

  HealthState state(std::size_t endpoint) const;
  /// Up or Suspect — may be routed to.
  bool usable(std::size_t endpoint) const {
    return state(endpoint) != HealthState::Down;
  }

 private:
  // Atomics are neither movable nor copyable, so slots live in a
  // fixed-size heap array rather than a std::vector.
  struct Slot {
    std::atomic<int> failures{0};
    std::atomic<std::uint8_t> state{static_cast<std::uint8_t>(HealthState::Up)};
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t count_ = 0;
  HealthOptions options_;
};

struct PingerOptions {
  /// Pause between probe passes.
  std::chrono::milliseconds interval{500};
  /// Ping round-trip budget per endpoint; a miss is a failure.
  std::chrono::milliseconds timeout{250};
  std::chrono::milliseconds connect_timeout{250};
};

/// Background prober: one thread, one lightweight net::Client per
/// endpoint, a Ping/Pong round trip per endpoint per pass, results fed
/// into a shared HealthTracker.  This is what notices a Down endpoint
/// coming back (data traffic never reaches it, so only pings can).
///
/// check_now() runs a single synchronous pass and is safe alongside the
/// background thread — tests use it to force deterministic transitions.
class HealthPinger {
 public:
  HealthPinger(std::vector<Endpoint> endpoints, HealthTracker& tracker,
               PingerOptions options = {});
  ~HealthPinger();

  HealthPinger(const HealthPinger&) = delete;
  HealthPinger& operator=(const HealthPinger&) = delete;

  /// Launch the background probe thread (idempotent).
  void start();
  /// Stop and join it (idempotent; called by the destructor).
  void stop();

  /// One synchronous probe pass over every endpoint.
  void check_now();

 private:
  void loop();

  std::vector<Endpoint> endpoints_;
  HealthTracker& tracker_;
  PingerOptions options_;

  /// Guards clients_ (check_now may race the background thread).
  std::mutex probe_mutex_;
  std::vector<std::unique_ptr<net::Client>> clients_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace mpct::cluster
