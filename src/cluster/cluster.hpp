#pragma once

/// Umbrella header for the fleet tier: the consistent-hash ring,
/// endpoint health tracking/probing, the routing-failover-hedging
/// ClusterClient, and the scatter/gather CombiningProxy.

#include "cluster/client.hpp"  // IWYU pragma: export
#include "cluster/health.hpp"  // IWYU pragma: export
#include "cluster/proxy.hpp"   // IWYU pragma: export
#include "cluster/ring.hpp"    // IWYU pragma: export
