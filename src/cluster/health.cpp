#include "cluster/health.hpp"

#include <string>
#include <utility>

namespace mpct::cluster {

std::string_view to_string(HealthState state) {
  switch (state) {
    case HealthState::Up:
      return "up";
    case HealthState::Suspect:
      return "suspect";
    case HealthState::Down:
      return "down";
  }
  return "unknown";
}

HealthTracker::HealthTracker(std::size_t endpoints, HealthOptions options)
    : slots_(std::make_unique<Slot[]>(endpoints)),
      count_(endpoints),
      options_(options) {
  if (options_.suspect_after < 1) options_.suspect_after = 1;
  if (options_.down_after < options_.suspect_after) {
    options_.down_after = options_.suspect_after;
  }
}

void HealthTracker::record_success(std::size_t endpoint) {
  if (endpoint >= count_) return;
  Slot& slot = slots_[endpoint];
  slot.failures.store(0, std::memory_order_relaxed);
  slot.state.store(static_cast<std::uint8_t>(HealthState::Up),
                   std::memory_order_release);
}

void HealthTracker::record_failure(std::size_t endpoint) {
  if (endpoint >= count_) return;
  Slot& slot = slots_[endpoint];
  const int failures = slot.failures.fetch_add(1, std::memory_order_relaxed) + 1;
  const HealthState next = failures >= options_.down_after
                               ? HealthState::Down
                               : failures >= options_.suspect_after
                                     ? HealthState::Suspect
                                     : HealthState::Up;
  slot.state.store(static_cast<std::uint8_t>(next), std::memory_order_release);
}

HealthState HealthTracker::state(std::size_t endpoint) const {
  if (endpoint >= count_) return HealthState::Down;
  return static_cast<HealthState>(
      slots_[endpoint].state.load(std::memory_order_acquire));
}

HealthPinger::HealthPinger(std::vector<Endpoint> endpoints,
                           HealthTracker& tracker, PingerOptions options)
    : endpoints_(std::move(endpoints)),
      tracker_(tracker),
      options_(options),
      clients_(endpoints_.size()) {}

HealthPinger::~HealthPinger() { stop(); }

void HealthPinger::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void HealthPinger::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthPinger::check_now() {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (!clients_[i]) {
      net::ClientOptions copts;
      copts.host = endpoints_[i].host;
      copts.port = endpoints_[i].port;
      copts.connect_timeout = options_.connect_timeout;
      copts.io_timeout = options_.timeout;
      copts.max_retries = 0;
      clients_[i] = std::make_unique<net::Client>(copts);
    }
    std::string error;
    if (clients_[i]->ping(options_.timeout, error)) {
      tracker_.record_success(i);
    } else {
      // Drop the connection so the next pass reconnects from scratch
      // instead of reading a half-dead stream.
      clients_[i]->disconnect();
      tracker_.record_failure(i);
    }
  }
}

void HealthPinger::loop() {
  for (;;) {
    check_now();
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait_for(lock, options_.interval,
                      [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

}  // namespace mpct::cluster
