#include "sim/simd/array_processor.hpp"

#include <stdexcept>

namespace mpct::sim {

ArrayProcessorConfig ArrayProcessorConfig::for_subtype(
    int subtype, int lanes, std::size_t bank_words) {
  if (subtype < 1 || subtype > 4) {
    throw std::invalid_argument("IAP subtype must be 1..4");
  }
  ArrayProcessorConfig config;
  config.lanes = lanes;
  config.bank_words = bank_words;
  const int bits = subtype - 1;
  config.dp_dm =
      (bits & 2) ? mpct::SwitchKind::Crossbar : mpct::SwitchKind::Direct;
  config.dp_dp =
      (bits & 1) ? mpct::SwitchKind::Crossbar : mpct::SwitchKind::None;
  return config;
}

int ArrayProcessorConfig::subtype() const {
  return 1 + 2 * (dp_dm == mpct::SwitchKind::Crossbar ? 1 : 0) +
         (dp_dp == mpct::SwitchKind::Crossbar ? 1 : 0);
}

ArrayProcessor::ArrayProcessor(Program program, ArrayProcessorConfig config)
    : program_(std::move(program)), config_(config) {
  if (config_.lanes < 1) {
    throw std::invalid_argument("ArrayProcessor needs >= 1 lane");
  }
  const int banks = config_.banks < 0 ? config_.lanes : config_.banks;
  if (banks < 1) throw std::invalid_argument("ArrayProcessor needs banks");
  if (config_.dp_dm == mpct::SwitchKind::Direct && banks < config_.lanes) {
    throw std::invalid_argument(
        "direct DP-DM needs at least one bank per lane");
  }
  banks_.reserve(static_cast<std::size_t>(banks));
  for (int b = 0; b < banks; ++b) {
    banks_.emplace_back("DM" + std::to_string(b), config_.bank_words);
  }
  lanes_.resize(static_cast<std::size_t>(config_.lanes));
}

void ArrayProcessor::reset() {
  for (CoreState& lane : lanes_) lane = CoreState{};
  ip_ = CoreState{};
}

Word ArrayProcessor::load(int lane, Word address) const {
  if (config_.dp_dm == mpct::SwitchKind::Direct) {
    return banks_[static_cast<std::size_t>(lane)].load(
        static_cast<std::size_t>(address));
  }
  // Crossbar: global address space across banks.
  const std::size_t bank =
      static_cast<std::size_t>(address) / config_.bank_words;
  if (address < 0 || bank >= banks_.size()) {
    throw SimError("IAP: global load out of range at " +
                   std::to_string(address));
  }
  return banks_[bank].load(static_cast<std::size_t>(address) %
                           config_.bank_words);
}

void ArrayProcessor::store(int lane, Word address, Word value) {
  if (config_.dp_dm == mpct::SwitchKind::Direct) {
    banks_[static_cast<std::size_t>(lane)].store(
        static_cast<std::size_t>(address), value);
    return;
  }
  const std::size_t bank =
      static_cast<std::size_t>(address) / config_.bank_words;
  if (address < 0 || bank >= banks_.size()) {
    throw SimError("IAP: global store out of range at " +
                   std::to_string(address));
  }
  banks_[bank].store(static_cast<std::size_t>(address) % config_.bank_words,
                     value);
}

RunStats ArrayProcessor::run(std::int64_t max_cycles) {
  RunStats stats;
  const int size = static_cast<int>(program_.size());

  while (!ip_.halted && stats.cycles < max_cycles) {
    if (ip_.pc < 0 || ip_.pc >= size) {
      throw SimError("IAP: pc out of program at " + std::to_string(ip_.pc));
    }
    const Instruction& inst = program_[static_cast<std::size_t>(ip_.pc)];
    ++stats.cycles;
    stats.instructions += config_.lanes;

    switch (inst.op) {
      case Opcode::Halt:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Jmp:
      case Opcode::Nop: {
        // Scalar control: the IP resolves flow against lane 0's state.
        CoreState control;
        control.regs = lanes_[0].regs;
        control.pc = ip_.pc;
        execute_common(control, inst, size);
        ip_.pc = control.pc;
        ip_.halted = control.halted;
        break;
      }
      case Opcode::Ld:
        for (int l = 0; l < config_.lanes; ++l) {
          CoreState& lane = lanes_[static_cast<std::size_t>(l)];
          lane.set_reg(inst.rd, load(l, lane.reg(inst.ra) + inst.imm));
        }
        ++ip_.pc;
        break;
      case Opcode::St:
        for (int l = 0; l < config_.lanes; ++l) {
          CoreState& lane = lanes_[static_cast<std::size_t>(l)];
          store(l, lane.reg(inst.ra) + inst.imm, lane.reg(inst.rb));
        }
        ++ip_.pc;
        break;
      case Opcode::Lane:
        for (int l = 0; l < config_.lanes; ++l) {
          lanes_[static_cast<std::size_t>(l)].set_reg(inst.rd, l);
        }
        ++ip_.pc;
        break;
      case Opcode::Shuf: {
        if (config_.dp_dp != mpct::SwitchKind::Crossbar) {
          throw SimError(
              "IAP-" + std::to_string(config_.subtype()) +
              " has no DP-DP switch: SHUF needs IAP-II or IAP-IV");
        }
        // Simultaneous gather: all reads see pre-instruction values.
        std::vector<Word> snapshot(static_cast<std::size_t>(config_.lanes));
        for (int l = 0; l < config_.lanes; ++l) {
          snapshot[static_cast<std::size_t>(l)] =
              lanes_[static_cast<std::size_t>(l)].reg(inst.ra);
        }
        for (int l = 0; l < config_.lanes; ++l) {
          CoreState& lane = lanes_[static_cast<std::size_t>(l)];
          const Word selector = lane.reg(inst.rb);
          const int src = static_cast<int>(
              ((selector % config_.lanes) + config_.lanes) % config_.lanes);
          lane.set_reg(inst.rd, snapshot[static_cast<std::size_t>(src)]);
        }
        ++ip_.pc;
        break;
      }
      case Opcode::Out:
        for (int l = 0; l < config_.lanes; ++l) {
          stats.output.push_back(
              lanes_[static_cast<std::size_t>(l)].reg(inst.ra));
        }
        ++ip_.pc;
        break;
      case Opcode::Send:
      case Opcode::Recv:
        throw SimError(
            "array processors have a single IP: SEND/RECV message passing "
            "needs a multiprocessor (IMP) class");
      default:
        // Per-lane data instructions (ALU, LDI, MOV, ADDI).
        for (int l = 0; l < config_.lanes; ++l) {
          CoreState& lane = lanes_[static_cast<std::size_t>(l)];
          lane.pc = ip_.pc;
          if (!execute_common(lane, inst, size)) {
            throw SimError("IAP: unhandled opcode " +
                           std::string(mnemonic(inst.op)));
          }
        }
        ++ip_.pc;
        break;
    }
  }
  stats.halted = ip_.halted;
  return stats;
}

}  // namespace mpct::sim
