#pragma once

#include <memory>
#include <vector>

#include "core/connectivity.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace mpct::sim {

/// Configuration of an array processor (classes IAP-I..IV): one IP
/// broadcasting to n data-processor lanes; the sub-type is determined by
/// the DP-DM and DP-DP switch kinds exactly as in the taxonomy.
struct ArrayProcessorConfig {
  int lanes = 8;
  int banks = -1;  ///< memory banks; -1 = one per lane
  std::size_t bank_words = 256;
  /// Direct: lane i reaches only bank i, local addressing.
  /// Crossbar: global address space over all banks (addr / bank_words
  /// selects the bank) — any lane reaches any bank.
  mpct::SwitchKind dp_dm = mpct::SwitchKind::Direct;
  /// None: no lane-to-lane exchange (SHUF traps).
  /// Crossbar: SHUF performs a simultaneous register gather across lanes.
  mpct::SwitchKind dp_dp = mpct::SwitchKind::None;

  /// Build the canonical configuration of IAP-<subtype> (1..4).
  static ArrayProcessorConfig for_subtype(int subtype, int lanes = 8,
                                          std::size_t bank_words = 256);

  /// The IAP sub-type this configuration realises (1..4).
  int subtype() const;
};

/// Executable array processor (instruction flow, single IP, n DP lanes).
///
/// SIMD semantics: one shared program counter (the single IP); every
/// non-masked lane executes the broadcast instruction on its private
/// register file.  Control flow is scalar and resolved on lane 0's
/// registers (the IP observes the state of the DP feeding it,
/// Skillicorn's definition).  LANE materialises the lane index so
/// programs can diverge in data.  OUT emits every lane's value in lane
/// order (a vector store to the output stream).
class ArrayProcessor {
 public:
  ArrayProcessor(Program program, ArrayProcessorConfig config);

  int lanes() const { return config_.lanes; }
  int banks() const { return static_cast<int>(banks_.size()); }
  const ArrayProcessorConfig& config() const { return config_; }

  Memory& bank(int index) { return banks_.at(static_cast<std::size_t>(index)); }
  const Memory& bank(int index) const {
    return banks_.at(static_cast<std::size_t>(index));
  }
  /// Registers of one lane (for assertions).
  const CoreState& lane_state(int lane) const {
    return lanes_.at(static_cast<std::size_t>(lane));
  }

  RunStats run(std::int64_t max_cycles = 1'000'000);
  void reset();

 private:
  Word load(int lane, Word address) const;
  void store(int lane, Word address, Word value);

  Program program_;
  ArrayProcessorConfig config_;
  std::vector<Memory> banks_;
  std::vector<CoreState> lanes_;  ///< register files; pc lives in ip_
  CoreState ip_;                  ///< shared control state (pc, halted)
};

}  // namespace mpct::sim
