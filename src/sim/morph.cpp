#include "sim/morph.hpp"

#include <sstream>

#include "sim/isa/assembler.hpp"
#include "sim/isa/uniprocessor.hpp"
#include "sim/memory.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/simd/array_processor.hpp"

namespace mpct::sim {

namespace {

using mpct::MachineType;
using mpct::ProcessingType;
using mpct::TaxonomicName;

std::string join(const std::vector<Word>& values) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ' ';
    os << values[i];
  }
  os << ']';
  return os.str();
}

/// lane-indexed affine kernel: every lane emits 3*lane + 7.
constexpr std::string_view kVectorKernel = R"(
  lane r1
  ldi  r2, 3
  mul  r3, r1, r2
  ldi  r4, 7
  add  r3, r3, r4
  out  r3
  halt
)";

/// scalar 6*7 by repeated addition.
constexpr std::string_view kScalarKernel = R"(
  ldi r1, 0
  ldi r2, 7
  ldi r3, 6
  ldi r4, 0
loop:
  beq r3, r4, done
  add r1, r1, r2
  addi r3, r3, -1
  jmp loop
done:
  out r1
  halt
)";

/// rotate-left register exchange across lanes: lane l emits 10*((l+1)%n).
constexpr std::string_view kShuffleKernel = R"(
  lane r1
  ldi  r2, 10
  mul  r3, r1, r2
  addi r4, r1, 1
  shuf r5, r3, r4
  out  r5
  halt
)";

}  // namespace

MorphDemo demo_imp_acts_as_iap(int lanes) {
  MorphDemo demo;
  demo.description =
      "IMP-I runs the array kernel with one program broadcast to every "
      "core and reproduces the IAP-I output stream";
  demo.from = {MachineType::InstructionFlow, ProcessingType::MultiProcessor,
               1};
  demo.to = {MachineType::InstructionFlow, ProcessingType::ArrayProcessor,
             1};

  const Program program = assemble_or_throw(kVectorKernel);

  ArrayProcessor iap(program,
                     ArrayProcessorConfig::for_subtype(1, lanes, 64));
  const RunStats iap_stats = iap.run();

  MultiprocessorConfig imp_config = MultiprocessorConfig::for_subtype(1);
  imp_config.cores = lanes;
  imp_config.bank_words = 64;
  Multiprocessor imp = Multiprocessor::broadcast(program, imp_config);
  const RunStats imp_stats = imp.run();

  demo.succeeded = iap_stats.output == imp_stats.output &&
                   iap_stats.halted && imp_stats.halted;
  demo.detail = "IAP output " + join(iap_stats.output) + ", IMP output " +
                join(imp_stats.output);
  return demo;
}

MorphDemo demo_iap_cannot_act_as_imp(int lanes) {
  MorphDemo demo;
  demo.description =
      "IAP-I cannot execute an n-different-programs workload: the single "
      "IP holds exactly one program, while an IMP-I runs it directly";
  demo.from = {MachineType::InstructionFlow, ProcessingType::ArrayProcessor,
               1};
  demo.to = {MachineType::InstructionFlow, ProcessingType::MultiProcessor,
             1};

  // Two genuinely different programs: adders and multipliers.
  const Program add_program = assemble_or_throw(R"(
    lane r1
    ldi  r2, 100
    add  r3, r1, r2
    out  r3
    halt
  )");
  const Program mul_program = assemble_or_throw(R"(
    lane r1
    ldi  r2, 100
    mul  r3, r1, r2
    out  r3
    halt
  )");

  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = lanes;
  config.bank_words = 64;
  std::vector<Program> programs;
  for (int c = 0; c < lanes; ++c) {
    programs.push_back(c % 2 == 0 ? add_program : mul_program);
  }
  Multiprocessor imp(std::move(programs), config);
  const RunStats imp_stats = imp.run();

  // The array processor's construction takes a single Program: there is
  // no way to even express the workload.  The morph fails structurally.
  demo.succeeded = false;
  demo.detail =
      "structural: ArrayProcessor(Program, ...) admits one instruction "
      "stream for all lanes; the IMP ran the mixed workload and emitted " +
      join(imp_stats.output);
  return demo;
}

MorphDemo demo_iap_acts_as_iup() {
  MorphDemo demo;
  const int lanes = 4;
  demo.description =
      "IAP-I acts as a uniprocessor by switching off every lane but lane "
      "0 (outputs filtered to lane 0) and matches the IUP";
  demo.from = {MachineType::InstructionFlow, ProcessingType::ArrayProcessor,
               1};
  demo.to = {MachineType::InstructionFlow, ProcessingType::UniProcessor, 0};

  const Program program = assemble_or_throw(kScalarKernel);

  Uniprocessor iup(program, 64);
  const RunStats iup_stats = iup.run();

  ArrayProcessor iap(program,
                     ArrayProcessorConfig::for_subtype(1, lanes, 64));
  const RunStats iap_stats = iap.run();
  // "Turn off the extra DPs": keep only lane 0's slice of each vector OUT.
  std::vector<Word> lane0;
  for (std::size_t i = 0; i < iap_stats.output.size();
       i += static_cast<std::size_t>(lanes)) {
    lane0.push_back(iap_stats.output[i]);
  }

  demo.succeeded =
      lane0 == iup_stats.output && iup_stats.halted && iap_stats.halted;
  demo.detail = "IUP output " + join(iup_stats.output) +
                ", IAP lane-0 output " + join(lane0);
  return demo;
}

MorphDemo demo_subtype_gates_shuffle(int lanes) {
  MorphDemo demo;
  demo.description =
      "SHUF needs the DP-DP crossbar: IAP-I traps, IAP-II executes the "
      "rotate-left exchange";
  demo.from = {MachineType::InstructionFlow, ProcessingType::ArrayProcessor,
               1};
  demo.to = {MachineType::InstructionFlow, ProcessingType::ArrayProcessor,
             2};

  const Program program = assemble_or_throw(kShuffleKernel);

  std::string trap;
  try {
    ArrayProcessor iap1(program,
                        ArrayProcessorConfig::for_subtype(1, lanes, 64));
    iap1.run();
    trap = "(no trap!)";
  } catch (const SimError& error) {
    trap = error.what();
  }

  ArrayProcessor iap2(program,
                      ArrayProcessorConfig::for_subtype(2, lanes, 64));
  const RunStats iap2_stats = iap2.run();

  demo.succeeded = false;  // the morph I -> II is impossible, as predicted
  demo.detail = "IAP-I trapped with: " + trap + "; IAP-II emitted " +
                join(iap2_stats.output);
  return demo;
}

std::vector<MorphDemo> all_morph_demos(int lanes) {
  return {
      demo_imp_acts_as_iap(lanes),
      demo_iap_cannot_act_as_imp(lanes),
      demo_iap_acts_as_iup(),
      demo_subtype_gates_shuffle(lanes),
  };
}

}  // namespace mpct::sim
