#include "sim/mimd/multiprocessor.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace mpct::sim {

MultiprocessorConfig MultiprocessorConfig::for_subtype(
    int subtype, int cores, std::size_t bank_words) {
  if (subtype < 1 || subtype > 16) {
    throw std::invalid_argument("IMP subtype must be 1..16");
  }
  MultiprocessorConfig config;
  config.cores = cores;
  config.bank_words = bank_words;
  const int bits = subtype - 1;
  config.dp_dm =
      (bits & 2) ? mpct::SwitchKind::Crossbar : mpct::SwitchKind::Direct;
  config.dp_dp =
      (bits & 1) ? mpct::SwitchKind::Crossbar : mpct::SwitchKind::None;
  return config;
}

Multiprocessor::Multiprocessor(std::vector<Program> programs,
                               MultiprocessorConfig config)
    : programs_(std::move(programs)), config_(config) {
  if (config_.cores < 1) {
    throw std::invalid_argument("Multiprocessor needs >= 1 core");
  }
  if (static_cast<int>(programs_.size()) != config_.cores) {
    throw std::invalid_argument(
        "Multiprocessor needs one program per core (got " +
        std::to_string(programs_.size()) + " for " +
        std::to_string(config_.cores) + " cores)");
  }
  banks_.reserve(static_cast<std::size_t>(config_.cores));
  for (int b = 0; b < config_.cores; ++b) {
    banks_.emplace_back("DM" + std::to_string(b), config_.bank_words);
  }
  cores_.resize(static_cast<std::size_t>(config_.cores));
  mailboxes_.resize(static_cast<std::size_t>(config_.cores));
}

Multiprocessor Multiprocessor::broadcast(const Program& program,
                                         MultiprocessorConfig config) {
  std::vector<Program> programs(static_cast<std::size_t>(config.cores),
                                program);
  return Multiprocessor(std::move(programs), config);
}

void Multiprocessor::reset() {
  for (CoreState& core : cores_) core = CoreState{};
  for (auto& mailbox : mailboxes_) mailbox.clear();
  deadlocked_ = false;
}

Word Multiprocessor::load(int core, Word address) const {
  if (config_.dp_dm == mpct::SwitchKind::Direct) {
    return banks_[static_cast<std::size_t>(core)].load(
        static_cast<std::size_t>(address));
  }
  const std::size_t bank =
      static_cast<std::size_t>(address) / config_.bank_words;
  if (address < 0 || bank >= banks_.size()) {
    throw SimError("IMP: global load out of range at " +
                   std::to_string(address));
  }
  return banks_[bank].load(static_cast<std::size_t>(address) %
                           config_.bank_words);
}

void Multiprocessor::store(int core, Word address, Word value) {
  if (config_.dp_dm == mpct::SwitchKind::Direct) {
    banks_[static_cast<std::size_t>(core)].store(
        static_cast<std::size_t>(address), value);
    return;
  }
  const std::size_t bank =
      static_cast<std::size_t>(address) / config_.bank_words;
  if (address < 0 || bank >= banks_.size()) {
    throw SimError("IMP: global store out of range at " +
                   std::to_string(address));
  }
  banks_[bank].store(static_cast<std::size_t>(address) % config_.bank_words,
                     value);
}

RunStats Multiprocessor::run(std::int64_t max_cycles) {
  RunStats stats;
  deadlocked_ = false;

  struct PendingSend {
    std::int64_t deliver_cycle;  ///< first cycle the message is readable
    int to;
    Word value;
  };
  // Manhattan distance between cores under the configured layout.
  const auto message_latency = [&](int from, int to) -> std::int64_t {
    if (!config_.pair_latency.empty()) {
      const std::size_t slot = static_cast<std::size_t>(from) *
                                   static_cast<std::size_t>(config_.cores) +
                               static_cast<std::size_t>(to);
      if (slot >= config_.pair_latency.size()) {
        throw SimError("IMP: pair_latency table smaller than cores^2");
      }
      const std::int64_t latency = config_.pair_latency[slot];
      if (latency < 0) {
        throw SimError("IMP: no surviving route from core " +
                       std::to_string(from) + " to core " +
                       std::to_string(to));
      }
      return std::max<std::int64_t>(1, latency);
    }
    if (config_.mesh_width <= 0) return 1;  // ideal crossbar
    const int w = config_.mesh_width;
    const int dx = std::abs(from % w - to % w);
    const int dy = std::abs(from / w - to / w);
    return std::max(1, dx + dy);
  };

  std::vector<PendingSend> in_flight;
  while (stats.cycles < max_cycles) {
    bool any_running = false;
    bool any_progress = false;
    std::vector<PendingSend> sends;  // issued this cycle

    for (int c = 0; c < config_.cores; ++c) {
      CoreState& core = cores_[static_cast<std::size_t>(c)];
      if (core.halted) continue;
      any_running = true;
      const Program& program = programs_[static_cast<std::size_t>(c)];
      const int size = static_cast<int>(program.size());
      if (core.pc < 0 || core.pc >= size) {
        throw SimError("IMP core " + std::to_string(c) +
                       ": pc out of program at " + std::to_string(core.pc));
      }
      const Instruction& inst =
          program[static_cast<std::size_t>(core.pc)];

      if (inst.op == Opcode::Recv) {
        auto& mailbox = mailboxes_[static_cast<std::size_t>(c)];
        if (mailbox.empty()) {
          core.blocked = true;
          continue;  // stall this cycle
        }
        core.blocked = false;
        core.set_reg(inst.rd, mailbox.front());
        mailbox.pop_front();
        ++core.pc;
        ++stats.instructions;
        any_progress = true;
        continue;
      }

      ++stats.instructions;
      any_progress = true;
      if (execute_common(core, inst, size)) continue;
      switch (inst.op) {
        case Opcode::Ld:
          core.set_reg(inst.rd, load(c, core.reg(inst.ra) + inst.imm));
          ++core.pc;
          break;
        case Opcode::St:
          store(c, core.reg(inst.ra) + inst.imm, core.reg(inst.rb));
          ++core.pc;
          break;
        case Opcode::Lane:
          core.set_reg(inst.rd, c);
          ++core.pc;
          break;
        case Opcode::Send: {
          if (config_.dp_dp != mpct::SwitchKind::Crossbar) {
            throw SimError(
                "this IMP sub-type has no DP-DP switch: SEND needs e.g. "
                "IMP-II or IMP-IV");
          }
          const Word target = core.reg(inst.rb);
          const int to = static_cast<int>(
              ((target % config_.cores) + config_.cores) % config_.cores);
          sends.push_back({stats.cycles + message_latency(c, to), to,
                           core.reg(inst.ra)});
          ++core.pc;
          break;
        }
        case Opcode::Out:
          stats.output.push_back(core.reg(inst.ra));
          ++core.pc;
          break;
        case Opcode::Shuf:
          throw SimError(
              "IMP cores are autonomous: lockstep SHUF is an array-"
              "processor operation; use SEND/RECV");
        default:
          throw SimError("IMP: unhandled opcode " +
                         std::string(mnemonic(inst.op)));
      }
    }

    if (!any_running) break;  // all halted
    ++stats.cycles;

    if (config_.dp_dp != mpct::SwitchKind::Crossbar && !sends.empty()) {
      throw SimError("internal: sends queued without DP-DP switch");
    }
    in_flight.insert(in_flight.end(), sends.begin(), sends.end());
    // Deliver everything that has finished its network traversal; FIFO
    // per sender order is preserved because latencies are per-pair
    // constants and the scan is stable.
    std::vector<PendingSend> still_flying;
    still_flying.reserve(in_flight.size());
    bool delivered_any = false;
    for (const PendingSend& message : in_flight) {
      if (message.deliver_cycle <= stats.cycles) {
        mailboxes_[static_cast<std::size_t>(message.to)].push_back(
            message.value);
        delivered_any = true;
      } else {
        still_flying.push_back(message);
      }
    }
    in_flight = std::move(still_flying);

    if (!any_progress && sends.empty() && in_flight.empty() &&
        !delivered_any) {
      // Every unhalted core is blocked on RECV, nothing is in flight and
      // nothing just landed that could unblock a core next cycle.
      deadlocked_ = true;
      break;
    }
  }

  stats.halted = true;
  for (const CoreState& core : cores_) {
    if (!core.halted) stats.halted = false;
  }
  return stats;
}

}  // namespace mpct::sim
