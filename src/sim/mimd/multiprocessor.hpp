#pragma once

#include <deque>
#include <vector>

#include "core/connectivity.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace mpct::sim {

/// Configuration of a multiprocessor (classes IMP-I..XVI restricted to
/// the data-side switches the ISA can exercise).
struct MultiprocessorConfig {
  int cores = 4;
  std::size_t bank_words = 256;
  /// Direct: core i owns bank i with local addressing (IMP-I style).
  /// Crossbar: one global address space over all banks — shared memory.
  mpct::SwitchKind dp_dm = mpct::SwitchKind::Direct;
  /// None: cores are isolated Von Neumann machines (SEND/RECV trap).
  /// Crossbar: message passing between any pair of cores.
  mpct::SwitchKind dp_dp = mpct::SwitchKind::None;
  /// Message latency model: 0 = ideal crossbar (messages arrive the
  /// next cycle); > 0 = cores laid out row-major on a mesh of this
  /// width, and a message takes max(1, manhattan distance) cycles —
  /// the REDEFINE-style NoC substrate without per-packet simulation.
  int mesh_width = 0;
  /// Explicit per-pair message latencies (cores x cores, row-major,
  /// entry [from * cores + to]).  When non-empty this overrides the
  /// mesh_width model — it is how a route-around mesh (dead routers or
  /// links, BFS detours) feeds back into the cycle count.  An entry < 0
  /// marks the pair unroutable: SEND to it raises SimError.
  std::vector<std::int64_t> pair_latency;

  /// Canonical data-side configuration of IMP-<subtype>: the DP-DM and
  /// DP-DP bits of the sub-type numeral (the IP-side switch bits do not
  /// change what the ISA can express and are ignored here).
  static MultiprocessorConfig for_subtype(int subtype, int cores = 4,
                                          std::size_t bank_words = 256);
};

/// Executable multiprocessor (instruction flow, n IPs, n DPs): every
/// core runs its *own* program — the capability that separates IMP from
/// IAP in the paper's flexibility argument.  Cores step round-robin
/// within a cycle (core 0 first), messages sent in a cycle are
/// deliverable from the next cycle, and RECV blocks until a message
/// arrives.  OUT is collected per (cycle, core) so the merged stream is
/// deterministic.
class Multiprocessor {
 public:
  Multiprocessor(std::vector<Program> programs, MultiprocessorConfig config);

  /// The morph of Section III-B: an IMP acting as an array processor by
  /// broadcasting one program to every core.
  static Multiprocessor broadcast(const Program& program,
                                  MultiprocessorConfig config);

  int cores() const { return config_.cores; }
  const MultiprocessorConfig& config() const { return config_; }

  Memory& bank(int index) { return banks_.at(static_cast<std::size_t>(index)); }
  const Memory& bank(int index) const {
    return banks_.at(static_cast<std::size_t>(index));
  }
  const CoreState& core_state(int core) const {
    return cores_.at(static_cast<std::size_t>(core));
  }

  /// Run until every core halts, deadlock (all runnable cores blocked on
  /// RECV), or max_cycles.  stats.halted is true only on full halt.
  RunStats run(std::int64_t max_cycles = 1'000'000);
  void reset();

  /// True if the last run() ended with every unhalted core blocked.
  bool deadlocked() const { return deadlocked_; }

 private:
  Word load(int core, Word address) const;
  void store(int core, Word address, Word value);

  std::vector<Program> programs_;
  MultiprocessorConfig config_;
  std::vector<Memory> banks_;
  std::vector<CoreState> cores_;
  std::vector<std::deque<Word>> mailboxes_;
  bool deadlocked_ = false;
};

}  // namespace mpct::sim
