#pragma once

#include <string>
#include <vector>

#include "core/naming.hpp"
#include "sim/isa/isa.hpp"
#include "sim/machine.hpp"

namespace mpct::sim {

/// Outcome of an executable morphing experiment: can a machine of class
/// `from` behave as a machine of class `to` on a concrete workload?
/// These demos back Section III-B's flexibility ordering with running
/// code instead of argument:
///  * IMP runs the IAP's single program on every core and reproduces the
///    array processor's output (IMP >= IAP).
///  * IAP cannot run a multi-program workload (attempt trips SimError).
///  * IAP acts as a uniprocessor by ignoring all lanes but lane 0
///    (IAP >= IUP); an IUP has no lanes to offer the converse.
struct MorphDemo {
  std::string description;
  mpct::TaxonomicName from;
  mpct::TaxonomicName to;
  bool succeeded = false;
  std::string detail;  ///< outputs compared, or the trap message
};

/// Run a fixed vector workload (element-wise a[i]*b[i] + lane constant)
/// on an IAP-I array processor and on an IMP-I multiprocessor with the
/// same program broadcast to every core; succeeds when the output
/// streams match.
MorphDemo demo_imp_acts_as_iap(int lanes);

/// Attempt an n-different-programs workload on an array processor by
/// construction: the IAP's single IP cannot even load n programs, so the
/// demo reports the structural failure (and runs the workload on an IMP
/// to show it is executable there).
MorphDemo demo_iap_cannot_act_as_imp(int lanes);

/// Run a scalar program on an IAP (using lane 0 only) and on an IUP;
/// succeeds when outputs agree — the "switch off the extra DPs" morph.
MorphDemo demo_iap_acts_as_iup();

/// SHUF on an IAP-I (no DP-DP switch) traps; the same program runs on an
/// IAP-II.  Demonstrates the sub-type flexibility step inside one family.
MorphDemo demo_subtype_gates_shuffle(int lanes);

/// All of the above, in presentation order.
std::vector<MorphDemo> all_morph_demos(int lanes = 4);

}  // namespace mpct::sim
