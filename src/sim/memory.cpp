#include "sim/memory.hpp"

namespace mpct::sim {

Memory::Memory(std::string name, std::size_t words)
    : name_(std::move(name)), data_(words, 0) {}

Word Memory::load(std::size_t address) const {
  if (address >= data_.size()) {
    throw SimError("memory '" + name_ + "': load out of range at " +
                   std::to_string(address) + " (size " +
                   std::to_string(data_.size()) + ")");
  }
  ++loads_;
  return data_[address];
}

void Memory::store(std::size_t address, Word value) {
  if (address >= data_.size()) {
    throw SimError("memory '" + name_ + "': store out of range at " +
                   std::to_string(address) + " (size " +
                   std::to_string(data_.size()) + ")");
  }
  ++stores_;
  data_[address] = value;
}

void Memory::fill(const std::vector<Word>& data) {
  for (std::size_t i = 0; i < data.size() && i < data_.size(); ++i) {
    data_[i] = data[i];
  }
}

void Memory::reset_counters() {
  loads_ = 0;
  stores_ = 0;
}

}  // namespace mpct::sim
