#include "sim/cgra/cgra.hpp"

#include <stdexcept>

#include "cost/switch_cost.hpp"
#include "sim/memory.hpp"

namespace mpct::sim::cgra {

Cgra::Cgra(CgraShape shape) : shape_(shape) {
  if (shape_.fus < 1 || shape_.contexts < 1 || shape_.primary_inputs < 0) {
    throw std::invalid_argument("Cgra: bad shape");
  }
  contexts_.assign(static_cast<std::size_t>(shape_.contexts),
                   std::vector<FuInstruction>(
                       static_cast<std::size_t>(shape_.fus)));
  latched_.assign(static_cast<std::size_t>(shape_.fus), 0);
}

void Cgra::program(int context, int fu, const FuInstruction& instruction) {
  if (context < 0 || context >= shape_.contexts) {
    throw SimError("Cgra: context index out of range");
  }
  if (fu < 0 || fu >= shape_.fus) {
    throw SimError("Cgra: fu index out of range");
  }
  if (instruction.active) {
    if (instruction.op == df::Op::Input ||
        instruction.op == df::Op::Output ||
        instruction.op == df::Op::Const) {
      // Constants travel as operands (Operand::Kind::Const); I/O lives
      // at the fabric boundary.
      throw SimError("Cgra: Input/Output/Const are not FU operators");
    }
    const int needed = df::arity(instruction.op);
    const Operand* operands[3] = {&instruction.a, &instruction.b,
                                  &instruction.c};
    for (int k = 0; k < needed; ++k) {
      const Operand& operand = *operands[k];
      switch (operand.kind) {
        case Operand::Kind::None:
          throw SimError("Cgra: operator needs " + std::to_string(needed) +
                         " operands");
        case Operand::Kind::Fu:
          if (operand.fu < 0 || operand.fu >= shape_.fus) {
            throw SimError("Cgra: operand references missing FU");
          }
          if (!shape_.reachable(operand.fu, fu)) {
            throw SimError("Cgra: FU " + std::to_string(operand.fu) +
                           " is outside FU " + std::to_string(fu) +
                           "'s interconnect window");
          }
          break;
        case Operand::Kind::Input:
          if (operand.input < 0 ||
              operand.input >= shape_.primary_inputs) {
            throw SimError("Cgra: bad primary input index");
          }
          break;
        case Operand::Kind::Const:
          break;
      }
    }
  }
  contexts_[static_cast<std::size_t>(context)]
           [static_cast<std::size_t>(fu)] = instruction;
}

void Cgra::clear() {
  for (auto& context : contexts_) {
    for (FuInstruction& slot : context) slot = FuInstruction{};
  }
  latched_.assign(latched_.size(), 0);
}

std::int64_t Cgra::config_bits() const {
  // Operator field over the dataflow algebra (16 ops fits in 4 bits,
  // computed to stay honest if ops are added).
  const int op_bits = cost::ceil_log2(16);
  const int source_bits =
      std::max(cost::ceil_log2(shape_.fus + 1),
               cost::ceil_log2(shape_.primary_inputs + 1));
  constexpr int kKindBits = 2;
  constexpr int kConstBits = 16;
  const int operand_bits =
      kKindBits + std::max(source_bits, kConstBits);
  const std::int64_t per_slot = 1 + op_bits + 3 * operand_bits;
  return per_slot * shape_.fus * shape_.contexts;
}

Word Cgra::read(const Operand& operand,
                const std::vector<Word>& primary_inputs) const {
  switch (operand.kind) {
    case Operand::Kind::None:
      return 0;
    case Operand::Kind::Const:
      return operand.constant;
    case Operand::Kind::Fu:
      return latched_[static_cast<std::size_t>(operand.fu)];
    case Operand::Kind::Input:
      return primary_inputs[static_cast<std::size_t>(operand.input)];
  }
  return 0;
}

RunStats Cgra::run(const std::vector<Word>& primary_inputs, int cycles) {
  if (static_cast<int>(primary_inputs.size()) != shape_.primary_inputs) {
    throw SimError("Cgra: expected " +
                   std::to_string(shape_.primary_inputs) +
                   " primary inputs, got " +
                   std::to_string(primary_inputs.size()));
  }
  if (cycles < 0) cycles = shape_.contexts;
  if (cycles > shape_.contexts) {
    throw SimError("Cgra: cannot run past the context depth in one pass");
  }

  RunStats stats;
  for (int c = 0; c < cycles; ++c) {
    const auto& context = contexts_[static_cast<std::size_t>(c)];
    std::vector<Word> next = latched_;
    for (int fu = 0; fu < shape_.fus; ++fu) {
      const FuInstruction& inst = context[static_cast<std::size_t>(fu)];
      if (!inst.active) continue;
      ++stats.instructions;
      std::vector<Word> operands;
      const int needed = df::arity(inst.op);
      const Operand* sources[3] = {&inst.a, &inst.b, &inst.c};
      operands.reserve(static_cast<std::size_t>(needed));
      for (int k = 0; k < needed; ++k) {
        operands.push_back(read(*sources[k], primary_inputs));
      }
      df::Node node;
      node.op = inst.op;
      next[static_cast<std::size_t>(fu)] = df::apply_op(node, operands);
    }
    latched_ = std::move(next);
    ++stats.cycles;
  }
  stats.halted = true;
  return stats;
}

Word Cgra::fu_value(int fu) const {
  if (fu < 0 || fu >= shape_.fus) {
    throw SimError("Cgra: fu index out of range");
  }
  return latched_[static_cast<std::size_t>(fu)];
}

}  // namespace mpct::sim::cgra
