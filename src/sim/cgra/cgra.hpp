#pragma once

#include <cstdint>
#include <vector>

#include "core/connectivity.hpp"
#include "sim/dataflow/graph.hpp"
#include "sim/machine.hpp"

namespace mpct::sim::cgra {

/// Where an FU operand comes from.
struct Operand {
  enum class Kind : std::uint8_t { None, Const, Fu, Input };
  Kind kind = Kind::None;
  Word constant = 0;  ///< Kind::Const
  int fu = 0;         ///< Kind::Fu — reads that FU's *latched* value
  int input = 0;      ///< Kind::Input — primary input index

  static Operand none() { return {}; }
  static Operand constant_of(Word value) {
    Operand op;
    op.kind = Kind::Const;
    op.constant = value;
    return op;
  }
  static Operand fu_of(int index) {
    Operand op;
    op.kind = Kind::Fu;
    op.fu = index;
    return op;
  }
  static Operand input_of(int index) {
    Operand op;
    op.kind = Kind::Input;
    op.input = index;
    return op;
  }
};

/// One functional unit's instruction in one context (one cycle slot of
/// the context memory).  The operator set reuses the dataflow algebra.
struct FuInstruction {
  bool active = false;
  df::Op op = df::Op::Add;
  Operand a, b, c;  ///< c only for Select
};

/// Shape of the fabric.
struct CgraShape {
  int fus = 8;           ///< functional units in a row
  int contexts = 16;     ///< context-memory depth (cycles per pass)
  int primary_inputs = 8;
  /// FU-to-FU reach: -1 = full crossbar; otherwise |src - dst| <= window
  /// (the DRRA/MorphoSys-style neighbourhood).
  int window = -1;

  bool reachable(int src_fu, int dst_fu) const {
    if (window < 0) return true;
    const int distance = src_fu >= dst_fu ? src_fu - dst_fu : dst_fu - src_fu;
    return distance <= window;
  }
};

/// A coarse-grained reconfigurable array in the style the paper surveys
/// (MorphoSys/Montium/ADRES): a row of word-level FUs driven by context
/// memory — one VLIW-like configuration word per FU per cycle — over a
/// configurable FU-to-FU interconnect.
///
/// Execution is synchronous: in cycle c every active FU of context c
/// reads its operands (latched FU outputs from earlier cycles, primary
/// inputs, or constants), computes, and latches its result at the end of
/// the cycle.  A latched value persists until the same FU computes
/// again, which is what makes purely spatial mappings (one node per FU)
/// correct.
class Cgra {
 public:
  explicit Cgra(CgraShape shape);

  const CgraShape& shape() const { return shape_; }

  /// Program one context slot.  Throws SimError on bad indices, on an
  /// operand whose producer FU is out of interconnect reach, or on an
  /// operator that needs more operands than provided.
  void program(int context, int fu, const FuInstruction& instruction);

  /// Clear all contexts and latched state.
  void clear();

  /// Measured configuration size in bits: per context slot one active
  /// bit, an operator field, and per operand a kind field plus the
  /// widest source field (constants are stored in a 16-bit immediate).
  std::int64_t config_bits() const;

  /// Execute contexts 0..cycles-1 once (cycles defaults to the full
  /// context depth); primary inputs are held stable for the pass.
  /// Returns stats (instructions = active FU executions).
  RunStats run(const std::vector<Word>& primary_inputs, int cycles = -1);

  /// Latched output of an FU (after run).
  Word fu_value(int fu) const;

 private:
  Word read(const Operand& operand,
            const std::vector<Word>& primary_inputs) const;

  CgraShape shape_;
  /// contexts_[cycle][fu].
  std::vector<std::vector<FuInstruction>> contexts_;
  std::vector<Word> latched_;
};

}  // namespace mpct::sim::cgra
