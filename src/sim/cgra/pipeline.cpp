#include "sim/cgra/pipeline.hpp"

#include <algorithm>

#include "sim/memory.hpp"

namespace mpct::sim::cgra {

namespace {

bool is_compute(df::Op op) {
  return op != df::Op::Input && op != df::Op::Const && op != df::Op::Output;
}

}  // namespace

PipelineSchedule map_graph_pipelined(const df::Graph& graph, Cgra& cgra) {
  const std::vector<std::string> problems = graph.validate();
  if (!problems.empty()) {
    throw SimError("map_graph_pipelined: graph invalid: " +
                   problems.front());
  }
  const auto order = graph.topological_order();

  PipelineSchedule schedule;
  for (df::NodeId id : graph.input_nodes()) {
    const int index = static_cast<int>(schedule.input_index.size());
    if (index >= cgra.shape().primary_inputs) {
      throw SimError("map_graph_pipelined: too few primary inputs");
    }
    schedule.input_index[graph.node(id).name] = index;
  }

  cgra.clear();
  int next_fu = 0;
  const auto allocate_fu = [&] {
    if (next_fu >= cgra.shape().fus) {
      throw SimError(
          "map_graph_pipelined: fabric has too few FUs for the retimed "
          "pipeline");
    }
    ++schedule.fus_used;
    return next_fu++;
  };

  const int n = graph.node_count();
  // Pipeline level per compute node (inputs are level 0).
  std::vector<int> level(static_cast<std::size_t>(n), 0);
  std::vector<int> fu(static_cast<std::size_t>(n), -1);

  // (node, level) -> operand carrying that node's value for consumers at
  // level + 1; pass-through FUs are created on demand.
  std::map<std::pair<df::NodeId, int>, Operand> carried;
  // Recursive delay-chain builder (iterative by level).
  const auto operand_at = [&](df::NodeId u, int at_level) -> Operand {
    const df::Node& node = graph.node(u);
    const int base_level = node.op == df::Op::Input ? 0 : level[static_cast<std::size_t>(u)];
    Operand base = node.op == df::Op::Input
                       ? Operand::input_of(schedule.input_index.at(node.name))
                       : Operand::fu_of(fu[static_cast<std::size_t>(u)]);
    if (at_level <= base_level) return base;
    // Build/reuse the chain base_level+1 .. at_level.
    Operand previous = base;
    for (int l = base_level + 1; l <= at_level; ++l) {
      const auto key = std::make_pair(u, l);
      const auto it = carried.find(key);
      if (it != carried.end()) {
        previous = it->second;
        continue;
      }
      const int pass_fu = allocate_fu();
      ++schedule.pass_fus;
      FuInstruction pass;
      pass.active = true;
      pass.op = df::Op::Or;  // x | x == x: a pure register stage
      pass.a = previous;
      pass.b = previous;
      cgra.program(0, pass_fu, pass);
      previous = Operand::fu_of(pass_fu);
      carried.emplace(key, previous);
    }
    return previous;
  };

  for (df::NodeId id : *order) {
    const df::Node& node = graph.node(id);
    if (!is_compute(node.op)) continue;

    int lvl = 1;
    for (df::NodeId producer : node.inputs) {
      const df::Node& p = graph.node(producer);
      if (p.op == df::Op::Const) continue;
      const int producer_level =
          p.op == df::Op::Input ? 0 : level[static_cast<std::size_t>(producer)];
      lvl = std::max(lvl, producer_level + 1);
    }
    level[static_cast<std::size_t>(id)] = lvl;
    fu[static_cast<std::size_t>(id)] = allocate_fu();

    FuInstruction inst;
    inst.active = true;
    inst.op = node.op;
    Operand* slots[3] = {&inst.a, &inst.b, &inst.c};
    for (std::size_t k = 0; k < node.inputs.size() && k < 3; ++k) {
      const df::NodeId producer = node.inputs[k];
      const df::Node& p = graph.node(producer);
      if (p.op == df::Op::Const) {
        *slots[k] = Operand::constant_of(p.imm);
      } else {
        *slots[k] = operand_at(producer, lvl - 1);
      }
    }
    cgra.program(0, fu[static_cast<std::size_t>(id)], inst);
  }

  // All outputs are padded to the same depth so a complete result
  // emerges once per cycle.
  int depth = 1;
  for (df::NodeId id : graph.output_nodes()) {
    const df::NodeId source = graph.node(id).inputs[0];
    if (fu[static_cast<std::size_t>(source)] < 0) {
      throw SimError("map_graph_pipelined: output '" + graph.node(id).name +
                     "' is fed directly by an input/constant");
    }
    depth = std::max(depth, level[static_cast<std::size_t>(source)]);
  }
  schedule.depth = depth;
  for (df::NodeId id : graph.output_nodes()) {
    const df::NodeId source = graph.node(id).inputs[0];
    const Operand at_depth = operand_at(source, depth);
    schedule.output_fu.emplace_back(graph.node(id).name, at_depth.fu);
  }
  return schedule;
}

std::vector<std::vector<Word>> run_stream(
    Cgra& cgra, const PipelineSchedule& schedule,
    const std::vector<std::vector<std::pair<std::string, Word>>>& samples) {
  const int sample_count = static_cast<int>(samples.size());
  std::vector<std::vector<Word>> results(
      static_cast<std::size_t>(sample_count));

  const int total_cycles = sample_count + schedule.depth - 1;
  for (int cycle = 0; cycle < total_cycles; ++cycle) {
    std::vector<Word> primary(
        static_cast<std::size_t>(cgra.shape().primary_inputs), 0);
    if (cycle < sample_count) {
      for (const auto& [name, value] :
           samples[static_cast<std::size_t>(cycle)]) {
        const auto it = schedule.input_index.find(name);
        if (it == schedule.input_index.end()) {
          throw SimError("run_stream: unknown input '" + name + "'");
        }
        primary[static_cast<std::size_t>(it->second)] = value;
      }
    }
    cgra.run(primary, 1);

    const int ready_sample = cycle - schedule.depth + 1;
    if (ready_sample >= 0 && ready_sample < sample_count) {
      std::vector<Word>& out =
          results[static_cast<std::size_t>(ready_sample)];
      out.reserve(schedule.output_fu.size());
      for (const auto& [name, fu] : schedule.output_fu) {
        out.push_back(cgra.fu_value(fu));
      }
    }
  }
  return results;
}

}  // namespace mpct::sim::cgra
