#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/cgra/cgra.hpp"
#include "sim/dataflow/graph.hpp"

namespace mpct::sim::cgra {

/// A fully pipelined (initiation interval 1) mapping — the PipeRench
/// execution model: one new input sample enters the fabric every cycle
/// and one result leaves every cycle after a fill latency of `depth`
/// cycles.
struct PipelineSchedule {
  std::map<std::string, int> input_index;
  /// (output name, FU) in graph output order.
  std::vector<std::pair<std::string, int>> output_fu;
  int depth = 0;     ///< pipeline latency (levels)
  int fus_used = 0;  ///< compute FUs + inserted delay FUs
  int pass_fus = 0;  ///< delay (pass-through) FUs inserted by retiming
};

/// Map @p graph for II = 1 streaming.  Every compute node is placed at
/// pipeline level 1 + max(producer levels); any operand arriving from
/// more than one level up (including primary inputs consumed deep in
/// the pipe) is carried through inserted pass-through FUs so that every
/// edge spans exactly one level — the retiming a real pipelined CGRA's
/// register chains perform.  The whole schedule lives in context 0, all
/// FUs firing every cycle.
///
/// Throws SimError when the fabric lacks FUs/inputs, when the graph is
/// invalid, or when an output is fed directly by an input/constant.
PipelineSchedule map_graph_pipelined(const df::Graph& graph, Cgra& cgra);

/// Stream @p samples through a pipelined mapping: sample s enters at
/// cycle s, its outputs emerge at cycle s + depth.  Returns one output
/// vector per sample (graph output order).  The fabric keeps running on
/// zero-inputs during the drain phase.
std::vector<std::vector<Word>> run_stream(
    Cgra& cgra, const PipelineSchedule& schedule,
    const std::vector<std::vector<std::pair<std::string, Word>>>& samples);

}  // namespace mpct::sim::cgra
