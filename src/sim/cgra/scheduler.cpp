#include "sim/cgra/scheduler.hpp"

#include <algorithm>

#include "sim/memory.hpp"

namespace mpct::sim::cgra {

namespace {

bool is_compute(df::Op op) {
  return op != df::Op::Input && op != df::Op::Const && op != df::Op::Output;
}

}  // namespace

Schedule map_graph(const df::Graph& graph, Cgra& cgra) {
  const std::vector<std::string> problems = graph.validate();
  if (!problems.empty()) {
    throw SimError("map_graph: graph invalid: " + problems.front());
  }
  const auto order = graph.topological_order();

  Schedule schedule;
  const int n = graph.node_count();
  schedule.node_fu.assign(static_cast<std::size_t>(n), -1);
  schedule.node_cycle.assign(static_cast<std::size_t>(n), -1);

  // Bind primary inputs.
  for (df::NodeId id : graph.input_nodes()) {
    const int index = static_cast<int>(schedule.input_index.size());
    if (index >= cgra.shape().primary_inputs) {
      throw SimError("map_graph: fabric has too few primary inputs");
    }
    schedule.input_index[graph.node(id).name] = index;
  }

  cgra.clear();
  std::vector<bool> fu_taken(static_cast<std::size_t>(cgra.shape().fus),
                             false);

  // The operand feeding a given producer node, for a consumer placed on
  // @p consumer_fu (used only for reachability checks by program()).
  const auto operand_of = [&](df::NodeId producer) -> Operand {
    const df::Node& node = graph.node(producer);
    switch (node.op) {
      case df::Op::Const:
        return Operand::constant_of(node.imm);
      case df::Op::Input:
        return Operand::input_of(schedule.input_index.at(node.name));
      default:
        return Operand::fu_of(
            schedule.node_fu[static_cast<std::size_t>(producer)]);
    }
  };

  for (df::NodeId id : *order) {
    const df::Node& node = graph.node(id);
    if (!is_compute(node.op)) continue;

    // Cycle: one after the last *computed* producer (inputs/constants
    // are available from cycle 0).
    int cycle = 0;
    for (df::NodeId producer : node.inputs) {
      const int producer_cycle =
          schedule.node_cycle[static_cast<std::size_t>(producer)];
      cycle = std::max(cycle, producer_cycle + 1);
    }
    if (cycle >= cgra.shape().contexts) {
      throw SimError("map_graph: graph depth " + std::to_string(cycle + 1) +
                     " exceeds the fabric's context memory (" +
                     std::to_string(cgra.shape().contexts) + ")");
    }

    // FU: first free unit reachable from every producer FU.
    int chosen = -1;
    for (int fu = 0; fu < cgra.shape().fus && chosen < 0; ++fu) {
      if (fu_taken[static_cast<std::size_t>(fu)]) continue;
      bool reaches = true;
      for (df::NodeId producer : node.inputs) {
        const int producer_fu =
            schedule.node_fu[static_cast<std::size_t>(producer)];
        if (producer_fu >= 0 &&
            !cgra.shape().reachable(producer_fu, fu)) {
          reaches = false;
          break;
        }
      }
      if (reaches) chosen = fu;
    }
    if (chosen < 0) {
      throw SimError(
          "map_graph: no free FU reachable from all producers (fabric "
          "too small or window too narrow)");
    }
    fu_taken[static_cast<std::size_t>(chosen)] = true;
    schedule.node_fu[static_cast<std::size_t>(id)] = chosen;
    schedule.node_cycle[static_cast<std::size_t>(id)] = cycle;
    schedule.depth = std::max(schedule.depth, cycle + 1);
    ++schedule.fus_used;

    FuInstruction instruction;
    instruction.active = true;
    instruction.op = node.op;
    Operand* slots[3] = {&instruction.a, &instruction.b, &instruction.c};
    for (std::size_t k = 0; k < node.inputs.size() && k < 3; ++k) {
      *slots[k] = operand_of(node.inputs[k]);
    }
    cgra.program(cycle, chosen, instruction);
  }

  // Bind outputs to the FU (or constant/input passthrough is not
  // supported: an Output fed directly by an Input/Const has no FU).
  for (df::NodeId id : graph.output_nodes()) {
    const df::NodeId source = graph.node(id).inputs[0];
    const int fu = schedule.node_fu[static_cast<std::size_t>(source)];
    if (fu < 0) {
      throw SimError(
          "map_graph: output '" + graph.node(id).name +
          "' is fed directly by an input/constant; insert a compute node");
    }
    schedule.output_fu.emplace_back(graph.node(id).name, fu);
  }
  return schedule;
}

std::vector<std::pair<std::string, Word>> run_mapped(
    Cgra& cgra, const Schedule& schedule,
    const std::vector<std::pair<std::string, Word>>& inputs) {
  std::vector<Word> primary(
      static_cast<std::size_t>(cgra.shape().primary_inputs), 0);
  for (const auto& [name, value] : inputs) {
    const auto it = schedule.input_index.find(name);
    if (it == schedule.input_index.end()) {
      throw SimError("run_mapped: unknown input '" + name + "'");
    }
    primary[static_cast<std::size_t>(it->second)] = value;
  }
  cgra.run(primary, schedule.depth);
  std::vector<std::pair<std::string, Word>> outputs;
  outputs.reserve(schedule.output_fu.size());
  for (const auto& [name, fu] : schedule.output_fu) {
    outputs.emplace_back(name, cgra.fu_value(fu));
  }
  return outputs;
}

}  // namespace mpct::sim::cgra
