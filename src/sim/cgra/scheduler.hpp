#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/cgra/cgra.hpp"
#include "sim/dataflow/graph.hpp"

namespace mpct::sim::cgra {

/// Result of mapping a dataflow graph onto a CGRA: the fully spatial
/// schedule (one FU per compute node, one context per dependence level)
/// plus the boundary bindings needed to run it.
struct Schedule {
  /// Graph node -> FU (-1 for Input/Const/Output nodes, which map to
  /// operands / boundary reads instead of FU slots).
  std::vector<int> node_fu;
  /// Graph node -> context cycle it executes in (-1 as above).
  std::vector<int> node_cycle;
  /// Input name -> primary input index.
  std::map<std::string, int> input_index;
  /// (output name, FU holding the result after the pass), in the
  /// graph's output-node order.
  std::vector<std::pair<std::string, int>> output_fu;
  int depth = 0;      ///< contexts used (critical-path length)
  int fus_used = 0;   ///< FUs consumed by the spatial mapping
};

/// Spatially map @p graph onto @p cgra (which is cleared and
/// reprogrammed):
///  * every compute node gets its own FU — values stay latched for all
///    consumers, so the mapping is correct by construction;
///  * a node executes one cycle after its last producer (list
///    scheduling over the topological order);
///  * Const and Input nodes fold into consumer operands;
///  * with a windowed interconnect, each node greedily takes the first
///    free FU reachable from all of its producers' FUs.
/// Throws SimError when the fabric lacks FUs, contexts, primary inputs,
/// or (windowed) reachable placements.
Schedule map_graph(const df::Graph& graph, Cgra& cgra);

/// Run a mapped graph: binds named inputs, executes one pass of
/// schedule.depth cycles, returns outputs by name in output-node order.
std::vector<std::pair<std::string, Word>> run_mapped(
    Cgra& cgra, const Schedule& schedule,
    const std::vector<std::pair<std::string, Word>>& inputs);

}  // namespace mpct::sim::cgra
