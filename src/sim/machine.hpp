#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/isa/isa.hpp"
#include "sim/word.hpp"

namespace mpct::sim {

/// Aggregate result of running any paradigm machine.
struct RunStats {
  std::int64_t cycles = 0;        ///< machine cycles simulated
  std::int64_t instructions = 0;  ///< instructions (or tokens) executed
  bool halted = false;            ///< every processor reached halt
  std::vector<Word> output;       ///< values emitted via OUT, in order
};

/// Architected state of one data processor (register file + program
/// counter); shared by the uniprocessor, the array-processor lanes and
/// the multiprocessor cores.
struct CoreState {
  std::array<Word, kRegisterCount> regs{};
  int pc = 0;
  bool halted = false;
  bool blocked = false;  ///< waiting on RECV

  Word reg(int index) const { return regs[static_cast<std::size_t>(index)]; }
  void set_reg(int index, Word value) {
    regs[static_cast<std::size_t>(index)] = value;
  }
};

/// Execute the control/ALU subset every machine shares (NOP, HALT, LDI,
/// MOV, ALU ops, ADDI, branches, JMP) against @p core, advancing the pc.
/// Returns false for the opcodes the caller must handle (LD, ST, SHUF,
/// SEND, RECV, OUT, LANE), leaving the pc untouched.
/// Throws SimError on branch targets outside [0, program_size].
bool execute_common(CoreState& core, const Instruction& inst,
                    int program_size);

}  // namespace mpct::sim
