#pragma once

#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace mpct::sim {

/// Instruction-flow uni-processor (class IUP, Table I row 6): one IP
/// fetching from one IM, one DP with a direct path to one DM.
///
/// The IM is the loaded program; the DM is a word-addressed bank.  One
/// instruction executes per cycle.  The communication opcodes (SHUF,
/// SEND, RECV) trap with SimError — a uniprocessor has no DP-DP switch,
/// which is precisely why IUP scores flexibility 0.
class Uniprocessor {
 public:
  Uniprocessor(Program program, std::size_t dm_words);

  Memory& dm() { return dm_; }
  const Memory& dm() const { return dm_; }
  const CoreState& core() const { return core_; }
  const Program& program() const { return program_; }

  /// Run until HALT or @p max_cycles; re-running continues from the
  /// current state.
  RunStats run(std::int64_t max_cycles = 1'000'000);

  /// Reset pc/registers/halt flag (memory contents are preserved).
  void reset();

 private:
  Program program_;
  Memory dm_;
  CoreState core_;
};

}  // namespace mpct::sim
