#include "sim/isa/assembler.hpp"

#include <cctype>
#include <optional>

#include "sim/memory.hpp"

namespace mpct::sim {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Split an operand list on commas.
std::vector<std::string> split_operands(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view piece =
        comma == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, comma - start);
    const std::string_view trimmed = trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

struct PendingBranch {
  std::size_t instruction;  ///< index into the program
  std::string label;
  int line;
};

}  // namespace

AssemblyResult assemble(std::string_view source) {
  AssemblyResult result;
  std::vector<PendingBranch> pending;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view raw =
        eol == std::string_view::npos ? source.substr(pos)
                                      : source.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments.
    const std::size_t comment = raw.find_first_of(";#");
    if (comment != std::string_view::npos) raw = raw.substr(0, comment);
    std::string_view line = trim(raw);
    if (line.empty()) continue;

    // Labels (possibly several, possibly followed by an instruction).
    while (true) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string label = lower(trim(line.substr(0, colon)));
      if (label.empty() ||
          !std::isalpha(static_cast<unsigned char>(label[0]))) {
        result.errors.push_back({line_no, "bad label '" + label + "'"});
        break;
      }
      if (result.labels.count(label)) {
        result.errors.push_back({line_no, "duplicate label '" + label + "'"});
      }
      result.labels[label] = static_cast<int>(result.program.size());
      line = trim(line.substr(colon + 1));
    }
    if (line.empty()) continue;

    // Mnemonic and operands.
    std::size_t space = line.find_first_of(" \t");
    const std::string mnem =
        lower(space == std::string_view::npos ? line : line.substr(0, space));
    const std::optional<Opcode> op = opcode_from_mnemonic(mnem);
    if (!op) {
      result.errors.push_back({line_no, "unknown mnemonic '" + mnem + "'"});
      continue;
    }
    const std::vector<std::string> operands = split_operands(
        space == std::string_view::npos ? std::string_view{}
                                        : line.substr(space + 1));

    const auto reg = [&](const std::string& token) -> std::optional<int> {
      const std::string t = lower(token);
      if (t.size() < 2 || t[0] != 'r') return std::nullopt;
      int value = 0;
      for (std::size_t i = 1; i < t.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
          return std::nullopt;
        }
        value = value * 10 + (t[i] - '0');
      }
      if (value >= kRegisterCount) return std::nullopt;
      return value;
    };
    const auto imm = [&](const std::string& token) -> std::optional<Word> {
      if (token.empty()) return std::nullopt;
      std::size_t i = token[0] == '-' ? 1 : 0;
      if (i == token.size()) return std::nullopt;
      Word value = 0;
      for (; i < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
          return std::nullopt;
        }
        value = value * 10 + (token[i] - '0');
      }
      return token[0] == '-' ? -value : value;
    };

    Instruction inst;
    inst.op = *op;
    bool ok = true;
    const auto need = [&](std::size_t count) {
      if (operands.size() != count) {
        result.errors.push_back(
            {line_no, mnem + " expects " + std::to_string(count) +
                          " operand(s), got " +
                          std::to_string(operands.size())});
        ok = false;
        return false;
      }
      return true;
    };
    const auto take_reg = [&](const std::string& token, std::uint8_t& out) {
      const std::optional<int> r = reg(token);
      if (!r) {
        result.errors.push_back({line_no, "bad register '" + token + "'"});
        ok = false;
        return;
      }
      out = static_cast<std::uint8_t>(*r);
    };
    const auto take_target = [&](const std::string& token) {
      if (const std::optional<Word> value = imm(token)) {
        inst.imm = *value;
        return;
      }
      pending.push_back(
          {result.program.size(), lower(token), line_no});
    };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        need(0);
        break;
      case Opcode::Ldi:
        if (need(2)) {
          take_reg(operands[0], inst.rd);
          if (const auto value = imm(operands[1])) {
            inst.imm = *value;
          } else {
            result.errors.push_back(
                {line_no, "bad immediate '" + operands[1] + "'"});
            ok = false;
          }
        }
        break;
      case Opcode::Mov:
        if (need(2)) {
          take_reg(operands[0], inst.rd);
          take_reg(operands[1], inst.ra);
        }
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divs:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Shuf:
        if (need(3)) {
          take_reg(operands[0], inst.rd);
          take_reg(operands[1], inst.ra);
          take_reg(operands[2], inst.rb);
        }
        break;
      case Opcode::Addi:
      case Opcode::Ld:
        if (need(3)) {
          take_reg(operands[0], inst.rd);
          take_reg(operands[1], inst.ra);
          if (const auto value = imm(operands[2])) {
            inst.imm = *value;
          } else {
            result.errors.push_back(
                {line_no, "bad immediate '" + operands[2] + "'"});
            ok = false;
          }
        }
        break;
      case Opcode::St:
        if (need(3)) {
          take_reg(operands[0], inst.ra);  // address base
          take_reg(operands[1], inst.rb);  // value
          if (const auto value = imm(operands[2])) {
            inst.imm = *value;
          } else {
            result.errors.push_back(
                {line_no, "bad immediate '" + operands[2] + "'"});
            ok = false;
          }
        }
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
        if (need(3)) {
          take_reg(operands[0], inst.ra);
          take_reg(operands[1], inst.rb);
          take_target(operands[2]);
        }
        break;
      case Opcode::Jmp:
        if (need(1)) take_target(operands[0]);
        break;
      case Opcode::Lane:
      case Opcode::Recv:
        if (need(1)) take_reg(operands[0], inst.rd);
        break;
      case Opcode::Send:
        if (need(2)) {
          take_reg(operands[0], inst.ra);
          take_reg(operands[1], inst.rb);
        }
        break;
      case Opcode::Out:
        if (need(1)) take_reg(operands[0], inst.ra);
        break;
    }
    if (ok) {
      result.program.push_back(inst);
    } else {
      // Drop label fixups recorded for this discarded instruction, or a
      // later instruction at the same index would be mispatched.
      while (!pending.empty() &&
             pending.back().instruction == result.program.size()) {
        pending.pop_back();
      }
    }
  }

  // Resolve label references.
  for (const PendingBranch& branch : pending) {
    const auto it = result.labels.find(branch.label);
    if (it == result.labels.end()) {
      result.errors.push_back(
          {branch.line, "undefined label '" + branch.label + "'"});
      continue;
    }
    if (branch.instruction < result.program.size()) {
      result.program[branch.instruction].imm = it->second;
    }
  }
  return result;
}

Program assemble_or_throw(std::string_view source) {
  AssemblyResult result = assemble(source);
  if (!result.ok()) {
    std::string message = "assembly failed:";
    for (const AsmError& error : result.errors) {
      message += "\n  " + error.to_string();
    }
    throw SimError(message);
  }
  return std::move(result.program);
}

}  // namespace mpct::sim
