#include "sim/isa/uniprocessor.hpp"

namespace mpct::sim {

Uniprocessor::Uniprocessor(Program program, std::size_t dm_words)
    : program_(std::move(program)), dm_("DM", dm_words) {}

void Uniprocessor::reset() { core_ = CoreState{}; }

RunStats Uniprocessor::run(std::int64_t max_cycles) {
  RunStats stats;
  const int size = static_cast<int>(program_.size());
  while (!core_.halted && stats.cycles < max_cycles) {
    if (core_.pc < 0 || core_.pc >= size) {
      throw SimError("IUP: pc out of program at " + std::to_string(core_.pc));
    }
    const Instruction& inst = program_[static_cast<std::size_t>(core_.pc)];
    ++stats.cycles;
    ++stats.instructions;
    if (execute_common(core_, inst, size)) continue;
    switch (inst.op) {
      case Opcode::Ld:
        core_.set_reg(inst.rd, dm_.load(static_cast<std::size_t>(
                                   core_.reg(inst.ra) + inst.imm)));
        ++core_.pc;
        break;
      case Opcode::St:
        dm_.store(static_cast<std::size_t>(core_.reg(inst.ra) + inst.imm),
                  core_.reg(inst.rb));
        ++core_.pc;
        break;
      case Opcode::Lane:
        core_.set_reg(inst.rd, 0);
        ++core_.pc;
        break;
      case Opcode::Out:
        stats.output.push_back(core_.reg(inst.ra));
        ++core_.pc;
        break;
      case Opcode::Shuf:
        throw SimError(
            "IUP has no DP-DP switch: SHUF is not executable on this class");
      case Opcode::Send:
      case Opcode::Recv:
        throw SimError(
            "IUP has no DP-DP switch: SEND/RECV are not executable on this "
            "class");
      default:
        throw SimError("IUP: unhandled opcode " +
                       std::string(mnemonic(inst.op)));
    }
  }
  stats.halted = core_.halted;
  return stats;
}

}  // namespace mpct::sim
