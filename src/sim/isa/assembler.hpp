#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/isa/isa.hpp"

namespace mpct::sim {

/// Assembler diagnostic.
struct AsmError {
  int line = 0;
  std::string message;
  std::string to_string() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

/// Result of assembling a source text.
struct AssemblyResult {
  Program program;
  std::map<std::string, int> labels;  ///< label -> instruction index
  std::vector<AsmError> errors;

  bool ok() const { return errors.empty(); }
};

/// Two-pass assembler for the simulator ISA.
///
/// Syntax, one statement per line:
///   ; or # start a comment
///   label:                 (may share a line with an instruction)
///   ldi  r1, 42
///   add  r2, r1, r1
///   addi r2, r1, -3
///   ld   r3, r1, 4         ; r3 = DM[r1 + 4]
///   st   r1, r2, 0         ; DM[r1 + 0] = r2
///   beq  r1, r2, done      ; branch targets are labels or integers
///   jmp  loop
///   lane r5
///   shuf r6, r2, r5        ; r6 = lane[r5].r2
///   send r2, r5            ; to core r5
///   recv r7
///   out  r7
///   halt
AssemblyResult assemble(std::string_view source);

/// Assemble and throw SimError on any diagnostic — for tests/examples
/// with known-good sources.
Program assemble_or_throw(std::string_view source);

}  // namespace mpct::sim
