#include "sim/isa/isa.hpp"

#include <sstream>

#include "sim/memory.hpp"

namespace mpct::sim {

namespace {

struct MnemonicEntry {
  Opcode op;
  std::string_view text;
};

constexpr std::array<MnemonicEntry, 26> kMnemonics{{
    {Opcode::Nop, "nop"},   {Opcode::Halt, "halt"}, {Opcode::Ldi, "ldi"},
    {Opcode::Mov, "mov"},   {Opcode::Add, "add"},   {Opcode::Sub, "sub"},
    {Opcode::Mul, "mul"},   {Opcode::Divs, "divs"}, {Opcode::And, "and"},
    {Opcode::Or, "or"},     {Opcode::Xor, "xor"},   {Opcode::Shl, "shl"},
    {Opcode::Shr, "shr"},   {Opcode::Addi, "addi"}, {Opcode::Ld, "ld"},
    {Opcode::St, "st"},     {Opcode::Beq, "beq"},   {Opcode::Bne, "bne"},
    {Opcode::Blt, "blt"},   {Opcode::Jmp, "jmp"},   {Opcode::Lane, "lane"},
    {Opcode::Shuf, "shuf"}, {Opcode::Send, "send"}, {Opcode::Recv, "recv"},
    {Opcode::Out, "out"},   {Opcode::Nop, "nop"},
}};

}  // namespace

std::string_view mnemonic(Opcode op) {
  for (const MnemonicEntry& entry : kMnemonics) {
    if (entry.op == op) return entry.text;
  }
  return "?";
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view text) {
  for (const MnemonicEntry& entry : kMnemonics) {
    if (entry.text == text) return entry.op;
  }
  return std::nullopt;
}

std::string to_string(const Instruction& inst) {
  std::ostringstream os;
  os << mnemonic(inst.op);
  const auto r = [](int index) { return "r" + std::to_string(index); };
  switch (inst.op) {
    case Opcode::Nop:
    case Opcode::Halt:
      break;
    case Opcode::Ldi:
      os << ' ' << r(inst.rd) << ", " << inst.imm;
      break;
    case Opcode::Mov:
      os << ' ' << r(inst.rd) << ", " << r(inst.ra);
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Divs:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Shuf:
      os << ' ' << r(inst.rd) << ", " << r(inst.ra) << ", " << r(inst.rb);
      break;
    case Opcode::Addi:
      os << ' ' << r(inst.rd) << ", " << r(inst.ra) << ", " << inst.imm;
      break;
    case Opcode::Ld:
      os << ' ' << r(inst.rd) << ", [" << r(inst.ra) << '+' << inst.imm
         << ']';
      break;
    case Opcode::St:
      os << " [" << r(inst.ra) << '+' << inst.imm << "], " << r(inst.rb);
      break;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
      os << ' ' << r(inst.ra) << ", " << r(inst.rb) << ", @" << inst.imm;
      break;
    case Opcode::Jmp:
      os << " @" << inst.imm;
      break;
    case Opcode::Lane:
    case Opcode::Recv:
      os << ' ' << r(inst.rd);
      break;
    case Opcode::Send:
      os << ' ' << r(inst.ra) << ", " << r(inst.rb);
      break;
    case Opcode::Out:
      os << ' ' << r(inst.ra);
      break;
  }
  return os.str();
}

bool is_alu_op(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Divs:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      return true;
    default:
      return false;
  }
}

Word alu(Opcode op, Word a, Word b) {
  switch (op) {
    case Opcode::Add:
      return a + b;
    case Opcode::Sub:
      return a - b;
    case Opcode::Mul:
      return a * b;
    case Opcode::Divs:
      if (b == 0) throw SimError("division by zero");
      return a / b;
    case Opcode::And:
      return a & b;
    case Opcode::Or:
      return a | b;
    case Opcode::Xor:
      return a ^ b;
    case Opcode::Shl:
      return static_cast<Word>(static_cast<std::uint64_t>(a)
                               << (static_cast<std::uint64_t>(b) & 63));
    case Opcode::Shr:
      return static_cast<Word>(static_cast<std::uint64_t>(a) >>
                               (static_cast<std::uint64_t>(b) & 63));
    default:
      throw SimError("alu: not an ALU opcode: " +
                     std::string(mnemonic(op)));
  }
}

}  // namespace mpct::sim
