#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/word.hpp"

namespace mpct::sim {

/// The minimal RISC instruction set shared by the instruction-flow
/// simulators (IUP, IAP lanes, IMP cores).  Three-address register
/// format over 16 general registers; r0 reads as a normal register (not
/// hard-wired zero).
///
/// Two instructions exist specifically to make the taxonomy's
/// connectivity columns executable:
///  * SHUF (array processors): lane-to-lane register exchange — legal
///    only when the machine's DP-DP switch exists (IAP-II/IV).
///  * SEND/RECV (multiprocessors): core-to-core messages over the DP-DP
///    network (IMP-II/IV/...).
/// Executing them on a class without the switch raises a SimError: the
/// flexibility scores of Table II are enforced, not just asserted.
enum class Opcode : std::uint8_t {
  Nop,
  Halt,
  Ldi,   ///< rd = imm
  Mov,   ///< rd = ra
  Add,   ///< rd = ra + rb
  Sub,   ///< rd = ra - rb
  Mul,   ///< rd = ra * rb
  Divs,  ///< rd = ra / rb (traps on rb == 0)
  And,   ///< rd = ra & rb
  Or,    ///< rd = ra | rb
  Xor,   ///< rd = ra ^ rb
  Shl,   ///< rd = ra << (rb & 63)
  Shr,   ///< rd = (unsigned)ra >> (rb & 63)
  Addi,  ///< rd = ra + imm
  Ld,    ///< rd = DM[ra + imm]
  St,    ///< DM[ra + imm] = rb   (note: address base in ra)
  Beq,   ///< if ra == rb jump to imm
  Bne,   ///< if ra != rb jump to imm
  Blt,   ///< if ra <  rb jump to imm
  Jmp,   ///< jump to imm
  Lane,  ///< rd = lane/core index (0 on a uniprocessor)
  Shuf,  ///< rd = register ra of lane (rb mod lanes)  [needs DP-DP switch]
  Send,  ///< send ra to core (rb mod cores)           [needs DP-DP switch]
  Recv,  ///< rd = next message (blocks until one arrives)
  Out,   ///< append ra to the machine's output stream
};

/// Number of general-purpose registers per data processor.
inline constexpr int kRegisterCount = 16;

/// One decoded instruction.  Branch/jump targets live in imm after
/// assembly (absolute instruction index).
struct Instruction {
  Opcode op = Opcode::Nop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  Word imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

using Program = std::vector<Instruction>;

/// Mnemonic of an opcode ("add", "beq", ...).
std::string_view mnemonic(Opcode op);

/// Opcode from mnemonic; nullopt for unknown text.
std::optional<Opcode> opcode_from_mnemonic(std::string_view text);

/// Disassemble one instruction.
std::string to_string(const Instruction& inst);

/// Pure ALU function for the 3-register arithmetic/logic opcodes.
/// Throws SimError for Divs by zero; must not be called with non-ALU
/// opcodes (throws SimError).
Word alu(Opcode op, Word a, Word b);

/// True for opcodes the ALU helper handles.
bool is_alu_op(Opcode op);

}  // namespace mpct::sim
