#include "sim/spatial/mapper.hpp"

#include "sim/memory.hpp"

namespace mpct::sim::spatial {

namespace {

/// Truth table of a gate as a 4-LUT (unused inputs are don't-care /
/// wired to the disconnected source which reads 0).
std::array<bool, 16> truth_of(GateOp op) {
  std::array<bool, 16> t{};
  for (unsigned address = 0; address < 16; ++address) {
    const bool a = address & 1u;
    const bool b = address & 2u;
    const bool c = address & 4u;
    bool v = false;
    switch (op) {
      case GateOp::Zero:
        v = false;
        break;
      case GateOp::One:
        v = true;
        break;
      case GateOp::Not:
        v = !a;
        break;
      case GateOp::And:
        v = a && b;
        break;
      case GateOp::Or:
        v = a || b;
        break;
      case GateOp::Xor:
        v = a != b;
        break;
      case GateOp::Mux:
        v = a ? b : c;  // inputs: sel, if_true, if_false
        break;
      case GateOp::Dff:
        v = a;  // registered identity
        break;
      default:
        v = false;
        break;
    }
    t[address] = v;
  }
  return t;
}

}  // namespace

MappingReport map_netlist(const Netlist& netlist, LutFabric& fabric) {
  const std::vector<std::string> problems = netlist.validate();
  if (!problems.empty()) {
    throw SimError("map_netlist: netlist invalid: " + problems.front());
  }

  MappingReport report;
  const int n = netlist.gate_count();
  report.gate_cell.assign(static_cast<std::size_t>(n), -1);

  // Assign fabric pins to named ports.
  {
    int next = 0;
    for (GateId id : netlist.input_gates()) {
      if (next >= fabric.primary_inputs()) {
        throw SimError("map_netlist: fabric has too few primary inputs");
      }
      report.input_index[netlist.gate(id).name] = next++;
    }
  }
  {
    int next = 0;
    for (GateId id : netlist.output_gates()) {
      if (next >= fabric.primary_outputs()) {
        throw SimError("map_netlist: fabric has too few primary outputs");
      }
      report.output_index[netlist.gate(id).name] = next++;
    }
  }

  // One cell per logic gate (inputs/outputs are pure routing).
  int next_cell = 0;
  for (GateId id = 0; id < n; ++id) {
    const GateOp op = netlist.gate(id).op;
    if (op == GateOp::Input || op == GateOp::Output) continue;
    if (next_cell >= fabric.cell_count()) {
      throw SimError("map_netlist: fabric has too few cells (" +
                     std::to_string(fabric.cell_count()) + ")");
    }
    report.gate_cell[static_cast<std::size_t>(id)] = next_cell++;
  }
  report.cells_used = next_cell;

  // The source feeding a given netlist gate output.
  const auto source_of_gate = [&](GateId id) -> Source {
    const Gate& gate = netlist.gate(id);
    if (gate.op == GateOp::Input) {
      return Source::primary(report.input_index.at(gate.name));
    }
    return Source::cell(report.gate_cell[static_cast<std::size_t>(id)]);
  };

  fabric.clear();
  for (GateId id = 0; id < n; ++id) {
    const Gate& gate = netlist.gate(id);
    if (gate.op == GateOp::Input || gate.op == GateOp::Output) continue;
    LutCell cell;
    cell.truth = truth_of(gate.op);
    cell.registered = gate.op == GateOp::Dff;
    for (std::size_t k = 0; k < gate.inputs.size() && k < kLutInputs; ++k) {
      cell.inputs[k] = source_of_gate(gate.inputs[k]);
    }
    fabric.configure_cell(report.gate_cell[static_cast<std::size_t>(id)],
                          cell);
  }
  for (GateId id : netlist.output_gates()) {
    const Gate& gate = netlist.gate(id);
    fabric.route_output(report.output_index.at(gate.name),
                        source_of_gate(gate.inputs[0]));
  }
  return report;
}

std::vector<bool> pack_inputs(
    const MappingReport& report, int primary_inputs,
    const std::vector<std::pair<std::string, bool>>& values) {
  std::vector<bool> packed(static_cast<std::size_t>(primary_inputs), false);
  for (const auto& [name, value] : values) {
    const auto it = report.input_index.find(name);
    if (it == report.input_index.end()) {
      throw SimError("pack_inputs: unknown input '" + name + "'");
    }
    packed[static_cast<std::size_t>(it->second)] = value;
  }
  return packed;
}

std::vector<std::pair<std::string, bool>> unpack_outputs(
    const MappingReport& report, const std::vector<bool>& outputs) {
  std::vector<std::pair<std::string, bool>> named;
  named.reserve(report.output_index.size());
  for (const auto& [name, index] : report.output_index) {
    if (index >= 0 && static_cast<std::size_t>(index) < outputs.size()) {
      named.emplace_back(name, outputs[static_cast<std::size_t>(index)]);
    }
  }
  return named;
}

}  // namespace mpct::sim::spatial
