#include "sim/spatial/fabric.hpp"

#include <stdexcept>

#include "cost/switch_cost.hpp"
#include "sim/memory.hpp"

namespace mpct::sim::spatial {

LutFabric::LutFabric(int cells, int primary_inputs, int primary_outputs)
    : primary_inputs_(primary_inputs),
      cells_(static_cast<std::size_t>(cells)),
      state_(static_cast<std::size_t>(cells), false),
      output_sources_(static_cast<std::size_t>(primary_outputs)) {
  if (cells < 1 || primary_inputs < 0 || primary_outputs < 0) {
    throw std::invalid_argument("LutFabric: bad shape");
  }
}

void LutFabric::configure_cell(int cell, const LutCell& config) {
  if (cell < 0 || cell >= cell_count()) {
    throw SimError("LutFabric: cell index out of range");
  }
  for (const Source& source : config.inputs) {
    if (source.kind == Source::Kind::Primary &&
        (source.index < 0 || source.index >= primary_inputs_)) {
      throw SimError("LutFabric: bad primary input route");
    }
    if (source.kind == Source::Kind::Cell &&
        (source.index < 0 || source.index >= cell_count())) {
      throw SimError("LutFabric: bad cell route");
    }
  }
  cells_[static_cast<std::size_t>(cell)] = config;
}

const LutCell& LutFabric::cell(int index) const {
  if (index < 0 || index >= cell_count()) {
    throw SimError("LutFabric: cell index out of range");
  }
  return cells_[static_cast<std::size_t>(index)];
}

void LutFabric::route_output(int output, Source source) {
  if (output < 0 || output >= primary_outputs()) {
    throw SimError("LutFabric: output index out of range");
  }
  output_sources_[static_cast<std::size_t>(output)] = source;
}

void LutFabric::clear() {
  for (LutCell& cell : cells_) cell = LutCell{};
  for (Source& source : output_sources_) source = Source::none();
  state_.assign(state_.size(), false);
}

std::int64_t LutFabric::config_bits() const {
  // Route candidates per LUT input: any primary, any cell output, or
  // unconnected.
  const int candidates = primary_inputs_ + cell_count() + 1;
  const std::int64_t per_cell =
      (1 << kLutInputs) + kLutInputs * cost::ceil_log2(candidates) + 1;
  return per_cell * cell_count() +
         static_cast<std::int64_t>(primary_outputs()) *
             cost::ceil_log2(candidates);
}

bool LutFabric::cell_state(int index) const {
  if (index < 0 || index >= cell_count()) {
    throw SimError("LutFabric: cell index out of range");
  }
  return state_[static_cast<std::size_t>(index)];
}

bool LutFabric::read(const Source& source,
                     const std::vector<bool>& primary_in,
                     const std::vector<bool>& cell_out) const {
  switch (source.kind) {
    case Source::Kind::None:
      return false;
    case Source::Kind::Primary:
      return primary_in[static_cast<std::size_t>(source.index)];
    case Source::Kind::Cell:
      return cell_out[static_cast<std::size_t>(source.index)];
  }
  return false;
}

std::vector<bool> LutFabric::step(const std::vector<bool>& primary_in) {
  if (static_cast<int>(primary_in.size()) != primary_inputs_) {
    throw SimError("LutFabric: expected " + std::to_string(primary_inputs_) +
                   " primary inputs, got " +
                   std::to_string(primary_in.size()));
  }

  const int n = cell_count();
  // Iteratively settle the combinational network.  Registered cells
  // output their latched state; combinational cells recompute until a
  // fixed point.  More than n sweeps without convergence means a
  // combinational cycle.
  std::vector<bool> out(static_cast<std::size_t>(n), false);
  for (int c = 0; c < n; ++c) {
    if (cells_[static_cast<std::size_t>(c)].registered) {
      out[static_cast<std::size_t>(c)] = state_[static_cast<std::size_t>(c)];
    }
  }
  bool changed = true;
  int sweeps = 0;
  while (changed) {
    if (++sweeps > n + 1) {
      throw SimError("LutFabric: combinational cycle (no fixed point)");
    }
    changed = false;
    for (int c = 0; c < n; ++c) {
      const LutCell& cell = cells_[static_cast<std::size_t>(c)];
      if (cell.registered) continue;
      unsigned address = 0;
      for (int k = 0; k < kLutInputs; ++k) {
        if (read(cell.inputs[static_cast<std::size_t>(k)], primary_in,
                 out)) {
          address |= 1u << k;
        }
      }
      const bool value = cell.truth[address];
      if (value != out[static_cast<std::size_t>(c)]) {
        out[static_cast<std::size_t>(c)] = value;
        changed = true;
      }
    }
  }

  // Latch registered cells from their (settled) D inputs.
  std::vector<bool> next_state = state_;
  for (int c = 0; c < n; ++c) {
    const LutCell& cell = cells_[static_cast<std::size_t>(c)];
    if (!cell.registered) continue;
    unsigned address = 0;
    for (int k = 0; k < kLutInputs; ++k) {
      if (read(cell.inputs[static_cast<std::size_t>(k)], primary_in, out)) {
        address |= 1u << k;
      }
    }
    next_state[static_cast<std::size_t>(c)] = cell.truth[address];
  }
  state_ = std::move(next_state);

  std::vector<bool> primary_out;
  primary_out.reserve(output_sources_.size());
  for (const Source& source : output_sources_) {
    primary_out.push_back(read(source, primary_in, out));
  }
  return primary_out;
}

}  // namespace mpct::sim::spatial
