#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/spatial/fabric.hpp"
#include "sim/spatial/netlist.hpp"

namespace mpct::sim::spatial {

/// Result of mapping a netlist onto a fabric.
struct MappingReport {
  int cells_used = 0;
  /// Primary input name -> fabric primary-input index.
  std::map<std::string, int> input_index;
  /// Primary output name -> fabric primary-output index.
  std::map<std::string, int> output_index;
  /// Netlist gate -> fabric cell (-1 for gates that map to no cell:
  /// inputs and outputs become routes).
  std::vector<int> gate_cell;
};

/// Technology-map a gate netlist onto a LUT fabric: one logic gate per
/// 4-LUT (trivial but correct mapping; the netlists here are small),
/// DFFs become registered identity LUTs, constants become constant
/// LUTs.  Throws SimError if the fabric lacks cells or pins.
///
/// This is the "configure the universal machine" step: calling it twice
/// on the same fabric with an adder and then an FSM is the executable
/// form of Section II-C.3's claim that fine-grained fabrics implement
/// either flow paradigm.
MappingReport map_netlist(const Netlist& netlist, LutFabric& fabric);

/// Convenience for driving a mapped design: translate named input values
/// to the fabric's primary-input vector.
std::vector<bool> pack_inputs(
    const MappingReport& report, int primary_inputs,
    const std::vector<std::pair<std::string, bool>>& values);

/// Translate the fabric's primary-output vector back to named values.
std::vector<std::pair<std::string, bool>> unpack_outputs(
    const MappingReport& report, const std::vector<bool>& outputs);

}  // namespace mpct::sim::spatial
