#pragma once

#include <string>
#include <vector>

namespace mpct::sim::spatial {

/// Gate-level operators for netlists targeting the LUT fabric.
enum class GateOp : std::uint8_t {
  Input,  ///< primary input (named)
  Zero,   ///< constant 0
  One,    ///< constant 1
  Not,    ///< 1 operand
  And,    ///< 2 operands
  Or,     ///< 2 operands
  Xor,    ///< 2 operands
  Mux,    ///< 3 operands: sel ? a : b  (sel, a, b)
  Dff,    ///< 1 operand: D flip-flop, output is last clocked value
  Output  ///< primary output (named, 1 operand)
};

std::string_view to_string(GateOp op);
int gate_arity(GateOp op);

using GateId = int;

/// One gate.
struct Gate {
  GateOp op = GateOp::Zero;
  std::string name;            ///< Input/Output name
  std::vector<GateId> inputs;  ///< operand producers
};

/// A gate-level netlist — the portable description a universal-flow
/// fabric is configured from.  Cycles are legal only through DFFs
/// (synchronous design rule); validate() enforces it.
class Netlist {
 public:
  GateId add_input(std::string name);
  GateId add_const(bool value);
  GateId add_not(GateId a);
  GateId add_and(GateId a, GateId b);
  GateId add_or(GateId a, GateId b);
  GateId add_xor(GateId a, GateId b);
  GateId add_mux(GateId sel, GateId if_true, GateId if_false);
  /// Declare a DFF whose input may be set later (enables feedback
  /// loops); connect with connect_dff().
  GateId add_dff();
  void connect_dff(GateId dff, GateId d);
  GateId add_output(std::string name, GateId source);

  int gate_count() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(GateId id) const {
    return gates_.at(static_cast<std::size_t>(id));
  }
  const std::vector<GateId>& input_gates() const { return inputs_; }
  const std::vector<GateId>& output_gates() const { return outputs_; }
  int dff_count() const;

  /// Empty on success: checks arities, dangling references, unconnected
  /// DFFs and combinational cycles.
  std::vector<std::string> validate() const;

  /// Reference simulation: clock the netlist over input vectors (one
  /// map of input values per cycle); returns per-cycle output values in
  /// output-gate order.  DFFs start at 0.
  std::vector<std::vector<bool>> simulate(
      const std::vector<std::vector<std::pair<std::string, bool>>>& stimulus)
      const;

 private:
  GateId append(Gate gate);

  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
};

/// Ripple-carry adder: inputs a0..a{n-1}, b0..b{n-1}, cin; outputs
/// s0..s{n-1}, cout.  Pure combinational logic — a *data-flow* machine
/// in the paper's sense: results appear as operands arrive.
Netlist build_ripple_adder(int bits);

/// Synchronous up-counter with enable: input en, outputs q0..q{n-1} —
/// a sequential state machine, i.e. the seed of an *instruction-flow*
/// machine (the IP is a state machine, Section II-B).
Netlist build_counter(int bits);

/// 2-bit sequence-detector FSM (detects the input pattern 1,1) with
/// output 'hit' — a pure instruction-processor-like state machine.
Netlist build_sequence_detector();

}  // namespace mpct::sim::spatial
