#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mpct::sim::spatial {

/// Where a routed signal comes from on the fabric.
struct Source {
  enum class Kind : std::uint8_t { None, Primary, Cell };
  Kind kind = Kind::None;
  int index = 0;  ///< primary-input index or cell index

  static Source none() { return {}; }
  static Source primary(int index) { return {Kind::Primary, index}; }
  static Source cell(int index) { return {Kind::Cell, index}; }

  friend bool operator==(const Source&, const Source&) = default;
};

/// Number of inputs per LUT (classic island-style 4-LUT).
inline constexpr int kLutInputs = 4;

/// Configuration of one cell: a 4-input truth table, four routed input
/// sources and a registered/combinational mode bit.
struct LutCell {
  std::array<bool, 1 << kLutInputs> truth{};  ///< 16 truth-table bits
  std::array<Source, kLutInputs> inputs{};
  bool registered = false;  ///< output latches on clock when true
};

/// The universal-flow spatial processor (class USP, Table I row 47): a
/// pool of LUT cells behind a global routing crossbar.  Every cell can be
/// configured to behave as part of a data processor, an instruction
/// processor (state machine — registered cells), or storage; the *count*
/// of IPs/DPs is therefore variable ('v'), decided by the bitstream, not
/// the silicon.
///
/// The measured config_bits() — truth tables + routing selects + mode
/// bits — is the reconfiguration overhead that Section III-B trades
/// against flexibility.
class LutFabric {
 public:
  LutFabric(int cells, int primary_inputs, int primary_outputs);

  int cell_count() const { return static_cast<int>(cells_.size()); }
  int primary_inputs() const { return primary_inputs_; }
  int primary_outputs() const {
    return static_cast<int>(output_sources_.size());
  }

  /// Program one cell (throws SimError on bad indices).
  void configure_cell(int cell, const LutCell& config);
  const LutCell& cell(int index) const;

  /// Route a primary output.
  void route_output(int output, Source source);

  /// Clear all configuration and state.
  void clear();

  /// Measured configuration size in bits: per cell 16 truth bits +
  /// 4 input selects over (primaries + cells + 1) candidates + 1 mode
  /// bit; per primary output one select.
  std::int64_t config_bits() const;

  /// Evaluate one clock cycle: combinational settle from the given
  /// primary inputs, then latch registered cells.  Returns the primary
  /// outputs.  Throws SimError on combinational cycles.
  std::vector<bool> step(const std::vector<bool>& primary_in);

  /// Current registered state of a cell (for assertions).
  bool cell_state(int index) const;

 private:
  bool read(const Source& source, const std::vector<bool>& primary_in,
            const std::vector<bool>& cell_out) const;

  int primary_inputs_;
  std::vector<LutCell> cells_;
  std::vector<bool> state_;  ///< latched value per cell
  std::vector<Source> output_sources_;
};

}  // namespace mpct::sim::spatial
