#include "sim/spatial/netlist.hpp"

#include <algorithm>
#include <map>

#include "sim/memory.hpp"

namespace mpct::sim::spatial {

std::string_view to_string(GateOp op) {
  switch (op) {
    case GateOp::Input:
      return "input";
    case GateOp::Zero:
      return "zero";
    case GateOp::One:
      return "one";
    case GateOp::Not:
      return "not";
    case GateOp::And:
      return "and";
    case GateOp::Or:
      return "or";
    case GateOp::Xor:
      return "xor";
    case GateOp::Mux:
      return "mux";
    case GateOp::Dff:
      return "dff";
    case GateOp::Output:
      return "output";
  }
  return "?";
}

int gate_arity(GateOp op) {
  switch (op) {
    case GateOp::Input:
    case GateOp::Zero:
    case GateOp::One:
      return 0;
    case GateOp::Not:
    case GateOp::Dff:
    case GateOp::Output:
      return 1;
    case GateOp::And:
    case GateOp::Or:
    case GateOp::Xor:
      return 2;
    case GateOp::Mux:
      return 3;
  }
  return 0;
}

GateId Netlist::append(Gate gate) {
  gates_.push_back(std::move(gate));
  return static_cast<GateId>(gates_.size() - 1);
}

GateId Netlist::add_input(std::string name) {
  Gate gate;
  gate.op = GateOp::Input;
  gate.name = std::move(name);
  const GateId id = append(std::move(gate));
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_const(bool value) {
  Gate gate;
  gate.op = value ? GateOp::One : GateOp::Zero;
  return append(std::move(gate));
}

GateId Netlist::add_not(GateId a) {
  Gate gate;
  gate.op = GateOp::Not;
  gate.inputs = {a};
  return append(std::move(gate));
}

GateId Netlist::add_and(GateId a, GateId b) {
  Gate gate;
  gate.op = GateOp::And;
  gate.inputs = {a, b};
  return append(std::move(gate));
}

GateId Netlist::add_or(GateId a, GateId b) {
  Gate gate;
  gate.op = GateOp::Or;
  gate.inputs = {a, b};
  return append(std::move(gate));
}

GateId Netlist::add_xor(GateId a, GateId b) {
  Gate gate;
  gate.op = GateOp::Xor;
  gate.inputs = {a, b};
  return append(std::move(gate));
}

GateId Netlist::add_mux(GateId sel, GateId if_true, GateId if_false) {
  Gate gate;
  gate.op = GateOp::Mux;
  gate.inputs = {sel, if_true, if_false};
  return append(std::move(gate));
}

GateId Netlist::add_dff() {
  Gate gate;
  gate.op = GateOp::Dff;
  return append(std::move(gate));
}

void Netlist::connect_dff(GateId dff, GateId d) {
  Gate& gate = gates_.at(static_cast<std::size_t>(dff));
  if (gate.op != GateOp::Dff) {
    throw SimError("connect_dff: gate is not a DFF");
  }
  gate.inputs = {d};
}

GateId Netlist::add_output(std::string name, GateId source) {
  Gate gate;
  gate.op = GateOp::Output;
  gate.name = std::move(name);
  gate.inputs = {source};
  const GateId id = append(std::move(gate));
  outputs_.push_back(id);
  return id;
}

int Netlist::dff_count() const {
  return static_cast<int>(
      std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
        return g.op == GateOp::Dff;
      }));
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  const int n = gate_count();
  for (GateId id = 0; id < n; ++id) {
    const Gate& gate = gates_[static_cast<std::size_t>(id)];
    if (static_cast<int>(gate.inputs.size()) != gate_arity(gate.op)) {
      problems.push_back("gate " + std::to_string(id) + " (" +
                         std::string(to_string(gate.op)) + ") has " +
                         std::to_string(gate.inputs.size()) +
                         " operands, expected " +
                         std::to_string(gate_arity(gate.op)) +
                         (gate.op == GateOp::Dff ? " (unconnected DFF?)"
                                                 : ""));
    }
    for (GateId producer : gate.inputs) {
      if (producer < 0 || producer >= n) {
        problems.push_back("gate " + std::to_string(id) +
                           " references missing gate " +
                           std::to_string(producer));
      }
    }
  }
  if (!problems.empty()) return problems;

  // Combinational cycle check: DFF outputs break the cycle (their value
  // is state, not a combinational function of this cycle's inputs).
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<GateId>> consumers(static_cast<std::size_t>(n));
  for (GateId id = 0; id < n; ++id) {
    if (gates_[static_cast<std::size_t>(id)].op == GateOp::Dff) continue;
    for (GateId producer : gates_[static_cast<std::size_t>(id)].inputs) {
      consumers[static_cast<std::size_t>(producer)].push_back(id);
      ++indegree[static_cast<std::size_t>(id)];
    }
  }
  // DFF *inputs* still need evaluation order, but a DFF never blocks its
  // consumers, so seed the frontier with every gate whose combinational
  // inputs are satisfied (indegree 0 counts DFFs immediately).
  std::vector<GateId> frontier;
  int visited = 0;
  for (GateId id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const GateId id = frontier.back();
    frontier.pop_back();
    ++visited;
    for (GateId consumer : consumers[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        frontier.push_back(consumer);
      }
    }
  }
  if (visited != n) {
    problems.push_back("combinational cycle (not broken by a DFF)");
  }
  return problems;
}

std::vector<std::vector<bool>> Netlist::simulate(
    const std::vector<std::vector<std::pair<std::string, bool>>>& stimulus)
    const {
  const std::vector<std::string> problems = validate();
  if (!problems.empty()) {
    throw SimError("netlist invalid: " + problems.front());
  }
  const int n = gate_count();

  // Topological order over combinational edges (DFF outputs are sources).
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<GateId>> consumers(static_cast<std::size_t>(n));
  for (GateId id = 0; id < n; ++id) {
    if (gates_[static_cast<std::size_t>(id)].op == GateOp::Dff) continue;
    for (GateId producer : gates_[static_cast<std::size_t>(id)].inputs) {
      consumers[static_cast<std::size_t>(producer)].push_back(id);
      ++indegree[static_cast<std::size_t>(id)];
    }
  }
  std::vector<GateId> order;
  order.reserve(static_cast<std::size_t>(n));
  {
    std::vector<GateId> frontier;
    for (GateId id = 0; id < n; ++id) {
      if (indegree[static_cast<std::size_t>(id)] == 0) {
        frontier.push_back(id);
      }
    }
    while (!frontier.empty()) {
      const GateId id = frontier.back();
      frontier.pop_back();
      order.push_back(id);
      for (GateId consumer : consumers[static_cast<std::size_t>(id)]) {
        if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
          frontier.push_back(consumer);
        }
      }
    }
  }

  std::vector<bool> value(static_cast<std::size_t>(n), false);
  std::vector<bool> state(static_cast<std::size_t>(n), false);  // DFFs
  std::vector<std::vector<bool>> results;

  for (const auto& cycle_inputs : stimulus) {
    const std::map<std::string, bool> bound(cycle_inputs.begin(),
                                            cycle_inputs.end());
    for (GateId id : order) {
      const Gate& gate = gates_[static_cast<std::size_t>(id)];
      const auto in = [&](int index) -> bool {
        return value[static_cast<std::size_t>(
            gate.inputs[static_cast<std::size_t>(index)])];
      };
      switch (gate.op) {
        case GateOp::Input: {
          const auto it = bound.find(gate.name);
          if (it == bound.end()) {
            throw SimError("netlist: missing input '" + gate.name + "'");
          }
          value[static_cast<std::size_t>(id)] = it->second;
          break;
        }
        case GateOp::Zero:
          value[static_cast<std::size_t>(id)] = false;
          break;
        case GateOp::One:
          value[static_cast<std::size_t>(id)] = true;
          break;
        case GateOp::Not:
          value[static_cast<std::size_t>(id)] = !in(0);
          break;
        case GateOp::And:
          value[static_cast<std::size_t>(id)] = in(0) && in(1);
          break;
        case GateOp::Or:
          value[static_cast<std::size_t>(id)] = in(0) || in(1);
          break;
        case GateOp::Xor:
          value[static_cast<std::size_t>(id)] = in(0) != in(1);
          break;
        case GateOp::Mux:
          value[static_cast<std::size_t>(id)] = in(0) ? in(1) : in(2);
          break;
        case GateOp::Dff:
          value[static_cast<std::size_t>(id)] =
              state[static_cast<std::size_t>(id)];
          break;
        case GateOp::Output:
          value[static_cast<std::size_t>(id)] = in(0);
          break;
      }
    }
    // Latch DFFs on the clock edge.
    for (GateId id = 0; id < n; ++id) {
      const Gate& gate = gates_[static_cast<std::size_t>(id)];
      if (gate.op == GateOp::Dff) {
        state[static_cast<std::size_t>(id)] =
            value[static_cast<std::size_t>(gate.inputs[0])];
      }
    }
    std::vector<bool> outputs;
    outputs.reserve(outputs_.size());
    for (GateId id : outputs_) {
      outputs.push_back(value[static_cast<std::size_t>(id)]);
    }
    results.push_back(std::move(outputs));
  }
  return results;
}

Netlist build_ripple_adder(int bits) {
  Netlist nl;
  std::vector<GateId> a, b;
  for (int i = 0; i < bits; ++i) {
    a.push_back(nl.add_input("a" + std::to_string(i)));
  }
  for (int i = 0; i < bits; ++i) {
    b.push_back(nl.add_input("b" + std::to_string(i)));
  }
  GateId carry = nl.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const GateId axb = nl.add_xor(a[static_cast<std::size_t>(i)],
                                  b[static_cast<std::size_t>(i)]);
    const GateId sum = nl.add_xor(axb, carry);
    const GateId and1 = nl.add_and(a[static_cast<std::size_t>(i)],
                                   b[static_cast<std::size_t>(i)]);
    const GateId and2 = nl.add_and(axb, carry);
    carry = nl.add_or(and1, and2);
    nl.add_output("s" + std::to_string(i), sum);
  }
  nl.add_output("cout", carry);
  return nl;
}

Netlist build_counter(int bits) {
  Netlist nl;
  const GateId en = nl.add_input("en");
  std::vector<GateId> q;
  for (int i = 0; i < bits; ++i) q.push_back(nl.add_dff());
  // Increment: toggle bit i when en and all lower bits are 1.
  GateId carry = en;
  for (int i = 0; i < bits; ++i) {
    const GateId next = nl.add_xor(q[static_cast<std::size_t>(i)], carry);
    carry = nl.add_and(carry, q[static_cast<std::size_t>(i)]);
    nl.connect_dff(q[static_cast<std::size_t>(i)], next);
    nl.add_output("q" + std::to_string(i), q[static_cast<std::size_t>(i)]);
  }
  return nl;
}

Netlist build_sequence_detector() {
  // Moore FSM over states {idle, saw1}; output hit = in && state_saw1.
  Netlist nl;
  const GateId in = nl.add_input("in");
  const GateId saw1 = nl.add_dff();
  nl.connect_dff(saw1, in);  // next state: remembered last input bit
  const GateId hit = nl.add_and(in, saw1);
  nl.add_output("hit", hit);
  return nl;
}

}  // namespace mpct::sim::spatial
