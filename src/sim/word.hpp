#pragma once

#include <cstdint>

namespace mpct::sim {

/// Machine word of every paradigm simulator.  Signed 64-bit keeps the
/// arithmetic semantics trivial (no overflow UB concerns in practice for
/// the workloads the benches run) and wide enough for addresses and data
/// alike.
using Word = std::int64_t;

}  // namespace mpct::sim
