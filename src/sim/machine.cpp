#include "sim/machine.hpp"

#include <string>

#include "sim/memory.hpp"

namespace mpct::sim {

namespace {

void branch_to(CoreState& core, Word target, int program_size) {
  if (target < 0 || target > program_size) {
    throw SimError("branch target out of range: " + std::to_string(target));
  }
  core.pc = static_cast<int>(target);
}

}  // namespace

bool execute_common(CoreState& core, const Instruction& inst,
                    int program_size) {
  if (is_alu_op(inst.op)) {
    core.set_reg(inst.rd, alu(inst.op, core.reg(inst.ra), core.reg(inst.rb)));
    ++core.pc;
    return true;
  }
  switch (inst.op) {
    case Opcode::Nop:
      ++core.pc;
      return true;
    case Opcode::Halt:
      core.halted = true;
      return true;
    case Opcode::Ldi:
      core.set_reg(inst.rd, inst.imm);
      ++core.pc;
      return true;
    case Opcode::Mov:
      core.set_reg(inst.rd, core.reg(inst.ra));
      ++core.pc;
      return true;
    case Opcode::Addi:
      core.set_reg(inst.rd, core.reg(inst.ra) + inst.imm);
      ++core.pc;
      return true;
    case Opcode::Beq:
      if (core.reg(inst.ra) == core.reg(inst.rb)) {
        branch_to(core, inst.imm, program_size);
      } else {
        ++core.pc;
      }
      return true;
    case Opcode::Bne:
      if (core.reg(inst.ra) != core.reg(inst.rb)) {
        branch_to(core, inst.imm, program_size);
      } else {
        ++core.pc;
      }
      return true;
    case Opcode::Blt:
      if (core.reg(inst.ra) < core.reg(inst.rb)) {
        branch_to(core, inst.imm, program_size);
      } else {
        ++core.pc;
      }
      return true;
    case Opcode::Jmp:
      branch_to(core, inst.imm, program_size);
      return true;
    default:
      return false;
  }
}

}  // namespace mpct::sim
