#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/word.hpp"

namespace mpct::sim::df {

/// Operator of one dataflow node.  In a data-flow machine "the data
/// elements carry instructions which are then executed on the arrival of
/// the data at the inputs of the processing elements" (Section II-C.1);
/// a node fires when all of its operands hold tokens.
enum class Op : std::uint8_t {
  Const,   ///< source producing a fixed value (fires once)
  Input,   ///< named external input (token provided at run start)
  Add,
  Sub,
  Mul,
  Divs,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Min,
  Max,
  Lt,      ///< a < b ? 1 : 0
  Select,  ///< cond ? a : b  (three operands)
  Output,  ///< named external output (one operand)
};

std::string_view to_string(Op op);

/// Number of operands an operator consumes.
int arity(Op op);

using NodeId = int;

/// One node of a dataflow graph.
struct Node {
  Op op = Op::Const;
  Word imm = 0;                ///< Const value
  std::string name;            ///< Input/Output name
  std::vector<NodeId> inputs;  ///< operand producers, size == arity(op)
};

/// A static dataflow graph (the program of a data-flow machine).  Nodes
/// are appended through the builder methods; `validate()` checks arities,
/// dangling references and acyclicity (static dataflow: no back edges).
class Graph {
 public:
  NodeId add_const(Word value);
  NodeId add_input(std::string name);
  NodeId add_op(Op op, NodeId a, NodeId b);
  NodeId add_select(NodeId cond, NodeId if_true, NodeId if_false);
  NodeId add_output(std::string name, NodeId source);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Ids of Input / Output nodes in creation order.
  const std::vector<NodeId>& input_nodes() const { return inputs_; }
  const std::vector<NodeId>& output_nodes() const { return outputs_; }

  /// Topological order of the nodes; std::nullopt if the graph is cyclic.
  std::optional<std::vector<NodeId>> topological_order() const;

  /// Empty on success; otherwise human-readable problems (bad arity,
  /// dangling operand, cycle, duplicate input name).
  std::vector<std::string> validate() const;

  /// Connected-component label per node (undirected connectivity) — the
  /// unit of parallelism available to a DMP-I machine, whose PEs cannot
  /// exchange tokens at all.
  std::vector<int> components() const;

 private:
  NodeId append(Node node);

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
};

/// Apply one node's operator to already-computed operand values.
/// Const returns node.imm; Input is not applicable (throws SimError) —
/// its value comes from the run's input bindings.
Word apply_op(const Node& node, const std::vector<Word>& operands);

/// Evaluate the graph functionally (reference semantics for the token
/// machines): inputs by name, returns outputs by name in output-node
/// order.  Throws SimError on validation failure or missing inputs.
std::vector<std::pair<std::string, Word>> evaluate(
    const Graph& graph,
    const std::vector<std::pair<std::string, Word>>& inputs);

}  // namespace mpct::sim::df
