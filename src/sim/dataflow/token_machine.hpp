#pragma once

#include <string>
#include <vector>

#include "core/connectivity.hpp"
#include "sim/dataflow/graph.hpp"
#include "sim/machine.hpp"

namespace mpct::sim::df {

/// Configuration of a token-driven data-flow machine (classes DUP and
/// DMP-I..IV).  The sub-type's switches decide how a token produced on
/// one processing element reaches a consumer on another:
///
///  * DMP-I  (DP-DM direct, no DP-DP): PEs cannot exchange tokens at
///    all — every connected component of the graph must execute on a
///    single PE, so parallelism only exists *across* components.
///  * DMP-II (DP-DP crossbar): direct PE-to-PE token transfer,
///    cross_latency cycles; inputs still materialise on their home PE.
///  * DMP-III (DP-DM crossbar): tokens cross through shared memory,
///    memory_latency cycles; any PE can read any external input.
///  * DMP-IV (both): crossbar transfer *and* global inputs.
struct TokenMachineConfig {
  int pes = 1;  ///< processing elements; 1 = DUP
  mpct::SwitchKind dp_dm = mpct::SwitchKind::Direct;
  mpct::SwitchKind dp_dp = mpct::SwitchKind::None;
  int cross_latency = 1;   ///< PE->PE token hop over the DP-DP crossbar
  int memory_latency = 2;  ///< PE->memory->PE when only DP-DM is flexible

  static TokenMachineConfig uniprocessor();  ///< DUP
  static TokenMachineConfig for_subtype(int subtype, int pes);

  /// 0 for DUP (single PE), otherwise the DMP sub-type 1..4.
  int subtype() const;
};

/// Result of a token-machine run.
struct DataflowRunResult {
  RunStats stats;  ///< cycles = makespan, instructions = node firings
  std::vector<std::pair<std::string, Word>> outputs;
  /// Node -> PE assignment used.
  std::vector<int> placement;
};

/// Execute a dataflow graph on a token-driven machine.  Scheduling is
/// deterministic: each cycle every PE fires its lowest-numbered ready
/// node (all operand tokens arrived); results appear after 1 cycle plus
/// the class's transfer latency for remote consumers.
///
/// Placement: nodes spread round-robin by topological index; for
/// machines without any inter-PE path (DMP-I semantics) placement is by
/// connected component, and a graph whose component spans are fine
/// because components are self-contained by construction.
class TokenMachine {
 public:
  TokenMachine(const Graph& graph, TokenMachineConfig config);

  const TokenMachineConfig& config() const { return config_; }

  DataflowRunResult run(
      const std::vector<std::pair<std::string, Word>>& inputs,
      std::int64_t max_cycles = 1'000'000) const;

 private:
  const Graph& graph_;
  TokenMachineConfig config_;
  std::vector<int> placement_;
};

}  // namespace mpct::sim::df
