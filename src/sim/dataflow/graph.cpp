#include "sim/dataflow/graph.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "sim/memory.hpp"

namespace mpct::sim::df {

std::string_view to_string(Op op) {
  switch (op) {
    case Op::Const:
      return "const";
    case Op::Input:
      return "input";
    case Op::Add:
      return "add";
    case Op::Sub:
      return "sub";
    case Op::Mul:
      return "mul";
    case Op::Divs:
      return "divs";
    case Op::And:
      return "and";
    case Op::Or:
      return "or";
    case Op::Xor:
      return "xor";
    case Op::Shl:
      return "shl";
    case Op::Shr:
      return "shr";
    case Op::Min:
      return "min";
    case Op::Max:
      return "max";
    case Op::Lt:
      return "lt";
    case Op::Select:
      return "select";
    case Op::Output:
      return "output";
  }
  return "?";
}

int arity(Op op) {
  switch (op) {
    case Op::Const:
    case Op::Input:
      return 0;
    case Op::Output:
      return 1;
    case Op::Select:
      return 3;
    default:
      return 2;
  }
}

NodeId Graph::append(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Graph::add_const(Word value) {
  Node node;
  node.op = Op::Const;
  node.imm = value;
  return append(std::move(node));
}

NodeId Graph::add_input(std::string name) {
  Node node;
  node.op = Op::Input;
  node.name = std::move(name);
  const NodeId id = append(std::move(node));
  inputs_.push_back(id);
  return id;
}

NodeId Graph::add_op(Op op, NodeId a, NodeId b) {
  Node node;
  node.op = op;
  node.inputs = {a, b};
  return append(std::move(node));
}

NodeId Graph::add_select(NodeId cond, NodeId if_true, NodeId if_false) {
  Node node;
  node.op = Op::Select;
  node.inputs = {cond, if_true, if_false};
  return append(std::move(node));
}

NodeId Graph::add_output(std::string name, NodeId source) {
  Node node;
  node.op = Op::Output;
  node.name = std::move(name);
  node.inputs = {source};
  const NodeId id = append(std::move(node));
  outputs_.push_back(id);
  return id;
}

std::optional<std::vector<NodeId>> Graph::topological_order() const {
  const int n = node_count();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<NodeId>> consumers(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId producer : nodes_[static_cast<std::size_t>(id)].inputs) {
      if (producer < 0 || producer >= n) return std::nullopt;
      consumers[static_cast<std::size_t>(producer)].push_back(id);
      ++indegree[static_cast<std::size_t>(id)];
    }
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<NodeId> frontier;
  for (NodeId id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const NodeId id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (NodeId consumer : consumers[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(consumer)] == 0) {
        frontier.push_back(consumer);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;  // cycle
  return order;
}

std::vector<std::string> Graph::validate() const {
  std::vector<std::string> problems;
  const int n = node_count();
  std::map<std::string, int> input_names;
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    if (static_cast<int>(node.inputs.size()) != arity(node.op)) {
      problems.push_back("node " + std::to_string(id) + " (" +
                         std::string(to_string(node.op)) + ") has " +
                         std::to_string(node.inputs.size()) +
                         " operands, expected " +
                         std::to_string(arity(node.op)));
    }
    for (NodeId producer : node.inputs) {
      if (producer < 0 || producer >= n) {
        problems.push_back("node " + std::to_string(id) +
                           " references missing node " +
                           std::to_string(producer));
      }
    }
    if (node.op == Op::Input && ++input_names[node.name] > 1) {
      problems.push_back("duplicate input name '" + node.name + "'");
    }
  }
  if (problems.empty() && !topological_order()) {
    problems.push_back("graph is cyclic (static dataflow must be acyclic)");
  }
  return problems;
}

std::vector<int> Graph::components() const {
  const int n = node_count();
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId producer : nodes_[static_cast<std::size_t>(id)].inputs) {
      if (producer < 0 || producer >= n) continue;
      parent[static_cast<std::size_t>(find(id))] = find(producer);
    }
  }
  std::map<int, int> labels;
  std::vector<int> out(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    const int root = find(id);
    const auto [it, inserted] =
        labels.emplace(root, static_cast<int>(labels.size()));
    out[static_cast<std::size_t>(id)] = it->second;
  }
  return out;
}

Word apply_op(const Node& node, const std::vector<Word>& operands) {
  const auto in = [&](int index) {
    return operands[static_cast<std::size_t>(index)];
  };
  switch (node.op) {
    case Op::Const:
      return node.imm;
    case Op::Input:
      throw SimError("dataflow: apply_op() called on an Input node");
    case Op::Add:
      return in(0) + in(1);
    case Op::Sub:
      return in(0) - in(1);
    case Op::Mul:
      return in(0) * in(1);
    case Op::Divs:
      if (in(1) == 0) throw SimError("dataflow: division by zero");
      return in(0) / in(1);
    case Op::And:
      return in(0) & in(1);
    case Op::Or:
      return in(0) | in(1);
    case Op::Xor:
      return in(0) ^ in(1);
    case Op::Shl:
      return static_cast<Word>(static_cast<std::uint64_t>(in(0))
                               << (static_cast<std::uint64_t>(in(1)) & 63));
    case Op::Shr:
      return static_cast<Word>(static_cast<std::uint64_t>(in(0)) >>
                               (static_cast<std::uint64_t>(in(1)) & 63));
    case Op::Min:
      return std::min(in(0), in(1));
    case Op::Max:
      return std::max(in(0), in(1));
    case Op::Lt:
      return in(0) < in(1) ? 1 : 0;
    case Op::Select:
      return in(0) != 0 ? in(1) : in(2);
    case Op::Output:
      return in(0);
  }
  throw SimError("dataflow: unknown op");
}

std::vector<std::pair<std::string, Word>> evaluate(
    const Graph& graph,
    const std::vector<std::pair<std::string, Word>>& inputs) {
  const std::vector<std::string> problems = graph.validate();
  if (!problems.empty()) {
    throw SimError("dataflow graph invalid: " + problems.front());
  }
  std::map<std::string, Word> bound(inputs.begin(), inputs.end());
  const auto order = graph.topological_order();
  std::vector<Word> value(static_cast<std::size_t>(graph.node_count()), 0);
  for (NodeId id : *order) {
    const Node& node = graph.node(id);
    if (node.op == Op::Input) {
      const auto it = bound.find(node.name);
      if (it == bound.end()) {
        throw SimError("dataflow: missing input '" + node.name + "'");
      }
      value[static_cast<std::size_t>(id)] = it->second;
      continue;
    }
    std::vector<Word> operands;
    operands.reserve(node.inputs.size());
    for (NodeId producer : node.inputs) {
      operands.push_back(value[static_cast<std::size_t>(producer)]);
    }
    value[static_cast<std::size_t>(id)] = apply_op(node, operands);
  }
  std::vector<std::pair<std::string, Word>> outputs;
  for (NodeId id : graph.output_nodes()) {
    outputs.emplace_back(graph.node(id).name,
                         value[static_cast<std::size_t>(id)]);
  }
  return outputs;
}

}  // namespace mpct::sim::df
