#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/dataflow/graph.hpp"

namespace mpct::sim::df {

/// Diagnostic from the expression compiler.
struct ExprError {
  int position = 0;  ///< character offset into the source
  std::string message;
  std::string to_string() const {
    return "offset " + std::to_string(position) + ": " + message;
  }
};

/// Result of compiling an expression program.
struct ExprResult {
  Graph graph;
  std::vector<ExprError> errors;
  bool ok() const { return errors.empty(); }
};

/// Compile a small expression language into a dataflow graph — the
/// front-end for the token machines and the CGRA mapper.
///
/// A program is a sequence of assignments separated by ';' or newlines:
///
///   acc = a*x + y;
///   out = acc < limit ? acc : limit
///
/// Semantics:
///  * every assigned name becomes a graph *output* and is usable in
///    later statements;
///  * every name used before assignment becomes a graph *input*;
///  * operators (loosest to tightest): ?: | ^ & < (Lt) << >> + - * /
///    unary-minus; parentheses group; min(a,b) / max(a,b) are builtin;
///  * integer literals only ('#' comments run to end of line).
ExprResult compile_expression(std::string_view source);

/// Compile or throw SimError listing the diagnostics.
Graph compile_expression_or_throw(std::string_view source);

}  // namespace mpct::sim::df
