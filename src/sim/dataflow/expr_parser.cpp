#include "sim/dataflow/expr_parser.hpp"

#include <cctype>
#include <map>
#include <optional>

#include "sim/memory.hpp"

namespace mpct::sim::df {

namespace {

enum class TokenKind : std::uint8_t {
  End,
  Number,
  Ident,
  Plus,
  Minus,
  Star,
  Slash,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  Lt,
  Question,
  Colon,
  Assign,
  Semicolon,
  LParen,
  RParen,
  Comma,
};

struct Token {
  TokenKind kind = TokenKind::End;
  Word number = 0;
  std::string ident;
  int position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Token next() {
    skip_space();
    Token token;
    token.position = static_cast<int>(pos_);
    if (pos_ >= source_.size()) return token;  // End
    const char c = source_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Word value = 0;
      while (pos_ < source_.size() &&
             std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
        value = value * 10 + (source_[pos_++] - '0');
      }
      token.kind = TokenKind::Number;
      token.number = value;
      return token;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        name += source_[pos_++];
      }
      token.kind = TokenKind::Ident;
      token.ident = std::move(name);
      return token;
    }
    ++pos_;
    switch (c) {
      case '+':
        token.kind = TokenKind::Plus;
        return token;
      case '-':
        token.kind = TokenKind::Minus;
        return token;
      case '*':
        token.kind = TokenKind::Star;
        return token;
      case '/':
        token.kind = TokenKind::Slash;
        return token;
      case '&':
        token.kind = TokenKind::Amp;
        return token;
      case '|':
        token.kind = TokenKind::Pipe;
        return token;
      case '^':
        token.kind = TokenKind::Caret;
        return token;
      case '?':
        token.kind = TokenKind::Question;
        return token;
      case ':':
        token.kind = TokenKind::Colon;
        return token;
      case '=':
        token.kind = TokenKind::Assign;
        return token;
      case ';':
      case '\n':
        token.kind = TokenKind::Semicolon;
        return token;
      case '(':
        token.kind = TokenKind::LParen;
        return token;
      case ')':
        token.kind = TokenKind::RParen;
        return token;
      case ',':
        token.kind = TokenKind::Comma;
        return token;
      case '<':
        if (pos_ < source_.size() && source_[pos_] == '<') {
          ++pos_;
          token.kind = TokenKind::Shl;
        } else {
          token.kind = TokenKind::Lt;
        }
        return token;
      case '>':
        if (pos_ < source_.size() && source_[pos_] == '>') {
          ++pos_;
          token.kind = TokenKind::Shr;
          return token;
        }
        break;
      default:
        break;
    }
    token.kind = TokenKind::End;
    token.ident = std::string(1, c);
    token.position = static_cast<int>(pos_ - 1);
    bad_char_ = true;
    return token;
  }

  bool saw_bad_char() const { return bad_char_; }

 private:
  void skip_space() {
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '#') {  // comment to end of line
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
        continue;
      }
      // Newlines are statement separators, not whitespace.
      if (c == '\n') break;
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      break;
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  bool bad_char_ = false;
};

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) { advance(); }

  ExprResult run() {
    while (current_.kind != TokenKind::End) {
      if (current_.kind == TokenKind::Semicolon) {
        advance();
        continue;
      }
      parse_statement();
      if (!result_.errors.empty()) break;  // first error wins: positions stay exact
    }
    if (lexer_.saw_bad_char() && result_.errors.empty()) {
      error("unexpected character");
    }
    return std::move(result_);
  }

 private:
  void parse_statement() {
    if (current_.kind != TokenKind::Ident) {
      error("expected an assignment 'name = expr'");
      return;
    }
    const std::string name = current_.ident;
    advance();
    if (current_.kind != TokenKind::Assign) {
      error("expected '=' after '" + name + "'");
      return;
    }
    advance();
    const std::optional<NodeId> value = parse_ternary();
    if (!value) return;
    if (defined_.count(name)) {
      error("'" + name + "' assigned twice");
      return;
    }
    defined_[name] = *value;
    result_.graph.add_output(name, *value);
  }

  std::optional<NodeId> parse_ternary() {
    const std::optional<NodeId> cond = parse_binary(0);
    if (!cond || current_.kind != TokenKind::Question) return cond;
    advance();
    const std::optional<NodeId> if_true = parse_ternary();
    if (!if_true) return std::nullopt;
    if (current_.kind != TokenKind::Colon) {
      error("expected ':' in conditional");
      return std::nullopt;
    }
    advance();
    const std::optional<NodeId> if_false = parse_ternary();
    if (!if_false) return std::nullopt;
    return result_.graph.add_select(*cond, *if_true, *if_false);
  }

  /// Binary operators by precedence level (loosest first).
  std::optional<NodeId> parse_binary(int level) {
    struct Level {
      TokenKind kinds[2];
      Op ops[2];
      int arity;  ///< how many kinds are meaningful at this level
    };
    static const Level kLevels[] = {
        {{TokenKind::Pipe, TokenKind::Pipe}, {Op::Or, Op::Or}, 1},
        {{TokenKind::Caret, TokenKind::Caret}, {Op::Xor, Op::Xor}, 1},
        {{TokenKind::Amp, TokenKind::Amp}, {Op::And, Op::And}, 1},
        {{TokenKind::Lt, TokenKind::Lt}, {Op::Lt, Op::Lt}, 1},
        {{TokenKind::Shl, TokenKind::Shr}, {Op::Shl, Op::Shr}, 2},
        {{TokenKind::Plus, TokenKind::Minus}, {Op::Add, Op::Sub}, 2},
        {{TokenKind::Star, TokenKind::Slash}, {Op::Mul, Op::Divs}, 2},
    };
    constexpr int kDeepest = static_cast<int>(std::size(kLevels));
    if (level >= kDeepest) return parse_unary();

    const Level& spec = kLevels[level];
    std::optional<NodeId> left = parse_binary(level + 1);
    while (left) {
      int match = -1;
      for (int k = 0; k < spec.arity; ++k) {
        if (current_.kind == spec.kinds[k]) match = k;
      }
      if (match < 0) break;
      advance();
      const std::optional<NodeId> right = parse_binary(level + 1);
      if (!right) return std::nullopt;
      left = result_.graph.add_op(spec.ops[match], *left, *right);
    }
    return left;
  }

  std::optional<NodeId> parse_unary() {
    if (current_.kind == TokenKind::Minus) {
      advance();
      const std::optional<NodeId> operand = parse_unary();
      if (!operand) return std::nullopt;
      return result_.graph.add_op(Op::Sub, zero(), *operand);
    }
    return parse_primary();
  }

  std::optional<NodeId> parse_primary() {
    switch (current_.kind) {
      case TokenKind::Number: {
        const Word value = current_.number;
        advance();
        return result_.graph.add_const(value);
      }
      case TokenKind::LParen: {
        advance();
        const std::optional<NodeId> inner = parse_ternary();
        if (!inner) return std::nullopt;
        if (current_.kind != TokenKind::RParen) {
          error("expected ')'");
          return std::nullopt;
        }
        advance();
        return inner;
      }
      case TokenKind::Ident: {
        const std::string name = current_.ident;
        advance();
        if ((name == "min" || name == "max") &&
            current_.kind == TokenKind::LParen) {
          advance();
          const std::optional<NodeId> a = parse_ternary();
          if (!a) return std::nullopt;
          if (current_.kind != TokenKind::Comma) {
            error("expected ',' in " + name + "()");
            return std::nullopt;
          }
          advance();
          const std::optional<NodeId> b = parse_ternary();
          if (!b) return std::nullopt;
          if (current_.kind != TokenKind::RParen) {
            error("expected ')' in " + name + "()");
            return std::nullopt;
          }
          advance();
          return result_.graph.add_op(name == "min" ? Op::Min : Op::Max,
                                      *a, *b);
        }
        return variable(name);
      }
      default:
        error("expected a value");
        return std::nullopt;
    }
  }

  NodeId variable(const std::string& name) {
    const auto defined = defined_.find(name);
    if (defined != defined_.end()) return defined->second;
    const auto input = inputs_.find(name);
    if (input != inputs_.end()) return input->second;
    const NodeId id = result_.graph.add_input(name);
    inputs_[name] = id;
    return id;
  }

  NodeId zero() {
    if (zero_ < 0) zero_ = result_.graph.add_const(0);
    return zero_;
  }

  void advance() { current_ = lexer_.next(); }

  void error(std::string message) {
    result_.errors.push_back({current_.position, std::move(message)});
  }

  Lexer lexer_;
  Token current_;
  ExprResult result_;
  std::map<std::string, NodeId> defined_;
  std::map<std::string, NodeId> inputs_;
  NodeId zero_ = -1;
};

}  // namespace

ExprResult compile_expression(std::string_view source) {
  return Parser(source).run();
}

Graph compile_expression_or_throw(std::string_view source) {
  ExprResult result = compile_expression(source);
  if (!result.ok()) {
    std::string message = "expression compilation failed:";
    for (const ExprError& error : result.errors) {
      message += "\n  " + error.to_string();
    }
    throw SimError(message);
  }
  return std::move(result.graph);
}

}  // namespace mpct::sim::df
