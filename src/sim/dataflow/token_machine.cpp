#include "sim/dataflow/token_machine.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "sim/memory.hpp"

namespace mpct::sim::df {

TokenMachineConfig TokenMachineConfig::uniprocessor() {
  TokenMachineConfig config;
  config.pes = 1;
  return config;
}

TokenMachineConfig TokenMachineConfig::for_subtype(int subtype, int pes) {
  if (subtype < 1 || subtype > 4) {
    throw std::invalid_argument("DMP subtype must be 1..4");
  }
  TokenMachineConfig config;
  config.pes = pes;
  const int bits = subtype - 1;
  config.dp_dm =
      (bits & 2) ? mpct::SwitchKind::Crossbar : mpct::SwitchKind::Direct;
  config.dp_dp =
      (bits & 1) ? mpct::SwitchKind::Crossbar : mpct::SwitchKind::None;
  return config;
}

int TokenMachineConfig::subtype() const {
  if (pes <= 1) return 0;
  return 1 + 2 * (dp_dm == mpct::SwitchKind::Crossbar ? 1 : 0) +
         (dp_dp == mpct::SwitchKind::Crossbar ? 1 : 0);
}

TokenMachine::TokenMachine(const Graph& graph, TokenMachineConfig config)
    : graph_(graph), config_(config) {
  if (config_.pes < 1) {
    throw std::invalid_argument("TokenMachine needs >= 1 PE");
  }
  const std::vector<std::string> problems = graph_.validate();
  if (!problems.empty()) {
    throw SimError("dataflow graph invalid: " + problems.front());
  }

  const int n = graph_.node_count();
  placement_.assign(static_cast<std::size_t>(n), 0);
  if (config_.pes == 1) return;

  const bool isolated = config_.dp_dp == mpct::SwitchKind::None &&
                        config_.dp_dm == mpct::SwitchKind::Direct;
  const std::vector<int> component = graph_.components();
  const int components =
      component.empty()
          ? 0
          : 1 + *std::max_element(component.begin(), component.end());
  if (isolated || components >= config_.pes) {
    // DMP-I has no inter-PE path, so whole connected components are the
    // only possible placement unit.  The flexible sub-types use the same
    // placement whenever it already saturates the PEs: component-local
    // schedules avoid all transfer latency, so a more flexible machine
    // never loses to DMP-I on component-parallel workloads.
    for (NodeId id = 0; id < n; ++id) {
      placement_[static_cast<std::size_t>(id)] =
          component[static_cast<std::size_t>(id)] % config_.pes;
    }
  } else {
    // Fewer components than PEs: spread nodes round-robin over the
    // topological order to expose intra-component parallelism (only the
    // sub-types with an inter-PE path ever get here).
    const auto order = graph_.topological_order();
    int index = 0;
    for (NodeId id : *order) {
      placement_[static_cast<std::size_t>(id)] = index++ % config_.pes;
    }
  }
}

DataflowRunResult TokenMachine::run(
    const std::vector<std::pair<std::string, Word>>& inputs,
    std::int64_t max_cycles) const {
  const int n = graph_.node_count();
  const std::map<std::string, Word> bound(inputs.begin(), inputs.end());

  // Edge latency between producer u and consumer v.
  const auto transfer = [&](NodeId u, NodeId v) -> std::int64_t {
    if (placement_[static_cast<std::size_t>(u)] ==
        placement_[static_cast<std::size_t>(v)]) {
      return 0;
    }
    // Global inputs: with a DP-DM crossbar every PE reads external
    // inputs directly from memory.
    if (graph_.node(u).op == Op::Input &&
        config_.dp_dm == mpct::SwitchKind::Crossbar) {
      return 0;
    }
    if (config_.dp_dp == mpct::SwitchKind::Crossbar) {
      return config_.cross_latency;
    }
    if (config_.dp_dm == mpct::SwitchKind::Crossbar) {
      return config_.memory_latency;
    }
    throw SimError(
        "DMP-I token crossed PEs: placement must keep components local");
  };

  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
  // arrival[v][k]: cycle at which operand k of node v holds a token.
  std::vector<std::vector<std::int64_t>> arrival(
      static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    arrival[static_cast<std::size_t>(id)].assign(
        graph_.node(id).inputs.size(), kNever);
  }
  std::vector<Word> value(static_cast<std::size_t>(n), 0);
  std::vector<bool> fired(static_cast<std::size_t>(n), false);
  // consumers[u]: list of (consumer, operand index).
  std::vector<std::vector<std::pair<NodeId, int>>> consumers(
      static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = graph_.node(id);
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      consumers[static_cast<std::size_t>(node.inputs[k])].push_back(
          {id, static_cast<int>(k)});
    }
  }

  DataflowRunResult result;
  result.placement = placement_;

  std::int64_t cycle = 0;
  int remaining = n;
  while (remaining > 0 && cycle < max_cycles) {
    // Each PE fires its lowest-numbered ready node this cycle.
    std::vector<NodeId> firing;
    std::vector<bool> pe_busy(static_cast<std::size_t>(config_.pes), false);
    for (NodeId id = 0; id < n; ++id) {
      if (fired[static_cast<std::size_t>(id)]) continue;
      const int pe = placement_[static_cast<std::size_t>(id)];
      if (pe_busy[static_cast<std::size_t>(pe)]) continue;
      bool ready = true;
      for (std::int64_t at : arrival[static_cast<std::size_t>(id)]) {
        if (at > cycle) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      firing.push_back(id);
      pe_busy[static_cast<std::size_t>(pe)] = true;
    }

    if (firing.empty()) {
      // Nothing ready: fast-forward to the next token arrival.
      std::int64_t next = kNever;
      for (NodeId id = 0; id < n; ++id) {
        if (fired[static_cast<std::size_t>(id)]) continue;
        std::int64_t node_ready = cycle;
        bool possible = true;
        for (std::int64_t at : arrival[static_cast<std::size_t>(id)]) {
          if (at == kNever) {
            possible = false;
            break;
          }
          node_ready = std::max(node_ready, at);
        }
        if (possible) next = std::min(next, node_ready);
      }
      if (next == kNever) {
        throw SimError("token machine stalled: tokens can never arrive");
      }
      cycle = next;
      continue;
    }

    for (NodeId id : firing) {
      const Node& node = graph_.node(id);
      Word out;
      if (node.op == Op::Input) {
        const auto it = bound.find(node.name);
        if (it == bound.end()) {
          throw SimError("dataflow: missing input '" + node.name + "'");
        }
        out = it->second;
      } else {
        std::vector<Word> operands;
        operands.reserve(node.inputs.size());
        for (NodeId producer : node.inputs) {
          operands.push_back(value[static_cast<std::size_t>(producer)]);
        }
        out = apply_op(node, operands);
      }
      value[static_cast<std::size_t>(id)] = out;
      fired[static_cast<std::size_t>(id)] = true;
      --remaining;
      ++result.stats.instructions;
      const std::int64_t done = cycle + 1;
      result.stats.cycles = std::max(result.stats.cycles, done);
      for (const auto& [consumer, operand] :
           consumers[static_cast<std::size_t>(id)]) {
        arrival[static_cast<std::size_t>(consumer)]
               [static_cast<std::size_t>(operand)] =
                   done + transfer(id, consumer);
      }
    }
    ++cycle;
  }

  result.stats.halted = remaining == 0;
  for (NodeId id : graph_.output_nodes()) {
    result.outputs.emplace_back(graph_.node(id).name,
                                value[static_cast<std::size_t>(id)]);
    result.stats.output.push_back(value[static_cast<std::size_t>(id)]);
  }
  return result;
}

}  // namespace mpct::sim::df
