#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/word.hpp"

namespace mpct::sim {

/// One memory bank (an IM or DM block of the taxonomy).  Bounds-checked;
/// out-of-range access throws SimError carrying the bank name so machine
/// traps diagnose cleanly.  Access counters feed the simulators' run
/// statistics.
class Memory {
 public:
  Memory(std::string name, std::size_t words);

  const std::string& name() const { return name_; }
  std::size_t size() const { return data_.size(); }

  Word load(std::size_t address) const;
  void store(std::size_t address, Word value);

  /// Bulk initialise from a vector (shorter data leaves the tail zero).
  void fill(const std::vector<Word>& data);

  /// Raw read-only view for test assertions.
  const std::vector<Word>& data() const { return data_; }

  std::size_t loads() const { return loads_; }
  std::size_t stores() const { return stores_; }
  void reset_counters();

 private:
  std::string name_;
  std::vector<Word> data_;
  mutable std::size_t loads_ = 0;
  std::size_t stores_ = 0;
};

/// Error thrown by simulators on structural violations: out-of-range
/// memory access, use of a connectivity the machine class does not have
/// (e.g. lane shuffle on an IAP-I), malformed programs.
class SimError : public std::exception {
 public:
  explicit SimError(std::string message) : message_(std::move(message)) {}
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

}  // namespace mpct::sim
