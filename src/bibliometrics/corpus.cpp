#include "bibliometrics/corpus.hpp"

#include <array>
#include <cmath>

#include "interconnect/traffic.hpp"

namespace mpct::biblio {

namespace {

constexpr std::array<std::string_view, 8> kTitlePatterns{
    "A Study of %K Architectures",
    "Towards Scalable %K Systems",
    "Energy-Efficient %K Design",
    "On the Performance of %K Applications",
    "%K: Challenges and Opportunities",
    "A Survey of %K Techniques",
    "Compiling for %K Platforms",
    "Evaluating %K Workloads",
};

constexpr std::array<std::string_view, 6> kVenues{
    "ISCA", "MICRO", "FPL", "DAC", "IPDPS", "FCCM",
};

std::string make_title(std::string_view pattern, std::string_view keyword) {
  std::string title(pattern);
  const std::size_t pos = title.find("%K");
  if (pos != std::string::npos) {
    title.replace(pos, 2, keyword);
  }
  return title;
}

}  // namespace

Corpus::Corpus(std::span<const TopicModel> topics, const CorpusParams& params)
    : params_(params) {
  interconnect::Rng rng(params.seed);
  std::int64_t next_id = 1;
  for (const TopicModel& topic : topics) {
    for (int year = params.first_year; year <= params.last_year; ++year) {
      const double expected = topic.expected(year);
      // Bounded multiplicative noise keeps counts non-negative and the
      // curve shape intact.
      const double factor =
          1.0 + topic.noise * (2.0 * rng.next_double() - 1.0);
      const int count =
          static_cast<int>(std::llround(std::max(0.0, expected * factor)));
      for (int i = 0; i < count; ++i) {
        Publication pub;
        pub.id = next_id++;
        pub.year = year;
        pub.title = make_title(
            kTitlePatterns[rng.next_below(kTitlePatterns.size())],
            topic.name);
        pub.venue = std::string(kVenues[rng.next_below(kVenues.size())]);
        pub.keywords = {topic.keyword};
        // A slice of reconfigurable/CGRA/FPGA papers also tag the broad
        // "parallel" keyword, as real indexes do.
        if (topic.keyword != "parallel" && rng.next_double() < 0.2) {
          pub.keywords.emplace_back("parallel");
        }
        publications_.push_back(std::move(pub));
      }
    }
  }
}

Corpus Corpus::standard(std::uint64_t seed) {
  CorpusParams params;
  params.seed = seed;
  return Corpus(default_topics(), params);
}

}  // namespace mpct::biblio
