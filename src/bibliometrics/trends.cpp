#include "bibliometrics/trends.hpp"

#include <algorithm>

namespace mpct::biblio {

std::vector<TrendSeries> research_trends(const QueryEngine& engine) {
  std::vector<TrendSeries> out;
  for (const TopicModel& topic : default_topics()) {
    TrendSeries series;
    series.topic = topic.name;
    for (int year = engine.first_year(); year <= engine.last_year();
         ++year) {
      series.years.push_back(year);
      series.counts.push_back(engine.count(topic.keyword, year));
    }
    // "parallel" is also tagged on a slice of the narrower topics'
    // papers; keep the broad series as the pure topic count by querying
    // the conjunction-free keyword — already done above.  Narrow topics
    // use their own keyword, so series do not double count.
    out.push_back(std::move(series));
  }
  return out;
}

double average_slope(const TrendSeries& series, int from_year, int to_year) {
  double sum = 0;
  int steps = 0;
  for (std::size_t i = 1; i < series.years.size(); ++i) {
    const int year = series.years[i];
    if (year <= from_year || year > to_year) continue;
    sum += series.counts[i] - series.counts[i - 1];
    ++steps;
  }
  return steps == 0 ? 0.0 : sum / steps;
}

bool took_off(const TrendSeries& series, int pivot_year, double factor) {
  if (series.years.empty()) return false;
  const int first = series.years.front();
  const int last = series.years.back();
  const double before = average_slope(series, first, pivot_year);
  const double after = average_slope(series, pivot_year, last);
  if (after <= 0) return false;
  if (before <= 0) return true;  // flat or shrinking before, growing after
  return after >= factor * before;
}

}  // namespace mpct::biblio
