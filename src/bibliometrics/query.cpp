#include "bibliometrics/query.hpp"

#include <algorithm>

namespace mpct::biblio {

QueryEngine::QueryEngine(const Corpus& corpus)
    : corpus_(corpus),
      first_year_(corpus.params().first_year),
      last_year_(corpus.params().last_year) {
  for (const Publication& pub : corpus_.publications()) {
    year_of_[pub.id] = pub.year;
    for (const std::string& keyword : pub.keywords) {
      ++index_[keyword][pub.year];
      postings_[keyword].push_back(pub.id);
    }
  }
}

int QueryEngine::count(std::string_view keyword, int year) const {
  const auto it = index_.find(keyword);
  if (it == index_.end()) return 0;
  const auto year_it = it->second.find(year);
  return year_it == it->second.end() ? 0 : year_it->second;
}

int QueryEngine::total(std::string_view keyword) const {
  const auto it = index_.find(keyword);
  if (it == index_.end()) return 0;
  int sum = 0;
  for (const auto& [year, count] : it->second) sum += count;
  return sum;
}

std::vector<int> QueryEngine::yearly_counts(std::string_view keyword) const {
  std::vector<int> counts;
  counts.reserve(static_cast<std::size_t>(last_year_ - first_year_ + 1));
  for (int year = first_year_; year <= last_year_; ++year) {
    counts.push_back(count(keyword, year));
  }
  return counts;
}

int QueryEngine::count_all_of(const std::vector<std::string>& keywords,
                              int year) const {
  if (keywords.empty()) return 0;
  // Intersect postings lists (they are sorted by construction: ids are
  // assigned in increasing order).
  std::vector<std::int64_t> current;
  bool first = true;
  for (const std::string& keyword : keywords) {
    const auto it = postings_.find(keyword);
    if (it == postings_.end()) return 0;
    if (first) {
      current = it->second;
      first = false;
      continue;
    }
    std::vector<std::int64_t> merged;
    std::set_intersection(current.begin(), current.end(),
                          it->second.begin(), it->second.end(),
                          std::back_inserter(merged));
    current = std::move(merged);
  }
  return static_cast<int>(
      std::count_if(current.begin(), current.end(), [&](std::int64_t id) {
        const auto it = year_of_.find(id);
        return it != year_of_.end() && it->second == year;
      }));
}

std::vector<std::string> QueryEngine::keywords() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [keyword, counts] : index_) out.push_back(keyword);
  return out;
}

}  // namespace mpct::biblio
