#pragma once

#include <string>
#include <vector>

#include "bibliometrics/query.hpp"

namespace mpct::biblio {

/// One topic's publication-count series over the corpus years.
struct TrendSeries {
  std::string topic;
  std::vector<int> years;
  std::vector<int> counts;
};

/// Build the Figure 1 series: per default topic, publications per year.
std::vector<TrendSeries> research_trends(const QueryEngine& engine);

/// Average year-over-year growth of a series within [from_year, to_year]
/// (publications per year per year).
double average_slope(const TrendSeries& series, int from_year, int to_year);

/// The trend claim of Section I, made checkable: a topic "took off" when
/// its average slope in the last @p window years exceeds the average
/// slope before that by at least @p factor.
bool took_off(const TrendSeries& series, int pivot_year, double factor = 2.0);

}  // namespace mpct::biblio
