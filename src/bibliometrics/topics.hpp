#pragma once

#include <span>
#include <string>
#include <vector>

namespace mpct::biblio {

/// Growth model of one research topic: a logistic curve
/// count(year) = base + L / (1 + exp(-k * (year - midpoint)))
/// plus seeded noise — the standard S-shape of technology adoption that
/// publication counts follow.  Parameters are calibrated so the
/// *qualitative* shape of the paper's Figure 1 holds: parallel-computing
/// output is large and steady, while multicore and reconfigurable
/// computing take off sharply after ~2005.
struct TopicModel {
  std::string name;       ///< e.g. "multicore"
  std::string keyword;    ///< index keyword used in synthesized titles
  double base = 0;        ///< floor publications per year
  double saturation = 0;  ///< L: additional publications at saturation
  double steepness = 0;   ///< k
  double midpoint = 0;    ///< inflection year
  double noise = 0.05;    ///< relative noise amplitude

  /// Expected publications in @p year (noise-free).
  double expected(int year) const;
};

/// The six topics the Figure 1 reproduction tracks.
std::span<const TopicModel> default_topics();

/// Look up a topic by name (nullptr if absent).
const TopicModel* find_topic(std::string_view name);

}  // namespace mpct::biblio
