#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bibliometrics/topics.hpp"

namespace mpct::biblio {

/// One synthetic publication record.
struct Publication {
  std::int64_t id = 0;
  int year = 0;
  std::string title;
  std::string venue;
  std::vector<std::string> keywords;
};

/// Parameters of corpus generation.
struct CorpusParams {
  int first_year = 1995;
  int last_year = 2010;
  std::uint64_t seed = 42;
};

/// The synthetic stand-in for the IEEE publication database the paper
/// queried for Figure 1.  Generation is fully deterministic in the seed:
/// per (topic, year) the publication count is the topic model's expected
/// value perturbed by bounded noise, and each record receives a
/// template-synthesized title, a venue and its topic keywords.
class Corpus {
 public:
  Corpus(std::span<const TopicModel> topics, const CorpusParams& params);

  /// Convenience: default topics and parameters.
  static Corpus standard(std::uint64_t seed = 42);

  const CorpusParams& params() const { return params_; }
  const std::vector<Publication>& publications() const {
    return publications_;
  }
  std::size_t size() const { return publications_.size(); }

 private:
  CorpusParams params_;
  std::vector<Publication> publications_;
};

}  // namespace mpct::biblio
