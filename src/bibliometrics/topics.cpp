#include "bibliometrics/topics.hpp"

#include <cmath>

namespace mpct::biblio {

double TopicModel::expected(int year) const {
  return base +
         saturation / (1.0 + std::exp(-steepness * (year - midpoint)));
}

std::span<const TopicModel> default_topics() {
  static const std::vector<TopicModel> topics{
      // name, keyword, base, saturation, steepness, midpoint, noise
      {"parallel computing", "parallel", 180, 260, 0.30, 2004, 0.05},
      {"multicore", "multicore", 2, 520, 0.90, 2007, 0.08},
      {"reconfigurable computing", "reconfigurable", 25, 300, 0.55, 2006,
       0.06},
      {"FPGA", "fpga", 45, 330, 0.40, 2005, 0.05},
      {"CGRA", "cgra", 3, 90, 0.55, 2007, 0.10},
      {"GPU computing", "gpu", 1, 260, 0.80, 2008, 0.08},
  };
  return topics;
}

const TopicModel* find_topic(std::string_view name) {
  for (const TopicModel& topic : default_topics()) {
    if (topic.name == name) return &topic;
  }
  return nullptr;
}

}  // namespace mpct::biblio
