#pragma once

#include <map>
#include <string>
#include <vector>

#include "bibliometrics/corpus.hpp"

namespace mpct::biblio {

/// Inverted-index query engine over a corpus — the computation the
/// paper's authors ran against the IEEE database ("compiled using IEEE
/// Database", Fig. 1 caption): keyword -> per-year publication counts.
class QueryEngine {
 public:
  explicit QueryEngine(const Corpus& corpus);

  /// Publications tagged with @p keyword in @p year.
  int count(std::string_view keyword, int year) const;

  /// Publications tagged with @p keyword across all years.
  int total(std::string_view keyword) const;

  /// Per-year counts over the corpus year range (inclusive), one entry
  /// per year in order.
  std::vector<int> yearly_counts(std::string_view keyword) const;

  /// Publications carrying *all* the given keywords in @p year.
  int count_all_of(const std::vector<std::string>& keywords, int year) const;

  /// Distinct keywords in the index.
  std::vector<std::string> keywords() const;

  int first_year() const { return first_year_; }
  int last_year() const { return last_year_; }

 private:
  const Corpus& corpus_;
  int first_year_;
  int last_year_;
  /// keyword -> year -> count.
  std::map<std::string, std::map<int, int>, std::less<>> index_;
  /// keyword -> publication ids (for conjunctive queries).
  std::map<std::string, std::vector<std::int64_t>, std::less<>> postings_;
  /// publication id -> year.
  std::map<std::int64_t, int> year_of_;
};

}  // namespace mpct::biblio
