#pragma once

#include <cstdint>

#include "arch/spec.hpp"
#include "core/machine_class.hpp"
#include "cost/component_library.hpp"
#include "cost/technology.hpp"

namespace mpct::cost {

/// Bindings that turn symbolic multiplicities into concrete counts when
/// evaluating the predictive equations.
struct EstimateOptions {
  std::int64_t n = 16;   ///< value substituted for 'n' / Multiplicity::Many
  std::int64_t m = 16;   ///< value substituted for the second symbol 'm'
  std::int64_t v = 256;  ///< block count assumed for variable-count fabrics
  /// Eq. 1 and Eq. 2 as printed in the paper have no A_IP-DP / CW_IP-DP
  /// term; set true to add it (the "extended" model the ablation bench
  /// compares against).
  bool include_ip_dp_switch = false;

  friend bool operator==(const EstimateOptions&,
                         const EstimateOptions&) = default;
};

/// Term-by-term result of the Eq. 1 area prediction, in kGE.
struct AreaEstimate {
  // Block terms (N * A_X).
  double ip_blocks = 0;
  double im_blocks = 0;
  double dp_blocks = 0;
  double dm_blocks = 0;
  /// LUT block term for universal-flow fabrics (replaces the IP/DP/IM/DM
  /// block terms there: the fabric has v LUTs, not dedicated blocks).
  double lut_blocks = 0;
  // Switch terms (A_X-Y).
  double ip_ip_switch = 0;
  double ip_im_switch = 0;
  double ip_dp_switch = 0;  ///< only populated when the option enables it
  double dp_dm_switch = 0;
  double dp_dp_switch = 0;

  // Resolved counts, for reporting.
  std::int64_t n_ips = 0;
  std::int64_t n_dps = 0;
  std::int64_t n_ims = 0;
  std::int64_t n_dms = 0;
  std::int64_t n_luts = 0;

  double total_kge() const {
    return ip_blocks + im_blocks + dp_blocks + dm_blocks + lut_blocks +
           ip_ip_switch + ip_im_switch + ip_dp_switch + dp_dm_switch +
           dp_dp_switch;
  }
  double switch_kge() const {
    return ip_ip_switch + ip_im_switch + ip_dp_switch + dp_dm_switch +
           dp_dp_switch;
  }
  double total_mm2(const TechnologyNode& node) const {
    return node.kge_to_mm2(total_kge());
  }

  friend bool operator==(const AreaEstimate&, const AreaEstimate&) = default;
};

/// Evaluate Eq. 1 for an abstract machine class.  Multiplicity::Many
/// binds to options.n, Variable to options.v; LUT-grained fabrics charge
/// options.v LUT blocks plus the five crossbars over v ports.
AreaEstimate estimate_area(const MachineClass& mc,
                           const ComponentLibrary& lib,
                           const EstimateOptions& options = {});

/// Evaluate Eq. 1 for a concrete architecture spec.  Fixed counts and
/// connectivity endpoint counts are used exactly (e.g. Montium's 5x10
/// DP-DM crossbar really is 5x10); symbolic counts bind through
/// options.n / options.m.
AreaEstimate estimate_area(const arch::ArchitectureSpec& spec,
                           const ComponentLibrary& lib,
                           const EstimateOptions& options = {});

}  // namespace mpct::cost
