#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/spec.hpp"
#include "cost/config_bits.hpp"

namespace mpct::cost {

/// One field of a machine's configuration bitstream: which component it
/// programs, where it sits and how wide it is.
struct ConfigField {
  std::string component;  ///< e.g. "DP[3]", "DP-DP switch", "IM[0]"
  std::int64_t offset = 0;
  std::int64_t width = 0;

  std::int64_t end() const { return offset + width; }
};

/// The full configuration layout of a machine — Eq. 2 taken from a
/// total to a linker-map-level plan.  Fields are laid out in component
/// order (IPs, IMs, DPs, DMs / LUTs, then the four switch columns of
/// the printed equation, then the optional IP-DP term), contiguously
/// from offset 0.
struct ConfigMap {
  std::vector<ConfigField> fields;

  /// Total bitstream length; equals the Eq. 2 estimate by construction
  /// (asserted by the tests).
  std::int64_t total_bits() const;

  /// Field containing bit @p offset; nullptr when out of range (or the
  /// map is empty).
  const ConfigField* field_at(std::int64_t offset) const;

  /// Human-readable layout, one field per line.
  std::string to_string() const;
};

/// Plan the configuration bitstream of a concrete architecture at the
/// given design point.  Per-instance component fields are emitted
/// individually (so "DP[7]" is addressable), switch fields once per
/// column.
ConfigMap plan_config_map(const arch::ArchitectureSpec& spec,
                          const ComponentLibrary& lib,
                          const EstimateOptions& options = {});

/// Plan the layout of an abstract machine class.
ConfigMap plan_config_map(const MachineClass& mc,
                          const ComponentLibrary& lib,
                          const EstimateOptions& options = {});

}  // namespace mpct::cost
