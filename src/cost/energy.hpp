#pragma once

#include <cstdint>
#include <string>

#include "core/machine_class.hpp"

namespace mpct::cost {

/// Energy model complementing the area (Eq. 1) and configuration (Eq. 2)
/// predictors: the paper's introduction frames the whole CGRA field as a
/// search for the sweet spot between engineering and *computational
/// (energy) efficiency*, so the library makes that axis estimable too.
///
/// All figures in picojoules, defaults in the ballpark of published
/// 90 nm embedded numbers (an ALU op costs a few pJ, an SRAM access a
/// few times that, crossing a chip-level interconnect more again, and a
/// configuration-bit write is amortised over the run).
struct EnergyParams {
  double alu_op_pj = 3.0;        ///< one data-processor operation
  double control_op_pj = 1.0;    ///< IP sequencing overhead per instruction
  double memory_access_pj = 8.0; ///< one word read/written from a bank
  double hop_pj = 2.0;           ///< one interconnect traversal (per hop)
  double config_bit_pj = 0.3;    ///< writing one configuration bit
};

/// Tally of activity to price.  The paradigm simulators expose these
/// counts (RunStats::instructions, Memory::loads/stores, NoC hop counts,
/// Crossbar/LutFabric config_bits); the model deliberately takes plain
/// numbers so any activity source can be priced.
struct ActivityCounts {
  std::int64_t instructions = 0;    ///< executed instructions / firings
  std::int64_t memory_accesses = 0; ///< loads + stores across banks
  std::int64_t interconnect_hops = 0;
  std::int64_t config_bits_written = 0;

  ActivityCounts& operator+=(const ActivityCounts& other) {
    instructions += other.instructions;
    memory_accesses += other.memory_accesses;
    interconnect_hops += other.interconnect_hops;
    config_bits_written += other.config_bits_written;
    return *this;
  }
};

/// Term-by-term energy estimate in picojoules.
struct EnergyEstimate {
  double compute_pj = 0;
  double control_pj = 0;
  double memory_pj = 0;
  double interconnect_pj = 0;
  double configuration_pj = 0;

  double total_pj() const {
    return compute_pj + control_pj + memory_pj + interconnect_pj +
           configuration_pj;
  }
  double total_nj() const { return total_pj() / 1000.0; }

  std::string to_string() const;
};

/// Price an activity tally.  `has_instruction_processor` charges the
/// per-instruction control overhead (data-flow machines do not pay it:
/// their "instructions travel with the data", which the hop term prices
/// instead).
EnergyEstimate estimate_energy(const ActivityCounts& activity,
                               const EnergyParams& params = {},
                               bool has_instruction_processor = true);

/// Convenience: the amortised configuration energy of a machine class —
/// Eq. 2's bit count priced at config_bit_pj.  The flexibility trade-off
/// in joules: reconfigurable fabrics pay this once per configuration,
/// ASIC-like classes never do.
double configuration_energy_pj(std::int64_t config_bits,
                               const EnergyParams& params = {});

}  // namespace mpct::cost
