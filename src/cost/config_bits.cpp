#include "cost/config_bits.hpp"

#include "cost/resolve.hpp"

namespace mpct::cost {

namespace {

ConfigBitsEstimate estimate_from(const detail::ResolvedStructure& r,
                                 const ComponentLibrary& lib,
                                 const EstimateOptions& options) {
  ConfigBitsEstimate e;
  if (r.lut_grain) {
    e.lut_blocks = r.luts * lib.lut.config_bits;
  } else {
    e.ip_blocks = r.ips * lib.ip.config_bits;
    e.dp_blocks = r.dps * lib.dp.config_bits;
    e.im_blocks = r.ims * lib.im.config_bits;
    e.dm_blocks = r.dms * lib.dm.config_bits;
  }

  const auto cost = [&](ConnectivityRole role) {
    const auto& link = r.link(role);
    return switch_cost(link.kind, link.left, link.right,
                       r.lut_grain ? 1 : lib.data_width,
                       lib.switch_params)
        .config_bits;
  };
  e.ip_ip_switch = cost(ConnectivityRole::IpIp);
  e.ip_im_switch = cost(ConnectivityRole::IpIm);
  e.dp_dm_switch = cost(ConnectivityRole::DpDm);
  e.dp_dp_switch = cost(ConnectivityRole::DpDp);
  if (options.include_ip_dp_switch) {
    e.ip_dp_switch = cost(ConnectivityRole::IpDp);
  }
  return e;
}

}  // namespace

ConfigBitsEstimate estimate_config_bits(const MachineClass& mc,
                                        const ComponentLibrary& lib,
                                        const EstimateOptions& options) {
  return estimate_from(detail::resolve(mc, options), lib, options);
}

ConfigBitsEstimate estimate_config_bits(const arch::ArchitectureSpec& spec,
                                        const ComponentLibrary& lib,
                                        const EstimateOptions& options) {
  return estimate_from(detail::resolve(spec, options), lib, options);
}

}  // namespace mpct::cost
