#pragma once

#include <string>
#include <string_view>

namespace mpct::cost {

/// A CMOS technology node used to scale the component library's area
/// figures.  The library's baseline numbers are expressed in kilo
/// gate-equivalents (kGE), which are node-independent; converting to
/// silicon area multiplies by the node's gate density.
struct TechnologyNode {
  std::string name;        ///< e.g. "90nm"
  double feature_nm = 90;  ///< drawn feature size in nanometres
  /// Area of one 2-input NAND gate equivalent in square micrometres.
  /// Classic scaling: proportional to the square of the feature size.
  double um2_per_ge = 0;

  /// Convert a kGE figure to mm^2 at this node.
  double kge_to_mm2(double kge) const {
    return kge * 1000.0 * um2_per_ge * 1e-6;
  }
};

/// Standard nodes with gate densities following ideal quadratic scaling
/// from a 90 nm anchor of 2.5 um^2/GE (typical standard-cell figure).
TechnologyNode technology_node(std::string_view name);

/// The 90 nm default used throughout the benches.
TechnologyNode default_node();

}  // namespace mpct::cost
