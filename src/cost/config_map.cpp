#include "cost/config_map.hpp"

#include <sstream>

#include "cost/resolve.hpp"

namespace mpct::cost {

std::int64_t ConfigMap::total_bits() const {
  return fields.empty() ? 0 : fields.back().end();
}

const ConfigField* ConfigMap::field_at(std::int64_t offset) const {
  for (const ConfigField& field : fields) {
    if (offset >= field.offset && offset < field.end()) return &field;
  }
  return nullptr;
}

std::string ConfigMap::to_string() const {
  std::ostringstream os;
  for (const ConfigField& field : fields) {
    os << '[' << field.offset << ", " << field.end() << ") "
       << field.component << " (" << field.width << " bits)\n";
  }
  os << "total: " << total_bits() << " bits\n";
  return os.str();
}

namespace {

ConfigMap plan_from(const detail::ResolvedStructure& r,
                    const ComponentLibrary& lib,
                    const EstimateOptions& options) {
  ConfigMap map;
  std::int64_t cursor = 0;
  const auto emit = [&](std::string component, std::int64_t width) {
    if (width <= 0) return;
    map.fields.push_back({std::move(component), cursor, width});
    cursor += width;
  };

  if (r.lut_grain) {
    for (std::int64_t i = 0; i < r.luts; ++i) {
      emit("LUT[" + std::to_string(i) + "]", lib.lut.config_bits);
    }
  } else {
    for (std::int64_t i = 0; i < r.ips; ++i) {
      emit("IP[" + std::to_string(i) + "]", lib.ip.config_bits);
    }
    for (std::int64_t i = 0; i < r.ims; ++i) {
      emit("IM[" + std::to_string(i) + "]", lib.im.config_bits);
    }
    for (std::int64_t i = 0; i < r.dps; ++i) {
      emit("DP[" + std::to_string(i) + "]", lib.dp.config_bits);
    }
    for (std::int64_t i = 0; i < r.dms; ++i) {
      emit("DM[" + std::to_string(i) + "]", lib.dm.config_bits);
    }
  }

  const int width = r.lut_grain ? 1 : lib.data_width;
  const auto emit_switch = [&](ConnectivityRole role) {
    const auto& link = r.link(role);
    const std::int64_t bits =
        switch_cost(link.kind, link.left, link.right, width,
                    lib.switch_params)
            .config_bits;
    emit(std::string(to_string(role)) + " switch", bits);
  };
  // Eq. 2's term order: CW_IP-IP + CW_IP-IM ... + CW_DP-DP + CW_DP-DM.
  emit_switch(ConnectivityRole::IpIp);
  emit_switch(ConnectivityRole::IpIm);
  emit_switch(ConnectivityRole::DpDm);
  emit_switch(ConnectivityRole::DpDp);
  if (options.include_ip_dp_switch) {
    emit_switch(ConnectivityRole::IpDp);
  }
  return map;
}

}  // namespace

ConfigMap plan_config_map(const arch::ArchitectureSpec& spec,
                          const ComponentLibrary& lib,
                          const EstimateOptions& options) {
  return plan_from(detail::resolve(spec, options), lib, options);
}

ConfigMap plan_config_map(const MachineClass& mc,
                          const ComponentLibrary& lib,
                          const EstimateOptions& options) {
  return plan_from(detail::resolve(mc, options), lib, options);
}

}  // namespace mpct::cost
