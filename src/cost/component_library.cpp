#include "cost/component_library.hpp"

namespace mpct::cost {

ComponentLibrary ComponentLibrary::default_library() {
  ComponentLibrary lib;
  lib.name = "default";
  lib.ip = {25.0, 32};
  lib.dp = {10.0, 16};
  lib.im = {8.0, 8};
  lib.dm = {8.0, 8};
  lib.lut = {0.015, 20};
  lib.data_width = 32;
  return lib;
}

ComponentLibrary ComponentLibrary::embedded() {
  ComponentLibrary lib;
  lib.name = "embedded";
  lib.ip = {8.0, 16};
  lib.dp = {3.5, 12};
  lib.im = {4.0, 4};
  lib.dm = {4.0, 4};
  lib.lut = {0.012, 20};
  lib.data_width = 16;
  return lib;
}

ComponentLibrary ComponentLibrary::hpc() {
  ComponentLibrary lib;
  lib.name = "hpc";
  lib.ip = {120.0, 64};
  lib.dp = {40.0, 24};
  lib.im = {32.0, 8};
  lib.dm = {32.0, 8};
  lib.lut = {0.018, 24};
  lib.data_width = 64;
  return lib;
}

}  // namespace mpct::cost
