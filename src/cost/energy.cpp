#include "cost/energy.hpp"

#include <sstream>

namespace mpct::cost {

std::string EnergyEstimate::to_string() const {
  std::ostringstream os;
  os << total_pj() << " pJ (compute " << compute_pj << ", control "
     << control_pj << ", memory " << memory_pj << ", interconnect "
     << interconnect_pj << ", configuration " << configuration_pj << ")";
  return os.str();
}

EnergyEstimate estimate_energy(const ActivityCounts& activity,
                               const EnergyParams& params,
                               bool has_instruction_processor) {
  EnergyEstimate e;
  e.compute_pj = static_cast<double>(activity.instructions) * params.alu_op_pj;
  if (has_instruction_processor) {
    e.control_pj =
        static_cast<double>(activity.instructions) * params.control_op_pj;
  }
  e.memory_pj =
      static_cast<double>(activity.memory_accesses) * params.memory_access_pj;
  e.interconnect_pj =
      static_cast<double>(activity.interconnect_hops) * params.hop_pj;
  e.configuration_pj = static_cast<double>(activity.config_bits_written) *
                       params.config_bit_pj;
  return e;
}

double configuration_energy_pj(std::int64_t config_bits,
                               const EnergyParams& params) {
  return static_cast<double>(config_bits) * params.config_bit_pj;
}

}  // namespace mpct::cost
