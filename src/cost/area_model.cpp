#include "cost/area_model.hpp"

#include "cost/resolve.hpp"

namespace mpct::cost {

namespace detail {

namespace {

std::int64_t bind(Multiplicity mult, const EstimateOptions& options) {
  switch (mult) {
    case Multiplicity::Zero:
      return 0;
    case Multiplicity::One:
      return 1;
    case Multiplicity::Many:
      return options.n;
    case Multiplicity::Variable:
      return options.v;
  }
  return 0;
}

std::int64_t bind(const arch::Count& count, const EstimateOptions& options) {
  const auto value =
      count.evaluate({{'n', options.n}, {'m', options.m}});
  if (value) return *value;
  // Variable counts (and unbound symbols, which the two bindings above
  // preclude) fall back to the variable-fabric block budget.
  return options.v;
}

}  // namespace

ResolvedStructure resolve(const MachineClass& mc,
                          const EstimateOptions& options) {
  ResolvedStructure r;
  r.lut_grain = mc.granularity == Granularity::Lut;
  if (r.lut_grain) {
    r.luts = options.v;
    for (ConnectivityRole role : kAllConnectivityRoles) {
      auto& link = r.links[static_cast<std::size_t>(role)];
      link.kind = mc.switch_at(role);
      link.left = r.luts;
      link.right = r.luts;
    }
    return r;
  }

  r.ips = bind(mc.ips, options);
  r.dps = bind(mc.dps, options);
  r.ims = r.ips;
  r.dms = r.dps;
  const auto set = [&](ConnectivityRole role, std::int64_t left,
                       std::int64_t right) {
    auto& link = r.links[static_cast<std::size_t>(role)];
    link.kind = mc.switch_at(role);
    link.left = left;
    link.right = right;
  };
  set(ConnectivityRole::IpIp, r.ips, r.ips);
  set(ConnectivityRole::IpDp, r.ips, r.dps);
  set(ConnectivityRole::IpIm, r.ips, r.ims);
  set(ConnectivityRole::DpDm, r.dps, r.dms);
  set(ConnectivityRole::DpDp, r.dps, r.dps);
  return r;
}

ResolvedStructure resolve(const arch::ArchitectureSpec& spec,
                          const EstimateOptions& options) {
  ResolvedStructure r;
  r.lut_grain = spec.granularity == Granularity::Lut;
  r.ips = bind(spec.ips, options);
  r.dps = bind(spec.dps, options);
  if (r.lut_grain) {
    // For a LUT fabric the "ips"/"dps" of the survey row are both the
    // variable block pool; budget v blocks total.
    r.ips = 0;
    r.dps = 0;
    r.luts = options.v;
  }

  const auto endpoint = [&](const arch::Count& cell_count,
                            std::int64_t fallback) {
    const auto value =
        cell_count.evaluate({{'n', options.n}, {'m', options.m}});
    if (value) return *value;
    if (cell_count.kind() == arch::Count::Kind::Variable) {
      return r.lut_grain ? r.luts : options.v;
    }
    return fallback;
  };

  // Memory bank counts come from the connectivity cells where they are
  // concrete (Montium connects 5 DPs to 10 banks).
  const arch::ConnectivityExpr& ip_im = spec.at(ConnectivityRole::IpIm);
  const arch::ConnectivityExpr& dp_dm = spec.at(ConnectivityRole::DpDm);
  r.ims = ip_im.kind == SwitchKind::None ? r.ips : endpoint(ip_im.right, r.ips);
  r.dms = dp_dm.kind == SwitchKind::None ? r.dps : endpoint(dp_dm.right, r.dps);

  const auto set = [&](ConnectivityRole role, std::int64_t fallback_left,
                       std::int64_t fallback_right) {
    const arch::ConnectivityExpr& expr = spec.at(role);
    auto& link = r.links[static_cast<std::size_t>(role)];
    link.kind = expr.kind;
    if (expr.kind == SwitchKind::None) return;
    link.left = endpoint(expr.left, fallback_left);
    link.right = endpoint(expr.right, fallback_right);
  };
  const std::int64_t pool = r.lut_grain ? r.luts : 0;
  set(ConnectivityRole::IpIp, r.lut_grain ? pool : r.ips,
      r.lut_grain ? pool : r.ips);
  set(ConnectivityRole::IpDp, r.lut_grain ? pool : r.ips,
      r.lut_grain ? pool : r.dps);
  set(ConnectivityRole::IpIm, r.lut_grain ? pool : r.ips, r.ims);
  set(ConnectivityRole::DpDm, r.lut_grain ? pool : r.dps, r.dms);
  set(ConnectivityRole::DpDp, r.lut_grain ? pool : r.dps,
      r.lut_grain ? pool : r.dps);
  return r;
}

}  // namespace detail

namespace {

AreaEstimate estimate_from(const detail::ResolvedStructure& r,
                           const ComponentLibrary& lib,
                           const EstimateOptions& options) {
  AreaEstimate e;
  e.n_ips = r.ips;
  e.n_dps = r.dps;
  e.n_ims = r.ims;
  e.n_dms = r.dms;
  e.n_luts = r.luts;

  if (r.lut_grain) {
    e.lut_blocks = static_cast<double>(r.luts) * lib.lut.area_kge;
  } else {
    e.ip_blocks = static_cast<double>(r.ips) * lib.ip.area_kge;
    e.dp_blocks = static_cast<double>(r.dps) * lib.dp.area_kge;
    e.im_blocks = static_cast<double>(r.ims) * lib.im.area_kge;
    e.dm_blocks = static_cast<double>(r.dms) * lib.dm.area_kge;
  }

  const auto cost = [&](ConnectivityRole role) {
    const auto& link = r.link(role);
    return switch_cost(link.kind, link.left, link.right,
                       r.lut_grain ? 1 : lib.data_width,
                       lib.switch_params)
        .area_kge;
  };
  e.ip_ip_switch = cost(ConnectivityRole::IpIp);
  e.ip_im_switch = cost(ConnectivityRole::IpIm);
  e.dp_dm_switch = cost(ConnectivityRole::DpDm);
  e.dp_dp_switch = cost(ConnectivityRole::DpDp);
  // Eq. 1 as printed has no A_IP-DP term; the extended model adds it.
  if (options.include_ip_dp_switch) {
    e.ip_dp_switch = cost(ConnectivityRole::IpDp);
  }
  return e;
}

}  // namespace

AreaEstimate estimate_area(const MachineClass& mc,
                           const ComponentLibrary& lib,
                           const EstimateOptions& options) {
  return estimate_from(detail::resolve(mc, options), lib, options);
}

AreaEstimate estimate_area(const arch::ArchitectureSpec& spec,
                           const ComponentLibrary& lib,
                           const EstimateOptions& options) {
  return estimate_from(detail::resolve(spec, options), lib, options);
}

}  // namespace mpct::cost
