#pragma once

#include <cstdint>

#include "arch/spec.hpp"
#include "core/machine_class.hpp"
#include "cost/area_model.hpp"
#include "cost/component_library.hpp"

namespace mpct::cost {

/// Term-by-term result of the Eq. 2 configuration-bit prediction:
///
///   CB = N*CW_IP + N*CW_IM + CW_IP-IP + CW_IP-IM
///      + N*CW_DP + N*CW_DM + CW_DP-DP + CW_DP-DM
///
/// For data-flow machines the IP/IM terms vanish with the counts; for
/// universal-flow fabrics the block terms are v * CW_LUT.  Crossbar
/// switch terms are outputs * ceil(log2(inputs+1)) select bits, which the
/// executable interconnect::Crossbar stores verbatim — the tests
/// cross-check prediction against measured state.
struct ConfigBitsEstimate {
  std::int64_t ip_blocks = 0;
  std::int64_t im_blocks = 0;
  std::int64_t dp_blocks = 0;
  std::int64_t dm_blocks = 0;
  std::int64_t lut_blocks = 0;
  std::int64_t ip_ip_switch = 0;
  std::int64_t ip_im_switch = 0;
  std::int64_t ip_dp_switch = 0;  ///< only with options.include_ip_dp_switch
  std::int64_t dp_dm_switch = 0;
  std::int64_t dp_dp_switch = 0;

  std::int64_t total() const {
    return ip_blocks + im_blocks + dp_blocks + dm_blocks + lut_blocks +
           ip_ip_switch + ip_im_switch + ip_dp_switch + dp_dm_switch +
           dp_dp_switch;
  }
  std::int64_t switch_bits() const {
    return ip_ip_switch + ip_im_switch + ip_dp_switch + dp_dm_switch +
           dp_dp_switch;
  }

  friend bool operator==(const ConfigBitsEstimate&,
                         const ConfigBitsEstimate&) = default;
};

/// Evaluate Eq. 2 for an abstract machine class.
ConfigBitsEstimate estimate_config_bits(const MachineClass& mc,
                                        const ComponentLibrary& lib,
                                        const EstimateOptions& options = {});

/// Evaluate Eq. 2 for a concrete architecture spec.
ConfigBitsEstimate estimate_config_bits(const arch::ArchitectureSpec& spec,
                                        const ComponentLibrary& lib,
                                        const EstimateOptions& options = {});

}  // namespace mpct::cost
