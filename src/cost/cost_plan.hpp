#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "core/machine_class.hpp"
#include "cost/area_model.hpp"
#include "cost/component_library.hpp"
#include "cost/switch_cost.hpp"

namespace mpct::cost {

/// Both predictive equations evaluated at one bound design point.
struct CostPoint {
  double area_kge = 0;           ///< Eq. 1 total
  std::int64_t config_bits = 0;  ///< Eq. 2 total

  friend bool operator==(const CostPoint&, const CostPoint&) = default;
};

namespace detail {

/// Which design-point axis a symbolic count binds to (Many -> n,
/// Variable -> v, exactly as cost/resolve binds multiplicities).
enum class Bind : std::uint8_t { Zero, One, N, V };

inline std::int64_t bind_count(Bind bind, std::int64_t n, std::int64_t v) {
  switch (bind) {
    case Bind::Zero: return 0;
    case Bind::One:  return 1;
    case Bind::N:    return n;
    case Bind::V:    return v;
  }
  return 0;
}

/// One connectivity column, resolved to its switch kind and symbolic
/// endpoint populations.  Fixed slot order: IP-IP, IP-IM, IP-DP, DP-DM,
/// DP-DP (the Eq. 1 / Eq. 2 term order).
struct RoleTerm {
  SwitchKind kind = SwitchKind::None;
  Bind left = Bind::Zero;
  Bind right = Bind::Zero;
};

/// Every design-point-independent invariant of Eq. 1 / Eq. 2 for one
/// (class, library) pair, laid out flat: block coefficients as plain
/// doubles/ints, connectivity columns as five fixed slots of
/// (kind, left-bind, right-bind).  This is the unit the structure-of-
/// arrays batch kernels iterate over — evaluating a design point reads
/// only this struct plus (n, v), no pointer chasing into the class or
/// the library.
struct PlanTerms {
  bool lut_grain = false;
  Bind ips = Bind::Zero;
  Bind dps = Bind::One;
  double ip_area = 0, dp_area = 0, im_area = 0, dm_area = 0, lut_area = 0;
  std::int64_t ip_bits = 0, dp_bits = 0, im_bits = 0, dm_bits = 0,
               lut_bits = 0;
  int width = 32;  ///< datapath width the switches carry (1 for LUT grain)
  SwitchCostParams switch_params;
  std::array<RoleTerm, 5> roles{};  ///< IP-IP, IP-IM, IP-DP, DP-DM, DP-DP
  /// Whether any bound count reads the n / v axis — lets batch callers
  /// hoist evaluations that are constant along an axis of their grid.
  bool depends_n = false;
  bool depends_v = false;
};

PlanTerms build_plan_terms(const MachineClass& mc, const ComponentLibrary& lib,
                           bool include_ip_dp_switch);

/// The shared scalar kernel: one design point of one plan.
///
/// Bit-identity contract: performs the *same floating point operations
/// in the same order* as the unmemoized pair
/// (`estimate_area(mc, lib, o).total_kge()`,
/// `estimate_config_bits(mc, lib, o).total()`).  Every caller —
/// CostPlan::evaluate, the batch lanes, CostPlanSet — funnels through
/// this one function, so scalar and batch results cannot diverge.
inline CostPoint evaluate_terms(const PlanTerms& t, std::int64_t n,
                                std::int64_t v) {
  // Bind the symbolic structure exactly as detail::resolve(mc, options)
  // does: memory bank counts mirror their processors; for a LUT fabric
  // every connectivity column spans the v-block pool.
  std::int64_t ips = 0, dps = 0, luts = 0;
  if (t.lut_grain) {
    luts = v;
  } else {
    ips = bind_count(t.ips, n, v);
    dps = bind_count(t.dps, n, v);
  }
  const std::int64_t ims = ips, dms = dps;

  // Block terms — same expressions as the estimate_from helpers.
  double a_ip = 0, a_im = 0, a_dp = 0, a_dm = 0, a_lut = 0;
  std::int64_t b_ip = 0, b_im = 0, b_dp = 0, b_dm = 0, b_lut = 0;
  if (t.lut_grain) {
    a_lut = static_cast<double>(luts) * t.lut_area;
    b_lut = luts * t.lut_bits;
  } else {
    a_ip = static_cast<double>(ips) * t.ip_area;
    a_dp = static_cast<double>(dps) * t.dp_area;
    a_im = static_cast<double>(ims) * t.im_area;
    a_dm = static_cast<double>(dms) * t.dm_area;
    b_ip = ips * t.ip_bits;
    b_dp = dps * t.dp_bits;
    b_im = ims * t.im_bits;
    b_dm = dms * t.dm_bits;
  }

  // Switch terms through the same (inline) cost function the estimates
  // use; role slots carry the lut-grain override (both endpoints = V,
  // width 1) resolved at build time.
  const auto link = [&](const RoleTerm& role) {
    return switch_cost(role.kind, bind_count(role.left, n, v),
                       bind_count(role.right, n, v), t.width,
                       t.switch_params);
  };
  const SwitchCost ip_ip = link(t.roles[0]);
  const SwitchCost ip_im = link(t.roles[1]);
  const SwitchCost dp_dm = link(t.roles[3]);
  const SwitchCost dp_dp = link(t.roles[4]);
  SwitchCost ip_dp;  // Eq. 1/2 as printed omit IP-DP; extended model adds it
  if (t.roles[2].kind != SwitchKind::None) ip_dp = link(t.roles[2]);

  // Totals in the exact member order of AreaEstimate::total_kge() and
  // ConfigBitsEstimate::total() — addition order matters for the
  // bit-identity contract.
  CostPoint point;
  point.area_kge = a_ip + a_im + a_dp + a_dm + a_lut + ip_ip.area_kge +
                   ip_im.area_kge + ip_dp.area_kge + dp_dm.area_kge +
                   dp_dp.area_kge;
  point.config_bits = b_ip + b_im + b_dp + b_dm + b_lut +
                      ip_ip.config_bits + ip_im.config_bits +
                      ip_dp.config_bits + dp_dm.config_bits +
                      dp_dp.config_bits;
  return point;
}

}  // namespace detail

/// Memoized per-(class, component-library) evaluator of Eq. 1 / Eq. 2.
///
/// `estimate_area` / `estimate_config_bits` re-resolve the symbolic
/// structure and re-walk the component library on every call — fine for
/// one query, wasteful for a design-space sweep that prices the same
/// class at thousands of (n, lut_budget) points.  A CostPlan folds every
/// design-point-independent invariant at construction into a flat
/// detail::PlanTerms: the library parameters for each block type, the
/// switch kind and symbolic endpoint multiplicities of each connectivity
/// column, and the datapath width.  `evaluate(n, v)` is then a handful
/// of multiplies and adds; `evaluate_batch` runs the same kernel over
/// contiguous (n, v) lanes with the invariants hoisted out of the loop.
///
/// Bit-identity contract: evaluate() / evaluate_batch() perform the
/// *same floating point operations in the same order* as the unmemoized
/// pair (`estimate_area(mc, lib, o).total_kge()`,
/// `estimate_config_bits(mc, lib, o).total()`), so their results are
/// bit-identical, not merely close — the sweep engine's results must be
/// indistinguishable from sequential `recommend()` calls
/// (tests/test_sweep.cpp enforces this over the whole table).
///
/// Thread safety: immutable after construction; evaluate() and
/// evaluate_batch() are const and touch no shared state — safe to share
/// across sweep workers.
class CostPlan {
 public:
  CostPlan(const MachineClass& mc, const ComponentLibrary& lib,
           bool include_ip_dp_switch = false);

  /// Price the design point where Multiplicity::Many binds to @p n and
  /// Multiplicity::Variable (the LUT budget) binds to @p v.
  CostPoint evaluate(std::int64_t n, std::int64_t v) const;

  /// Same binding rules as the estimate functions take them.
  CostPoint evaluate(const EstimateOptions& options) const {
    return evaluate(options.n, options.v);
  }

  /// Batch lanes: out[i] = evaluate(n[i], v[i]) for i < n.size(), with
  /// the plan invariants hoisted out of the loop (n.size() must equal
  /// v.size()).  Bit-identical to the scalar calls.
  void evaluate_batch(std::span<const std::int64_t> n,
                      std::span<const std::int64_t> v, CostPoint* out) const;

  /// Whether the plan's cost reads the n (respectively v) axis at all —
  /// a plan with depends_v() == false prices identically for every LUT
  /// budget, which the sweep kernel exploits to evaluate it once per
  /// grid row instead of once per cell.
  bool depends_n() const { return terms_.depends_n; }
  bool depends_v() const { return terms_.depends_v; }

  const detail::PlanTerms& terms() const { return terms_; }

 private:
  detail::PlanTerms terms_;
};

}  // namespace mpct::cost
