#pragma once

#include <array>
#include <cstdint>

#include "core/machine_class.hpp"
#include "cost/area_model.hpp"
#include "cost/component_library.hpp"

namespace mpct::cost {

/// Both predictive equations evaluated at one bound design point.
struct CostPoint {
  double area_kge = 0;           ///< Eq. 1 total
  std::int64_t config_bits = 0;  ///< Eq. 2 total
};

/// Memoized per-(class, component-library) evaluator of Eq. 1 / Eq. 2.
///
/// `estimate_area` / `estimate_config_bits` re-resolve the symbolic
/// structure and re-walk the component library on every call — fine for
/// one query, wasteful for a design-space sweep that prices the same
/// class at thousands of (n, lut_budget) points.  A CostPlan folds every
/// design-point-independent invariant at construction: the library
/// parameters for each block type, the switch kind and symbolic endpoint
/// multiplicities of each connectivity column, and the datapath width.
/// `evaluate(n, v)` is then a handful of multiplies and adds.
///
/// Bit-identity contract: evaluate() performs the *same floating point
/// operations in the same order* as the unmemoized pair
/// (`estimate_area(mc, lib, o).total_kge()`,
/// `estimate_config_bits(mc, lib, o).total()`), so its results are
/// bit-identical, not merely close — the sweep engine's results must be
/// indistinguishable from sequential `recommend()` calls
/// (tests/test_sweep.cpp enforces this over the whole table).
///
/// Thread safety: immutable after construction; evaluate() is const and
/// touches no shared state — safe to share across sweep workers.
class CostPlan {
 public:
  CostPlan(const MachineClass& mc, const ComponentLibrary& lib,
           bool include_ip_dp_switch = false);

  /// Price the design point where Multiplicity::Many binds to @p n and
  /// Multiplicity::Variable (the LUT budget) binds to @p v.
  CostPoint evaluate(std::int64_t n, std::int64_t v) const;

  /// Same binding rules as the estimate functions take them.
  CostPoint evaluate(const EstimateOptions& options) const {
    return evaluate(options.n, options.v);
  }

 private:
  bool lut_grain_ = false;
  bool include_ip_dp_ = false;
  Multiplicity ips_mult_ = Multiplicity::Zero;
  Multiplicity dps_mult_ = Multiplicity::One;
  std::array<SwitchKind, kConnectivityRoleCount> kinds_{};
  // Library invariants, resolved once.
  ComponentParams ip_, dp_, im_, dm_, lut_;
  int data_width_ = 32;
  SwitchCostParams switch_params_;
};

}  // namespace mpct::cost
