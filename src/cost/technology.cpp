#include "cost/technology.hpp"

#include <stdexcept>

namespace mpct::cost {

namespace {

TechnologyNode make_node(std::string name, double feature_nm) {
  // Quadratic density scaling anchored at 90 nm = 2.5 um^2 per gate
  // equivalent (a common standard-cell planning number).
  constexpr double kAnchorNm = 90.0;
  constexpr double kAnchorUm2PerGe = 2.5;
  const double ratio = feature_nm / kAnchorNm;
  return TechnologyNode{std::move(name), feature_nm,
                        kAnchorUm2PerGe * ratio * ratio};
}

}  // namespace

TechnologyNode technology_node(std::string_view name) {
  if (name == "180nm") return make_node("180nm", 180);
  if (name == "130nm") return make_node("130nm", 130);
  if (name == "90nm") return make_node("90nm", 90);
  if (name == "65nm") return make_node("65nm", 65);
  if (name == "45nm") return make_node("45nm", 45);
  if (name == "32nm") return make_node("32nm", 32);
  if (name == "22nm") return make_node("22nm", 22);
  throw std::invalid_argument("unknown technology node: " +
                              std::string(name));
}

TechnologyNode default_node() { return technology_node("90nm"); }

}  // namespace mpct::cost
