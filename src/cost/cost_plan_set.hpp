#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cost/cost_plan.hpp"

namespace mpct::cost {

/// Plan-major batch evaluator: the Eq. 1 / Eq. 2 invariants of many
/// machine classes (the sweep's 47 canonical candidates) laid out as one
/// contiguous array of detail::PlanTerms.
///
/// A sweep prices every candidate at every grid cell.  Doing that
/// candidate-by-candidate through separate CostPlan objects walks a
/// pointer per candidate per cell; laying the terms out contiguously and
/// iterating plan-major (one plan across many design-point lanes, then
/// the next plan) keeps the inner loop a stream of multiply-adds over
/// one 200-byte invariant block that stays in L1 — no pointer chasing,
/// no re-binding of the symbolic structure.
///
/// Bit-identity: every entry point funnels through the same
/// detail::evaluate_terms kernel as CostPlan::evaluate, so batch results
/// equal the scalar results bit for bit (see the contract on CostPlan).
///
/// Thread safety: immutable once populated; all evaluation is const.
class CostPlanSet {
 public:
  CostPlanSet() = default;

  /// Append one plan; returns its index.  Invalidates terms() pointers.
  std::size_t add(const MachineClass& mc, const ComponentLibrary& lib,
                  bool include_ip_dp_switch = false);
  std::size_t add(const CostPlan& plan);

  std::size_t size() const { return plans_.size(); }
  bool empty() const { return plans_.empty(); }
  void reserve(std::size_t count) { plans_.reserve(count); }

  /// Scalar point of one plan — bit-identical to CostPlan::evaluate.
  CostPoint evaluate(std::size_t plan, std::int64_t n, std::int64_t v) const {
    return detail::evaluate_terms(plans_[plan], n, v);
  }

  /// One plan across contiguous (n, v) lanes:
  /// out[i] = evaluate(plan, n[i], v[i]).
  void evaluate_lanes(std::size_t plan, std::span<const std::int64_t> n,
                      std::span<const std::int64_t> v, CostPoint* out) const;

  /// One plan at fixed n across a v axis: out[i] = evaluate(plan, n, v[i]).
  /// This is the sweep row kernel's shape — a grid row fixes n and walks
  /// the LUT-budget lanes.
  void evaluate_row(std::size_t plan, std::int64_t n,
                    std::span<const std::int64_t> v, CostPoint* out) const;

  /// Every plan across the same lanes, plan-major:
  /// out[p * n.size() + i] = evaluate(p, n[i], v[i]).
  void evaluate_batch(std::span<const std::int64_t> n,
                      std::span<const std::int64_t> v, CostPoint* out) const;

  /// Axis dependence of one plan (see CostPlan::depends_n / depends_v).
  bool depends_n(std::size_t plan) const { return plans_[plan].depends_n; }
  bool depends_v(std::size_t plan) const { return plans_[plan].depends_v; }

  const detail::PlanTerms& terms(std::size_t plan) const {
    return plans_[plan];
  }

 private:
  std::vector<detail::PlanTerms> plans_;
};

}  // namespace mpct::cost
