#include "cost/cost_plan.hpp"

#include "cost/switch_cost.hpp"
#include "trace/trace.hpp"

namespace mpct::cost {

namespace {

/// Same binding as cost/resolve's: Many -> n, Variable -> v.
std::int64_t bind(Multiplicity mult, std::int64_t n, std::int64_t v) {
  switch (mult) {
    case Multiplicity::Zero:
      return 0;
    case Multiplicity::One:
      return 1;
    case Multiplicity::Many:
      return n;
    case Multiplicity::Variable:
      return v;
  }
  return 0;
}

}  // namespace

CostPlan::CostPlan(const MachineClass& mc, const ComponentLibrary& lib,
                   bool include_ip_dp_switch)
    : lut_grain_(mc.granularity == Granularity::Lut),
      include_ip_dp_(include_ip_dp_switch),
      ips_mult_(mc.ips),
      dps_mult_(mc.dps),
      kinds_(mc.switches),
      ip_(lib.ip),
      dp_(lib.dp),
      im_(lib.im),
      dm_(lib.dm),
      lut_(lib.lut),
      data_width_(lib.data_width),
      switch_params_(lib.switch_params) {}

CostPoint CostPlan::evaluate(std::int64_t n, std::int64_t v) const {
  trace::profile_count(trace::ProfilePoint::CostEvaluate);
  // Bind the symbolic structure exactly as detail::resolve(mc, options)
  // does: memory bank counts mirror their processors; for a LUT fabric
  // every connectivity column spans the v-block pool.
  std::int64_t ips = 0, dps = 0, luts = 0;
  if (lut_grain_) {
    luts = v;
  } else {
    ips = bind(ips_mult_, n, v);
    dps = bind(dps_mult_, n, v);
  }
  const std::int64_t ims = ips, dms = dps;
  const int width = lut_grain_ ? 1 : data_width_;

  // Block terms — same expressions as the estimate_from helpers.
  double a_ip = 0, a_im = 0, a_dp = 0, a_dm = 0, a_lut = 0;
  std::int64_t b_ip = 0, b_im = 0, b_dp = 0, b_dm = 0, b_lut = 0;
  if (lut_grain_) {
    a_lut = static_cast<double>(luts) * lut_.area_kge;
    b_lut = luts * lut_.config_bits;
  } else {
    a_ip = static_cast<double>(ips) * ip_.area_kge;
    a_dp = static_cast<double>(dps) * dp_.area_kge;
    a_im = static_cast<double>(ims) * im_.area_kge;
    a_dm = static_cast<double>(dms) * dm_.area_kge;
    b_ip = ips * ip_.config_bits;
    b_dp = dps * dp_.config_bits;
    b_im = ims * im_.config_bits;
    b_dm = dms * dm_.config_bits;
  }

  // Switch terms through the same cost function the estimates use.
  const auto link = [&](ConnectivityRole role, std::int64_t left,
                        std::int64_t right) {
    if (lut_grain_) {
      left = luts;
      right = luts;
    }
    return switch_cost(kinds_[static_cast<std::size_t>(role)], left, right,
                       width, switch_params_);
  };
  const SwitchCost ip_ip = link(ConnectivityRole::IpIp, ips, ips);
  const SwitchCost ip_im = link(ConnectivityRole::IpIm, ips, ims);
  const SwitchCost dp_dm = link(ConnectivityRole::DpDm, dps, dms);
  const SwitchCost dp_dp = link(ConnectivityRole::DpDp, dps, dps);
  SwitchCost ip_dp;  // Eq. 1/2 as printed omit IP-DP; extended model adds it
  if (include_ip_dp_) ip_dp = link(ConnectivityRole::IpDp, ips, dps);

  // Totals in the exact member order of AreaEstimate::total_kge() and
  // ConfigBitsEstimate::total() — addition order matters for the
  // bit-identity contract.
  CostPoint point;
  point.area_kge = a_ip + a_im + a_dp + a_dm + a_lut + ip_ip.area_kge +
                   ip_im.area_kge + ip_dp.area_kge + dp_dm.area_kge +
                   dp_dp.area_kge;
  point.config_bits = b_ip + b_im + b_dp + b_dm + b_lut +
                      ip_ip.config_bits + ip_im.config_bits +
                      ip_dp.config_bits + dp_dm.config_bits +
                      dp_dp.config_bits;
  return point;
}

}  // namespace mpct::cost
