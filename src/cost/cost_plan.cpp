#include "cost/cost_plan.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace mpct::cost {

namespace detail {

namespace {

Bind bind_of(Multiplicity mult) {
  switch (mult) {
    case Multiplicity::Zero:     return Bind::Zero;
    case Multiplicity::One:      return Bind::One;
    case Multiplicity::Many:     return Bind::N;
    case Multiplicity::Variable: return Bind::V;
  }
  return Bind::Zero;
}

}  // namespace

PlanTerms build_plan_terms(const MachineClass& mc, const ComponentLibrary& lib,
                           bool include_ip_dp_switch) {
  PlanTerms t;
  t.lut_grain = mc.granularity == Granularity::Lut;
  t.ips = bind_of(mc.ips);
  t.dps = bind_of(mc.dps);
  t.ip_area = lib.ip.area_kge;
  t.dp_area = lib.dp.area_kge;
  t.im_area = lib.im.area_kge;
  t.dm_area = lib.dm.area_kge;
  t.lut_area = lib.lut.area_kge;
  t.ip_bits = lib.ip.config_bits;
  t.dp_bits = lib.dp.config_bits;
  t.im_bits = lib.im.config_bits;
  t.dm_bits = lib.dm.config_bits;
  t.lut_bits = lib.lut.config_bits;
  t.width = t.lut_grain ? 1 : lib.data_width;
  t.switch_params = lib.switch_params;

  // Resolve each connectivity column to (kind, left-bind, right-bind).
  // Memory bank counts mirror their processors (ims = ips, dms = dps),
  // so the endpoint binds below reuse the processor binds; a LUT fabric
  // overrides every endpoint to the v-block pool, exactly as the scalar
  // link() lambda used to.
  const Bind l = Bind::V;  // lut-grain endpoint
  const auto kind_of = [&](ConnectivityRole role) {
    return mc.switches[static_cast<std::size_t>(role)];
  };
  const Bind ips = t.lut_grain ? l : t.ips;
  const Bind dps = t.lut_grain ? l : t.dps;
  t.roles[0] = {kind_of(ConnectivityRole::IpIp), ips, ips};
  t.roles[1] = {kind_of(ConnectivityRole::IpIm), ips, ips};  // ims = ips
  t.roles[2] = include_ip_dp_switch
                   ? RoleTerm{kind_of(ConnectivityRole::IpDp), ips, dps}
                   : RoleTerm{SwitchKind::None, Bind::Zero, Bind::Zero};
  t.roles[3] = {kind_of(ConnectivityRole::DpDm), dps, dps};  // dms = dps
  t.roles[4] = {kind_of(ConnectivityRole::DpDp), dps, dps};

  // Axis dependence: every count the kernel reads derives from the
  // processor binds (block terms and switch endpoints alike), or from v
  // directly for a LUT fabric.
  if (t.lut_grain) {
    t.depends_v = true;
  } else {
    t.depends_n = t.ips == Bind::N || t.dps == Bind::N;
    t.depends_v = t.ips == Bind::V || t.dps == Bind::V;
  }
  return t;
}

}  // namespace detail

CostPlan::CostPlan(const MachineClass& mc, const ComponentLibrary& lib,
                   bool include_ip_dp_switch)
    : terms_(detail::build_plan_terms(mc, lib, include_ip_dp_switch)) {}

CostPoint CostPlan::evaluate(std::int64_t n, std::int64_t v) const {
  trace::profile_count(trace::ProfilePoint::CostEvaluate);
  return detail::evaluate_terms(terms_, n, v);
}

void CostPlan::evaluate_batch(std::span<const std::int64_t> n,
                              std::span<const std::int64_t> v,
                              CostPoint* out) const {
  if (n.size() != v.size()) {
    throw std::invalid_argument("evaluate_batch: lane count mismatch");
  }
  trace::profile_count_n(trace::ProfilePoint::CostEvaluate, n.size());
  const detail::PlanTerms& t = terms_;  // hoist: one load, no indirection
  for (std::size_t i = 0; i < n.size(); ++i) {
    out[i] = detail::evaluate_terms(t, n[i], v[i]);
  }
}

}  // namespace mpct::cost
