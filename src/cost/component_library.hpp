#pragma once

#include <cstdint>
#include <string>

#include "cost/switch_cost.hpp"

namespace mpct::cost {

/// Per-instance cost of one building block: the A_X and CW_X inputs of
/// Eq. 1 / Eq. 2.
struct ComponentParams {
  double area_kge = 0;          ///< A_X: silicon area in kGE
  std::int64_t config_bits = 0; ///< CW_X: configuration word width

  friend bool operator==(const ComponentParams&,
                         const ComponentParams&) = default;
};

/// The component library: parameters for each building-block type plus
/// the switch cost model.  The paper's equations take these as given
/// ("the CBs required to configure the individual components are
/// calculated individually ... depending on type, functionality and
/// IOs"); the defaults here are standard-cell planning figures documented
/// per preset.
struct ComponentLibrary {
  std::string name = "default";

  ComponentParams ip;   ///< instruction processor (sequencer/controller)
  ComponentParams dp;   ///< data processor (ALU + register slice)
  ComponentParams im;   ///< instruction memory bank
  ComponentParams dm;   ///< data memory bank
  ComponentParams lut;  ///< one universal-flow building block (LUT/CLB)

  int data_width = 32;  ///< datapath width the switches carry
  SwitchCostParams switch_params;

  /// Default library: a mid-size embedded design point.
  ///  * IP: 25 kGE RISC-class sequencer, 32 configuration bits (mode,
  ///    boot vector).
  ///  * DP: 10 kGE 32-bit ALU + operand registers, 16 config bits
  ///    (function select, routing modes).
  ///  * IM: 8 kGE (1 KB SRAM macro), 8 config bits (banking mode).
  ///  * DM: 8 kGE (1 KB SRAM macro), 8 config bits.
  ///  * LUT: 0.015 kGE per 4-LUT + flop, 20 config bits (16 truth-table
  ///    + 4 mode), the classic island-style figure.
  static ComponentLibrary default_library();

  /// Smaller blocks for deeply embedded design points (16-bit datapath).
  static ComponentLibrary embedded();

  /// Larger blocks for HPC-class design points (64-bit datapath,
  /// superscalar-weight IP).
  static ComponentLibrary hpc();
};

}  // namespace mpct::cost
