#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "core/connectivity.hpp"

namespace mpct::cost {

/// Area and configuration cost of one interconnect switch, the
/// per-component inputs to Eq. 1 (A_X-Y terms) and Eq. 2 (CW_X-Y terms).
struct SwitchCost {
  double area_kge = 0;        ///< silicon cost in kilo gate-equivalents
  std::int64_t config_bits = 0;  ///< CW: bits to program the switch

  friend bool operator==(const SwitchCost&, const SwitchCost&) = default;
};

/// Parameters of the switch cost model.
struct SwitchCostParams {
  /// Gate equivalents per 2:1 mux leg per bit of datapath width (the
  /// crosspoint cost of a mux-tree crossbar output).
  double ge_per_crosspoint_bit = 2.5;
  /// Gate equivalents per bit of a plain wired (direct) connection —
  /// repeater/buffer cost, far below a crosspoint.
  double ge_per_wire_bit = 0.25;
};

/// ceil(log2(x)) for x >= 1 (0 for x == 1 handled as 0? No: returns the
/// number of bits needed to represent values in [0, x-1]; 1 port still
/// needs 1 select bit once the disconnected state is included upstream).
///
/// Single bit-scan, no loop: the smallest b with 2^b >= x is the bit
/// width of x-1 (x=1 -> width(0)=0, x=65537 -> width(65536)=17) — this
/// sits in the innermost lane of the batch cost kernels, where the old
/// shift loop cost up to 17 iterations per crossbar column.
inline int ceil_log2(std::int64_t x) {
  if (x < 1) throw std::invalid_argument("ceil_log2: x must be >= 1");
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(x - 1)));
}

/// Cost of a switch connecting @p left_ports producers to @p right_ports
/// consumers over a @p data_width-bit datapath:
///
///  * None:     zero area, zero configuration.
///  * Direct:   min(left,right) point-to-point links; wires only, no
///              configuration state ("a switch of type '-' takes less
///              area than a switch of type 'x'", Section III-C).
///  * Crossbar: every output carries a left_ports:1 mux across the full
///              datapath — area grows with left*right (quadratic for a
///              square crossbar) and each output needs
///              ceil(log2(left+1)) select bits (the +1 encodes
///              "disconnected"), which is exactly the configuration state
///              the executable interconnect::Crossbar stores.
///
/// Defined inline so the batch kernels (cost/cost_plan.hpp) can fold it
/// into their per-lane loop; the floating-point expressions here are the
/// bit-identity reference every fast path must reproduce op-for-op.
inline SwitchCost switch_cost(SwitchKind kind, std::int64_t left_ports,
                              std::int64_t right_ports, int data_width,
                              const SwitchCostParams& params = {}) {
  if (left_ports < 0 || right_ports < 0) {
    throw std::invalid_argument("switch_cost: negative port count");
  }
  if (data_width <= 0) {
    throw std::invalid_argument("switch_cost: non-positive data width");
  }
  if (kind == SwitchKind::None || left_ports == 0 || right_ports == 0) {
    return {};
  }

  switch (kind) {
    case SwitchKind::Direct: {
      const std::int64_t links = std::min(left_ports, right_ports);
      return {static_cast<double>(links) * data_width *
                  params.ge_per_wire_bit / 1000.0,
              0};
    }
    case SwitchKind::Crossbar: {
      const double crosspoints =
          static_cast<double>(left_ports) * static_cast<double>(right_ports);
      const double area_ge =
          crosspoints * data_width * params.ge_per_crosspoint_bit;
      // One select field per output, able to address any input or the
      // disconnected state.
      const std::int64_t select_bits =
          right_ports * ceil_log2(left_ports + 1);
      return {area_ge / 1000.0, select_bits};
    }
    case SwitchKind::None:
      break;
  }
  return {};
}

}  // namespace mpct::cost
