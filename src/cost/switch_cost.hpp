#pragma once

#include <cstdint>

#include "core/connectivity.hpp"

namespace mpct::cost {

/// Area and configuration cost of one interconnect switch, the
/// per-component inputs to Eq. 1 (A_X-Y terms) and Eq. 2 (CW_X-Y terms).
struct SwitchCost {
  double area_kge = 0;        ///< silicon cost in kilo gate-equivalents
  std::int64_t config_bits = 0;  ///< CW: bits to program the switch

  friend bool operator==(const SwitchCost&, const SwitchCost&) = default;
};

/// Parameters of the switch cost model.
struct SwitchCostParams {
  /// Gate equivalents per 2:1 mux leg per bit of datapath width (the
  /// crosspoint cost of a mux-tree crossbar output).
  double ge_per_crosspoint_bit = 2.5;
  /// Gate equivalents per bit of a plain wired (direct) connection —
  /// repeater/buffer cost, far below a crosspoint.
  double ge_per_wire_bit = 0.25;
};

/// Cost of a switch connecting @p left_ports producers to @p right_ports
/// consumers over a @p data_width-bit datapath:
///
///  * None:     zero area, zero configuration.
///  * Direct:   min(left,right) point-to-point links; wires only, no
///              configuration state ("a switch of type '-' takes less
///              area than a switch of type 'x'", Section III-C).
///  * Crossbar: every output carries a left_ports:1 mux across the full
///              datapath — area grows with left*right (quadratic for a
///              square crossbar) and each output needs
///              ceil(log2(left+1)) select bits (the +1 encodes
///              "disconnected"), which is exactly the configuration state
///              the executable interconnect::Crossbar stores.
SwitchCost switch_cost(SwitchKind kind, std::int64_t left_ports,
                       std::int64_t right_ports, int data_width,
                       const SwitchCostParams& params = {});

/// ceil(log2(x)) for x >= 1 (0 for x == 1 handled as 0? No: returns the
/// number of bits needed to represent values in [0, x-1]; 1 port still
/// needs 1 select bit once the disconnected state is included upstream).
int ceil_log2(std::int64_t x);

}  // namespace mpct::cost
