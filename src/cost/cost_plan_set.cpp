#include "cost/cost_plan_set.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace mpct::cost {

std::size_t CostPlanSet::add(const MachineClass& mc,
                             const ComponentLibrary& lib,
                             bool include_ip_dp_switch) {
  plans_.push_back(detail::build_plan_terms(mc, lib, include_ip_dp_switch));
  return plans_.size() - 1;
}

std::size_t CostPlanSet::add(const CostPlan& plan) {
  plans_.push_back(plan.terms());
  return plans_.size() - 1;
}

void CostPlanSet::evaluate_lanes(std::size_t plan,
                                 std::span<const std::int64_t> n,
                                 std::span<const std::int64_t> v,
                                 CostPoint* out) const {
  if (n.size() != v.size()) {
    throw std::invalid_argument("evaluate_lanes: lane count mismatch");
  }
  trace::profile_count_n(trace::ProfilePoint::CostEvaluate, n.size());
  const detail::PlanTerms& t = plans_[plan];
  for (std::size_t i = 0; i < n.size(); ++i) {
    out[i] = detail::evaluate_terms(t, n[i], v[i]);
  }
}

void CostPlanSet::evaluate_row(std::size_t plan, std::int64_t n,
                               std::span<const std::int64_t> v,
                               CostPoint* out) const {
  trace::profile_count_n(trace::ProfilePoint::CostEvaluate, v.size());
  const detail::PlanTerms& t = plans_[plan];
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = detail::evaluate_terms(t, n, v[i]);
  }
}

void CostPlanSet::evaluate_batch(std::span<const std::int64_t> n,
                                 std::span<const std::int64_t> v,
                                 CostPoint* out) const {
  if (n.size() != v.size()) {
    throw std::invalid_argument("evaluate_batch: lane count mismatch");
  }
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    evaluate_lanes(p, n, v, out + p * n.size());
  }
}

}  // namespace mpct::cost
