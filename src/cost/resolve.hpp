#pragma once

#include <array>
#include <cstdint>

#include "arch/spec.hpp"
#include "core/machine_class.hpp"
#include "cost/area_model.hpp"

namespace mpct::cost::detail {

/// A machine structure with every symbolic count bound to a number —
/// the common input of the Eq. 1 area model and the Eq. 2 configuration
/// bit model.
struct ResolvedStructure {
  std::int64_t ips = 0;
  std::int64_t dps = 0;
  std::int64_t ims = 0;  ///< instruction memory banks (defaults to ips)
  std::int64_t dms = 0;  ///< data memory banks (defaults to dps)

  struct Link {
    SwitchKind kind = SwitchKind::None;
    std::int64_t left = 0;
    std::int64_t right = 0;
  };
  /// Indexed by ConnectivityRole.
  std::array<Link, kConnectivityRoleCount> links{};

  bool lut_grain = false;
  std::int64_t luts = 0;

  const Link& link(ConnectivityRole role) const {
    return links[static_cast<std::size_t>(role)];
  }
};

/// Bind an abstract class: Many -> options.n, Variable -> options.v,
/// memory bank counts mirror their processors.
ResolvedStructure resolve(const MachineClass& mc,
                          const EstimateOptions& options);

/// Bind a concrete spec: fixed counts used verbatim, 'n'/'m' bound via
/// options, connectivity endpoint counts taken from the cells where
/// evaluable (so partial or asymmetric switches like "5x10" or "8-1"
/// cost exactly what they are).
ResolvedStructure resolve(const arch::ArchitectureSpec& spec,
                          const EstimateOptions& options);

}  // namespace mpct::cost::detail
