#include "cost/switch_cost.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpct::cost {

int ceil_log2(std::int64_t x) {
  if (x < 1) throw std::invalid_argument("ceil_log2: x must be >= 1");
  int bits = 0;
  std::int64_t capacity = 1;
  while (capacity < x) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

SwitchCost switch_cost(SwitchKind kind, std::int64_t left_ports,
                       std::int64_t right_ports, int data_width,
                       const SwitchCostParams& params) {
  if (left_ports < 0 || right_ports < 0) {
    throw std::invalid_argument("switch_cost: negative port count");
  }
  if (data_width <= 0) {
    throw std::invalid_argument("switch_cost: non-positive data width");
  }
  if (kind == SwitchKind::None || left_ports == 0 || right_ports == 0) {
    return {};
  }

  switch (kind) {
    case SwitchKind::Direct: {
      const std::int64_t links = std::min(left_ports, right_ports);
      return {static_cast<double>(links) * data_width *
                  params.ge_per_wire_bit / 1000.0,
              0};
    }
    case SwitchKind::Crossbar: {
      const double crosspoints =
          static_cast<double>(left_ports) * static_cast<double>(right_ports);
      const double area_ge =
          crosspoints * data_width * params.ge_per_crosspoint_bit;
      // One select field per output, able to address any input or the
      // disconnected state.
      const std::int64_t select_bits =
          right_ports * ceil_log2(left_ports + 1);
      return {area_ge / 1000.0, select_bits};
    }
    case SwitchKind::None:
      break;
  }
  return {};
}

}  // namespace mpct::cost
