#pragma once

#include <cstdint>
#include <string>

namespace mpct::net {

/// Move-only RAII owner of a POSIX file descriptor.  The whole net
/// subsystem is plain poll(2) + nonblocking BSD sockets — no external
/// dependencies, Linux/POSIX only (like the CI hosts).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

bool set_nonblocking(int fd);
/// TCP_NODELAY: the protocol is pipelined request/response, so Nagle
/// buffering only adds latency.
bool set_nodelay(int fd);

/// Create a nonblocking listening TCP socket on @p host:@p port (dotted
/// IPv4 only; the service mesh in front of a real deployment terminates
/// everything else).  @p port 0 binds an ephemeral port; on success
/// @p bound_port carries the actual one.  On failure the returned socket
/// is invalid and @p error explains why.
Socket listen_tcp(const std::string& host, std::uint16_t port,
                  std::uint16_t& bound_port, std::string& error);

/// Connect with a bounded wait (nonblocking connect + poll).  The
/// returned socket stays nonblocking, with TCP_NODELAY set.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms, std::string& error);

}  // namespace mpct::net
