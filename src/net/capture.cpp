#include "net/capture.hpp"

#include <algorithm>
#include <limits>

namespace mpct::net {

namespace {

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v & 0xff);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

bool CaptureWriter::open(const std::string& path, std::string& error) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) {
    error = "capture: cannot open '" + path + "' for writing";
    return false;
  }
  std::uint8_t header[8];
  put_u32(header, kCaptureMagic);
  put_u16(header + 4, kCaptureFormatVersion);
  put_u16(header + 6, 0);
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    error = "capture: cannot write header to '" + path + "'";
    close();
    return false;
  }
  std::fflush(file_);
  frames_ = 0;
  return true;
}

void CaptureWriter::record(const std::uint8_t* frame,
                           std::size_t frame_size) {
  if (!file_ || frame_size == 0 ||
      frame_size > std::numeric_limits<std::uint32_t>::max()) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  std::uint32_t delta_us = 0;
  if (frames_ > 0) {
    const auto gap =
        std::chrono::duration_cast<std::chrono::microseconds>(now - last_)
            .count();
    delta_us = static_cast<std::uint32_t>(std::clamp<long long>(
        gap, 0, std::numeric_limits<std::uint32_t>::max()));
  }
  last_ = now;
  std::uint8_t prefix[8];
  put_u32(prefix, static_cast<std::uint32_t>(frame_size));
  put_u32(prefix + 4, delta_us);
  if (std::fwrite(prefix, 1, sizeof(prefix), file_) != sizeof(prefix) ||
      std::fwrite(frame, 1, frame_size, file_) != frame_size) {
    // Disk full / IO error: stop recording rather than corrupt the
    // stream; frames already flushed stay readable.
    close();
    return;
  }
  std::fflush(file_);
  ++frames_;
}

void CaptureWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool read_capture(const std::string& path, CaptureFile& out,
                  std::string& error) {
  out.records.clear();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) {
    error = "capture: cannot open '" + path + "'";
    return false;
  }
  std::uint8_t header[8];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
    error = "capture: '" + path + "' is too short for a header";
    std::fclose(file);
    return false;
  }
  if (get_u32(header) != kCaptureMagic) {
    error = "capture: '" + path + "' has bad magic";
    std::fclose(file);
    return false;
  }
  const std::uint16_t version = get_u16(header + 4);
  if (version != kCaptureFormatVersion) {
    error = "capture: unsupported format version " + std::to_string(version);
    std::fclose(file);
    return false;
  }
  for (;;) {
    std::uint8_t prefix[8];
    const std::size_t got = std::fread(prefix, 1, sizeof(prefix), file);
    if (got == 0) break;  // clean EOF between records
    if (got != sizeof(prefix)) {
      error = "capture: truncated record prefix in '" + path + "'";
      std::fclose(file);
      return false;
    }
    CaptureRecord record;
    const std::uint32_t frame_size = get_u32(prefix);
    record.delta_us = get_u32(prefix + 4);
    if (frame_size == 0) {
      error = "capture: zero-length frame in '" + path + "'";
      std::fclose(file);
      return false;
    }
    record.frame.resize(frame_size);
    if (std::fread(record.frame.data(), 1, frame_size, file) != frame_size) {
      error = "capture: truncated frame in '" + path + "'";
      std::fclose(file);
      return false;
    }
    out.records.push_back(std::move(record));
  }
  std::fclose(file);
  return true;
}

}  // namespace mpct::net
