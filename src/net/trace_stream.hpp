#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "service/metrics.hpp"
#include "trace/export.hpp"
#include "trace/sampler.hpp"

namespace mpct::net {

/// Tuning knobs of a TraceStreamer.
struct TraceStreamerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< collector server port
  /// Stable process name stamped on every batch; the collector keys
  /// clock alignment and timeline pids on it ("backend-0", "proxy").
  std::string node = "node";
  trace::SamplerPolicy policy = trace::SamplerPolicy::always();
  /// Drain cadence.  Shorter = fresher collector view; the per-tick
  /// cost is one registry walk regardless.
  std::chrono::milliseconds interval{50};
  /// Spans per SpanBatch frame; bigger drains split into several.
  std::size_t max_spans_per_batch = 2048;
  /// Unsent encoded bytes the streamer will hold while the collector
  /// is slow; beyond this, whole batches are shed (drop-counted).
  /// This is the back-pressure bound — memory never grows past it.
  std::size_t max_outbox_bytes = 1u << 20;
  std::chrono::milliseconds connect_timeout{2000};
  /// Optional registry for the trace_* block.  May be null.
  service::MetricsRegistry* metrics = nullptr;
};

/// Streaming flight-recorder exporter: a background thread drains the
/// process's Tracer rings (Tracer::drain — the exporter-owned cursor,
/// never the snapshot path), head/tail-samples the spans, and ships
/// them to a collector as SpanBatch frames over one TCP connection.
///
/// The recording hot path never sees this class: recorders keep writing
/// lock-free rings, and a wedged collector costs them nothing — the
/// streamer sheds batches once its outbox bound is hit, counting every
/// dropped span, and keeps trying.  Socket writes are nonblocking; the
/// thread never parks on send().
///
/// Ownership: exactly one TraceStreamer per process (Tracer::drain is
/// single-consumer).  stop() performs a final drain and bounded flush,
/// so short-lived processes still deliver their tail.
class TraceStreamer {
 public:
  explicit TraceStreamer(TraceStreamerOptions options);
  ~TraceStreamer();

  TraceStreamer(const TraceStreamer&) = delete;
  TraceStreamer& operator=(const TraceStreamer&) = delete;

  /// Connect and launch the export thread.  False + error() when the
  /// collector cannot be reached (the caller decides whether that is
  /// fatal; tracing itself is unaffected).
  bool start();

  /// Final drain + bounded flush (~drain one interval's worth), then
  /// join.  Idempotent; called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& error() const { return error_; }
  const TraceStreamerOptions& options() const { return options_; }

  // Lifetime counters (mirrored into metrics when a registry is set).
  std::uint64_t spans_exported() const {
    return spans_exported_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_sampled_out() const {
    return spans_sampled_out_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_sent() const {
    return batches_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_dropped() const {
    return batches_dropped_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  /// One export tick: drain, sample, encode, enqueue-or-shed, flush.
  void pump(bool final_tick);
  /// Nonblocking flush of the outbox; @p wait_ms bounds one poll.
  void flush(int wait_ms);

  TraceStreamerOptions options_;
  trace::ExportFilter filter_;
  Socket socket_;
  std::string error_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Encoded-but-unsent frame bytes (export thread only).
  std::vector<std::uint8_t> outbox_;
  std::size_t outbox_offset_ = 0;
  /// Connection died mid-stream: shed everything from here on.
  bool dead_ = false;
  std::uint64_t next_batch_id_ = 1;
  /// Losses to report in the next batch's `dropped` field: ring wrap
  /// past the cursor plus spans in shed batches.
  std::uint64_t pending_dropped_ = 0;

  std::atomic<std::uint64_t> spans_exported_{0};
  std::atomic<std::uint64_t> spans_dropped_{0};
  std::atomic<std::uint64_t> spans_sampled_out_{0};
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> batches_dropped_{0};
};

}  // namespace mpct::net
