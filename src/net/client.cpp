#include "net/client.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <thread>
#include <utility>

#include "trace/trace.hpp"
#include "wire/wire.hpp"

namespace mpct::net {
namespace {

using Clock = service::Clock;

constexpr std::size_t kReadChunk = 64 * 1024;

/// Remaining budget in whole milliseconds for the wire (0 = no
/// deadline).  A just-expired deadline maps to 1 ms, not 0: the server
/// must still see *a* deadline and answer DeadlineExceeded.
std::uint32_t wire_deadline_ms(service::Deadline deadline,
                               Clock::time_point now) {
  if (deadline.is_infinite()) return 0;
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline.at - now)
          .count();
  if (remaining <= 0) return 1;
  if (remaining >= std::numeric_limits<std::uint32_t>::max()) {
    return std::numeric_limits<std::uint32_t>::max();
  }
  return static_cast<std::uint32_t>(remaining);
}

/// poll() timeout honouring both the io stall bound and the deadline.
int poll_timeout_ms(std::chrono::milliseconds io_timeout,
                    service::Deadline deadline, Clock::time_point now) {
  auto timeout = io_timeout;
  if (!deadline.is_infinite()) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline.at -
                                                              now);
    timeout = std::min(timeout, std::max(remaining,
                                         std::chrono::milliseconds(1)));
  }
  return static_cast<int>(timeout.count());
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      agreed_version_(options_.protocol_version) {}

void Client::disconnect() {
  socket_.close();
  in_.clear();
  in_offset_ = 0;
  pending_.clear();
  completed_.clear();
  pongs_.clear();
  hello_ack_.reset();
}

service::QueryResponse Client::call(service::Request request,
                                    service::Deadline deadline,
                                    std::uint64_t trace_id) {
  std::vector<service::Request> batch;
  batch.push_back(std::move(request));
  return std::move(call_batch(std::move(batch), deadline, trace_id).front());
}

std::vector<service::QueryResponse> Client::call_batch(
    std::vector<service::Request> requests, service::Deadline deadline,
    std::uint64_t trace_id) {
  trace::ScopedSpan span("net.call_batch", trace::Category::Net, "requests",
                         static_cast<std::int64_t>(requests.size()));
  // Logical requests, counted exactly once — retries below re-send some
  // of these but never re-count them.
  if (options_.metrics) {
    options_.metrics->net_requests_sent.add(requests.size());
  }
  std::vector<service::QueryResponse> responses(requests.size());
  std::vector<std::size_t> unanswered(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) unanswered[i] = i;

  int attempts = 0;
  auto backoff = options_.initial_backoff;
  // Sleep before a retry, honouring @p hint (a shedding server's
  // retry_after_ms) and never past the deadline.
  const auto pause_for_retry = [&](std::chrono::milliseconds hint) {
    auto pause = std::max(backoff, hint);
    if (!deadline.is_infinite()) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline.at - Clock::now());
      pause = std::min(pause, std::max(remaining,
                                       std::chrono::milliseconds(0)));
    }
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
    backoff *= 2;
  };
  while (!unanswered.empty()) {
    if (deadline.expired()) {
      for (std::size_t i : unanswered) {
        responses[i].status = service::Status::deadline_exceeded();
      }
      break;
    }
    std::string error;
    const std::vector<std::size_t> sent = unanswered;
    if (attempt(requests, unanswered, responses, deadline, trace_id, error)) {
      // Overloaded answers are admission-control backpressure, not
      // verdicts on the request: within the retry budget, resend them
      // after sleeping at least the server's retry-after hint.
      std::vector<std::size_t> shed;
      std::uint32_t hint_ms = 0;
      for (std::size_t i : sent) {
        if (responses[i].status.code == service::StatusCode::Overloaded) {
          shed.push_back(i);
          hint_ms = std::max(hint_ms, responses[i].status.retry_after_ms);
        }
      }
      if (shed.empty() || attempts >= options_.max_retries ||
          deadline.expired()) {
        break;
      }
      ++attempts;
      if (options_.metrics) options_.metrics->net_retries.add();
      pause_for_retry(std::chrono::milliseconds(hint_ms));
      unanswered = std::move(shed);
      continue;
    }

    // Transport failure: the stream is unusable (unknown how much the
    // server saw), so reconnect and resend only what is unanswered.
    disconnect();
    if (attempts >= options_.max_retries) {
      for (std::size_t i : unanswered) {
        responses[i].status = service::Status::unavailable(error);
      }
      break;
    }
    ++attempts;
    if (options_.metrics) options_.metrics->net_retries.add();
    pause_for_retry(std::chrono::milliseconds(0));
  }
  return responses;
}

bool Client::ensure_connected(std::string& error) {
  if (socket_.valid()) return true;
  socket_ = connect_tcp(
      options_.host, options_.port,
      static_cast<int>(options_.connect_timeout.count()), error);
  if (socket_.valid() && options_.metrics) {
    options_.metrics->net_connections_opened.add();
  }
  return socket_.valid();
}

bool Client::attempt(const std::vector<service::Request>& requests,
                     std::vector<std::size_t>& unanswered,
                     std::vector<service::QueryResponse>& responses,
                     service::Deadline deadline, std::uint64_t trace_id,
                     std::string& error) {
  if (!ensure_connected(error)) return false;
  service::MetricsRegistry* metrics = options_.metrics;
  const Clock::time_point send_time = Clock::now();
  const std::uint32_t deadline_ms = wire_deadline_ms(deadline, send_time);

  // Pipelining: every frame is encoded up front and written as fast as
  // the socket accepts, before any response is awaited.
  std::vector<std::uint8_t> out;
  std::unordered_map<std::uint64_t, std::size_t> id_to_index;
  id_to_index.reserve(unanswered.size());
  for (std::size_t index : unanswered) {
    const std::uint64_t id = next_id_++;
    id_to_index.emplace(id, index);
    // Untraced calls still get a per-request trace id (the request id)
    // so a v2 server can stitch its spans to this frame.
    const auto frame = wire::encode_request_frame(
        id, requests[index], deadline_ms, agreed_version_,
        trace_id != 0 ? trace_id : id, options_.priority);
    out.insert(out.end(), frame.begin(), frame.end());
    if (metrics) metrics->net_frames_out.add();
  }

  std::size_t out_offset = 0;
  std::vector<std::uint8_t> in;
  std::size_t in_offset = 0;
  std::vector<char> answered(responses.size(), 0);
  std::size_t pending = id_to_index.size();

  const auto finish = [&](bool ok) {
    unanswered.erase(std::remove_if(unanswered.begin(), unanswered.end(),
                                    [&](std::size_t i) {
                                      return answered[i] != 0;
                                    }),
                     unanswered.end());
    return ok;
  };

  while (pending > 0) {
    const Clock::time_point now = Clock::now();
    if (deadline.expired(now)) {
      // Answer the stragglers locally and reset the stream: responses
      // for this attempt's ids may still arrive, and the next attempt
      // must not misread them.
      for (const auto& [id, index] : id_to_index) {
        if (answered[index]) continue;
        responses[index].status = service::Status::deadline_exceeded();
        answered[index] = 1;
      }
      disconnect();
      return finish(true);
    }

    pollfd pfd{socket_.fd(), POLLIN, 0};
    if (out_offset < out.size()) pfd.events |= POLLOUT;
    const int ready = ::poll(
        &pfd, 1, poll_timeout_ms(options_.io_timeout, deadline, now));
    if (ready < 0) {
      if (errno == EINTR) continue;
      error = std::string("poll: ") + ::strerror(errno);
      return finish(false);
    }
    if (ready == 0) {
      if (deadline.expired()) continue;  // handled at the top of the loop
      error = "I/O timed out";
      return finish(false);
    }

    if (pfd.revents & POLLOUT) {
      const ssize_t n = ::send(socket_.fd(), out.data() + out_offset,
                               out.size() - out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        out_offset += static_cast<std::size_t>(n);
        if (metrics) metrics->net_bytes_out.add(static_cast<std::uint64_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        error = std::string("send: ") + ::strerror(errno);
        return finish(false);
      }
    }

    if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) {
      const std::size_t old_size = in.size();
      in.resize(old_size + kReadChunk);
      const ssize_t n =
          ::recv(socket_.fd(), in.data() + old_size, kReadChunk, 0);
      if (n <= 0) {
        in.resize(old_size);
        if (n < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
          continue;
        }
        error = n == 0 ? "connection closed by server"
                       : std::string("recv: ") + ::strerror(errno);
        return finish(false);
      }
      in.resize(old_size + static_cast<std::size_t>(n));
      if (metrics) metrics->net_bytes_in.add(static_cast<std::uint64_t>(n));

      while (in_offset < in.size()) {
        const wire::FrameScan scan =
            wire::scan_frame(in.data() + in_offset, in.size() - in_offset);
        if (scan.state == wire::FrameScan::State::NeedMore) break;
        if (scan.state == wire::FrameScan::State::Bad) {
          if (metrics) metrics->net_decode_errors.add();
          error = "bad response stream: " + scan.error.to_string();
          return finish(false);
        }
        if (scan.header.kind != wire::FrameKind::Response) {
          // Control frames (a stray Pong from a prior ping) are not
          // answers; skip them.
          in_offset += scan.frame_size;
          continue;
        }
        auto decoded = wire::decode_response_frame(in.data() + in_offset,
                                                   scan.frame_size);
        in_offset += scan.frame_size;
        if (!decoded.ok()) {
          if (metrics) metrics->net_decode_errors.add();
          error = "bad response frame: " + decoded.error.to_string();
          return finish(false);
        }
        if (metrics) metrics->net_frames_in.add();
        const auto it = id_to_index.find(decoded.value->request_id);
        // Unknown ids are stale answers from an abandoned attempt on a
        // connection we since reused; drop them.
        if (it == id_to_index.end()) continue;
        if (answered[it->second]) continue;
        responses[it->second] = std::move(decoded.value->response);
        answered[it->second] = 1;
        --pending;
      }
    }
  }
  return finish(true);
}

bool Client::write_frame(const std::vector<std::uint8_t>& frame,
                         service::Deadline deadline, std::string& error) {
  std::size_t offset = 0;
  while (offset < frame.size()) {
    const Clock::time_point now = Clock::now();
    if (deadline.expired(now)) {
      error = "deadline expired mid-write";
      disconnect();
      return false;
    }
    pollfd pfd{socket_.fd(), POLLOUT, 0};
    const int ready = ::poll(
        &pfd, 1, poll_timeout_ms(options_.io_timeout, deadline, now));
    if (ready < 0) {
      if (errno == EINTR) continue;
      error = std::string("poll: ") + ::strerror(errno);
      disconnect();
      return false;
    }
    if (ready == 0) {
      error = "I/O timed out";
      disconnect();
      return false;
    }
    const ssize_t n = ::send(socket_.fd(), frame.data() + offset,
                             frame.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      if (options_.metrics) {
        options_.metrics->net_bytes_out.add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
      continue;
    }
    error = std::string("send: ") + ::strerror(errno);
    disconnect();
    return false;
  }
  if (options_.metrics) options_.metrics->net_frames_out.add();
  return true;
}

bool Client::drain_frames(std::string& error) {
  while (in_offset_ < in_.size()) {
    const wire::FrameScan scan =
        wire::scan_frame(in_.data() + in_offset_, in_.size() - in_offset_);
    if (scan.state == wire::FrameScan::State::NeedMore) break;
    if (scan.state == wire::FrameScan::State::Bad) {
      if (options_.metrics) options_.metrics->net_decode_errors.add();
      error = "bad response stream: " + scan.error.to_string();
      return false;
    }
    const std::uint8_t* frame = in_.data() + in_offset_;
    const std::size_t frame_size = scan.frame_size;
    in_offset_ += frame_size;
    switch (scan.header.kind) {
      case wire::FrameKind::Pong:
        pongs_.insert(scan.header.request_id);
        continue;
      case wire::FrameKind::HelloAck: {
        auto ack = wire::decode_hello_ack_frame(frame, frame_size);
        if (!ack.ok()) {
          if (options_.metrics) options_.metrics->net_decode_errors.add();
          error = "bad HelloAck frame: " + ack.error.to_string();
          return false;
        }
        hello_ack_ = *ack.value;
        continue;
      }
      case wire::FrameKind::Response:
        break;
      default:
        continue;  // Request/Ping/Hello towards a client: ignore
    }
    auto decoded = wire::decode_response_frame(frame, frame_size);
    if (!decoded.ok()) {
      if (options_.metrics) options_.metrics->net_decode_errors.add();
      error = "bad response frame: " + decoded.error.to_string();
      return false;
    }
    if (options_.metrics) options_.metrics->net_frames_in.add();
    const std::uint64_t id = decoded.value->request_id;
    // Only tracked ids are kept; cancelled/stale responses are dropped.
    if (pending_.erase(id) > 0) {
      completed_.emplace(id, std::move(decoded.value->response));
    }
  }
  if (in_offset_ == in_.size()) {
    in_.clear();
    in_offset_ = 0;
  } else if (in_offset_ > (1u << 20)) {
    in_.erase(in_.begin(),
              in_.begin() + static_cast<std::ptrdiff_t>(in_offset_));
    in_offset_ = 0;
  }
  return true;
}

bool Client::send_request(const service::Request& request,
                          service::Deadline deadline, std::uint64_t trace_id,
                          std::uint64_t& id_out, std::string& error,
                          std::optional<qos::PriorityClass> priority) {
  if (!ensure_connected(error)) return false;
  const Clock::time_point now = Clock::now();
  const std::uint64_t id = next_id_++;
  const auto frame = wire::encode_request_frame(
      id, request, wire_deadline_ms(deadline, now), agreed_version_,
      trace_id != 0 ? trace_id : id, priority ? priority : options_.priority);
  if (!write_frame(frame, deadline, error)) return false;
  pending_.insert(id);
  id_out = id;
  return true;
}

bool Client::send_cancel(std::uint64_t id, std::string& error) {
  if (agreed_version_ < 2) return true;  // cancellation does not exist at v1
  if (!socket_.valid()) {
    error = "not connected";
    return false;
  }
  // The caller is abandoning this request; bound the courtesy write by
  // the io stall timeout rather than the (often already expired)
  // request deadline.
  if (!write_frame(wire::encode_cancel_frame(id),
                   service::Deadline::in(options_.io_timeout), error)) {
    return false;
  }
  if (options_.metrics) options_.metrics->qos_cancels_sent.add();
  trace::emit_instant("net.cancel_sent", trace::Category::Qos);
  return true;
}

int Client::pump(std::chrono::milliseconds wait, std::string& error) {
  if (!socket_.valid()) {
    error = "not connected";
    return -1;
  }
  pollfd pfd{socket_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()));
  if (ready < 0) {
    if (errno == EINTR) return 0;
    error = std::string("poll: ") + ::strerror(errno);
    disconnect();
    return -1;
  }
  if (ready == 0) return 0;

  const std::size_t old_size = in_.size();
  in_.resize(old_size + kReadChunk);
  const ssize_t n = ::recv(socket_.fd(), in_.data() + old_size, kReadChunk, 0);
  if (n <= 0) {
    in_.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
      return 0;
    }
    error = n == 0 ? "connection closed by server"
                   : std::string("recv: ") + ::strerror(errno);
    disconnect();
    return -1;
  }
  in_.resize(old_size + static_cast<std::size_t>(n));
  if (options_.metrics) {
    options_.metrics->net_bytes_in.add(static_cast<std::uint64_t>(n));
  }

  const std::size_t before = completed_.size();
  if (!drain_frames(error)) {
    disconnect();
    return -1;
  }
  return static_cast<int>(completed_.size() - before);
}

bool Client::take_response(std::uint64_t id, service::QueryResponse& out) {
  const auto it = completed_.find(id);
  if (it == completed_.end()) return false;
  out = std::move(it->second);
  completed_.erase(it);
  return true;
}

void Client::cancel(std::uint64_t id) {
  pending_.erase(id);
  completed_.erase(id);
}

bool Client::ping(std::chrono::milliseconds timeout, std::string& error) {
  if (!ensure_connected(error)) return false;
  const std::uint64_t id = next_id_++;
  const service::Deadline deadline = service::Deadline::in(timeout);
  if (!write_frame(wire::encode_ping_frame(id), deadline, error)) {
    return false;
  }
  while (!pongs_.count(id)) {
    if (deadline.expired()) {
      error = "ping timed out";
      return false;
    }
    if (pump(std::chrono::milliseconds(10), error) < 0) return false;
  }
  pongs_.erase(id);
  return true;
}

service::Status Client::negotiate() {
  std::string error;
  if (!ensure_connected(error)) return service::Status::unavailable(error);
  const std::uint64_t id = next_id_++;
  const service::Deadline deadline =
      service::Deadline::in(options_.io_timeout);
  hello_ack_.reset();
  if (!write_frame(wire::encode_hello_frame(id, wire::kMinProtocolVersion,
                                            options_.protocol_version),
                   deadline, error)) {
    return service::Status::unavailable(error);
  }
  while (!hello_ack_ || hello_ack_->request_id != id) {
    if (deadline.expired()) {
      disconnect();
      return service::Status::unavailable("negotiation timed out");
    }
    if (pump(std::chrono::milliseconds(10), error) < 0) {
      return service::Status::unavailable(error);
    }
  }
  const wire::HelloAckFrame ack = *hello_ack_;
  hello_ack_.reset();
  if (!ack.status.ok()) return ack.status;
  if (ack.agreed_version < wire::kMinProtocolVersion ||
      ack.agreed_version > options_.protocol_version) {
    disconnect();
    return service::Status::protocol_error(
        "server agreed to version " + std::to_string(ack.agreed_version) +
        ", outside the advertised range");
  }
  agreed_version_ = ack.agreed_version;
  return service::Status::okay();
}

}  // namespace mpct::net
