#include "net/client.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <thread>
#include <unordered_map>
#include <utility>

#include "trace/trace.hpp"
#include "wire/wire.hpp"

namespace mpct::net {
namespace {

using Clock = service::Clock;

constexpr std::size_t kReadChunk = 64 * 1024;

/// Remaining budget in whole milliseconds for the wire (0 = no
/// deadline).  A just-expired deadline maps to 1 ms, not 0: the server
/// must still see *a* deadline and answer DeadlineExceeded.
std::uint32_t wire_deadline_ms(service::Deadline deadline,
                               Clock::time_point now) {
  if (deadline.is_infinite()) return 0;
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline.at - now)
          .count();
  if (remaining <= 0) return 1;
  if (remaining >= std::numeric_limits<std::uint32_t>::max()) {
    return std::numeric_limits<std::uint32_t>::max();
  }
  return static_cast<std::uint32_t>(remaining);
}

/// poll() timeout honouring both the io stall bound and the deadline.
int poll_timeout_ms(std::chrono::milliseconds io_timeout,
                    service::Deadline deadline, Clock::time_point now) {
  auto timeout = io_timeout;
  if (!deadline.is_infinite()) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline.at -
                                                              now);
    timeout = std::min(timeout, std::max(remaining,
                                         std::chrono::milliseconds(1)));
  }
  return static_cast<int>(timeout.count());
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

service::QueryResponse Client::call(service::Request request,
                                    service::Deadline deadline) {
  std::vector<service::Request> batch;
  batch.push_back(std::move(request));
  return std::move(call_batch(std::move(batch), deadline).front());
}

std::vector<service::QueryResponse> Client::call_batch(
    std::vector<service::Request> requests, service::Deadline deadline) {
  trace::ScopedSpan span("net.call_batch", trace::Category::Net, "requests",
                         static_cast<std::int64_t>(requests.size()));
  std::vector<service::QueryResponse> responses(requests.size());
  std::vector<std::size_t> unanswered(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) unanswered[i] = i;

  int attempts = 0;
  auto backoff = options_.initial_backoff;
  while (!unanswered.empty()) {
    if (deadline.expired()) {
      for (std::size_t i : unanswered) {
        responses[i].status = service::Status::deadline_exceeded();
      }
      break;
    }
    std::string error;
    if (attempt(requests, unanswered, responses, deadline, error)) break;

    // Transport failure: the stream is unusable (unknown how much the
    // server saw), so reconnect and resend only what is unanswered.
    disconnect();
    if (attempts >= options_.max_retries) {
      for (std::size_t i : unanswered) {
        responses[i].status = service::Status::unavailable(error);
      }
      break;
    }
    ++attempts;
    if (options_.metrics) options_.metrics->net_retries.add();
    auto pause = backoff;
    if (!deadline.is_infinite()) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline.at - Clock::now());
      pause = std::min(pause, std::max(remaining,
                                       std::chrono::milliseconds(0)));
    }
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
    backoff *= 2;
  }
  return responses;
}

bool Client::ensure_connected(std::string& error) {
  if (socket_.valid()) return true;
  socket_ = connect_tcp(
      options_.host, options_.port,
      static_cast<int>(options_.connect_timeout.count()), error);
  if (socket_.valid() && options_.metrics) {
    options_.metrics->net_connections_opened.add();
  }
  return socket_.valid();
}

bool Client::attempt(const std::vector<service::Request>& requests,
                     std::vector<std::size_t>& unanswered,
                     std::vector<service::QueryResponse>& responses,
                     service::Deadline deadline, std::string& error) {
  if (!ensure_connected(error)) return false;
  service::MetricsRegistry* metrics = options_.metrics;
  const Clock::time_point send_time = Clock::now();
  const std::uint32_t deadline_ms = wire_deadline_ms(deadline, send_time);

  // Pipelining: every frame is encoded up front and written as fast as
  // the socket accepts, before any response is awaited.
  std::vector<std::uint8_t> out;
  std::unordered_map<std::uint64_t, std::size_t> id_to_index;
  id_to_index.reserve(unanswered.size());
  for (std::size_t index : unanswered) {
    const std::uint64_t id = next_id_++;
    id_to_index.emplace(id, index);
    const auto frame =
        wire::encode_request_frame(id, requests[index], deadline_ms);
    out.insert(out.end(), frame.begin(), frame.end());
    if (metrics) metrics->net_frames_out.add();
  }

  std::size_t out_offset = 0;
  std::vector<std::uint8_t> in;
  std::size_t in_offset = 0;
  std::vector<char> answered(responses.size(), 0);
  std::size_t pending = id_to_index.size();

  const auto finish = [&](bool ok) {
    unanswered.erase(std::remove_if(unanswered.begin(), unanswered.end(),
                                    [&](std::size_t i) {
                                      return answered[i] != 0;
                                    }),
                     unanswered.end());
    return ok;
  };

  while (pending > 0) {
    const Clock::time_point now = Clock::now();
    if (deadline.expired(now)) {
      // Answer the stragglers locally and reset the stream: responses
      // for this attempt's ids may still arrive, and the next attempt
      // must not misread them.
      for (const auto& [id, index] : id_to_index) {
        if (answered[index]) continue;
        responses[index].status = service::Status::deadline_exceeded();
        answered[index] = 1;
      }
      disconnect();
      return finish(true);
    }

    pollfd pfd{socket_.fd(), POLLIN, 0};
    if (out_offset < out.size()) pfd.events |= POLLOUT;
    const int ready = ::poll(
        &pfd, 1, poll_timeout_ms(options_.io_timeout, deadline, now));
    if (ready < 0) {
      if (errno == EINTR) continue;
      error = std::string("poll: ") + ::strerror(errno);
      return finish(false);
    }
    if (ready == 0) {
      if (deadline.expired()) continue;  // handled at the top of the loop
      error = "I/O timed out";
      return finish(false);
    }

    if (pfd.revents & POLLOUT) {
      const ssize_t n = ::send(socket_.fd(), out.data() + out_offset,
                               out.size() - out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        out_offset += static_cast<std::size_t>(n);
        if (metrics) metrics->net_bytes_out.add(static_cast<std::uint64_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        error = std::string("send: ") + ::strerror(errno);
        return finish(false);
      }
    }

    if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) {
      const std::size_t old_size = in.size();
      in.resize(old_size + kReadChunk);
      const ssize_t n =
          ::recv(socket_.fd(), in.data() + old_size, kReadChunk, 0);
      if (n <= 0) {
        in.resize(old_size);
        if (n < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
          continue;
        }
        error = n == 0 ? "connection closed by server"
                       : std::string("recv: ") + ::strerror(errno);
        return finish(false);
      }
      in.resize(old_size + static_cast<std::size_t>(n));
      if (metrics) metrics->net_bytes_in.add(static_cast<std::uint64_t>(n));

      while (in_offset < in.size()) {
        const wire::FrameScan scan =
            wire::scan_frame(in.data() + in_offset, in.size() - in_offset);
        if (scan.state == wire::FrameScan::State::NeedMore) break;
        if (scan.state == wire::FrameScan::State::Bad) {
          if (metrics) metrics->net_decode_errors.add();
          error = "bad response stream: " + scan.error.to_string();
          return finish(false);
        }
        auto decoded = wire::decode_response_frame(in.data() + in_offset,
                                                   scan.frame_size);
        in_offset += scan.frame_size;
        if (!decoded.ok()) {
          if (metrics) metrics->net_decode_errors.add();
          error = "bad response frame: " + decoded.error.to_string();
          return finish(false);
        }
        if (metrics) metrics->net_frames_in.add();
        const auto it = id_to_index.find(decoded.value->request_id);
        // Unknown ids are stale answers from an abandoned attempt on a
        // connection we since reused; drop them.
        if (it == id_to_index.end()) continue;
        if (answered[it->second]) continue;
        responses[it->second] = std::move(decoded.value->response);
        answered[it->second] = 1;
        --pending;
      }
    }
  }
  return finish(true);
}

}  // namespace mpct::net
