#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/capture.hpp"

namespace mpct::net {

/// Knobs of one replay run.
struct ReplayOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Ignore the recorded arrival gaps and send as fast as the socket
  /// accepts; default honours the recorded pacing.
  bool max_speed = false;
  /// Per-poll IO timeout and the overall quiet-period cutoff while
  /// waiting for outstanding responses.
  int io_timeout_ms = 5000;
};

/// What a replay run observed.  `fingerprints` holds one entry per
/// answered request, sorted by request id, so two outcomes of the same
/// capture compare with ==.  Responses are fingerprinted *normalized*:
/// timing fields (latency), cache verdicts and trace ids are zeroed
/// before hashing, leaving exactly the semantic response — status code
/// and message plus the full decoded payload, re-encoded canonically.
struct ReplayOutcome {
  std::size_t sent = 0;
  std::size_t answered = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fingerprints;
  std::string error;

  bool ok() const { return error.empty(); }
  /// Replays match when every request got the same semantic response.
  friend bool operator==(const ReplayOutcome& a, const ReplayOutcome& b) {
    return a.sent == b.sent && a.answered == b.answered &&
           a.fingerprints == b.fingerprints;
  }
};

/// Semantic hash of one response frame: decode, zero latency /
/// cache_hit / trace id, re-encode at the frame's own version, FNV-1a
/// over the canonical bytes.  An undecodable frame hashes its raw bytes
/// (still deterministic, still comparable).  Exposed for tests and for
/// diffing saved fingerprint files.
std::uint64_t normalized_response_fingerprint(const std::uint8_t* frame,
                                              std::size_t frame_size);

/// Replay a recorded session against a live server: connect, send each
/// captured frame (honouring arrival gaps unless max_speed), collect
/// responses until every sent request is answered or the quiet period
/// expires.  The capture's own request ids travel unchanged, so
/// fingerprints line up across runs by construction.
ReplayOutcome replay_capture(const CaptureFile& capture,
                             const ReplayOptions& options);

}  // namespace mpct::net
