#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "service/engine.hpp"

namespace mpct::net {

/// Tuning knobs of a Client.
struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{2000};
  /// Longest the client waits for the socket to become readable/writable
  /// before declaring the attempt dead (per poll, while progress stalls).
  std::chrono::milliseconds io_timeout{10000};
  /// Reconnect-and-resend attempts after the first try.  Every request
  /// in the service API is idempotent (pure functions of the request +
  /// the engine's component library), so resending is always safe.
  int max_retries = 2;
  /// First retry backoff; doubles per retry.
  std::chrono::milliseconds initial_backoff{50};
  /// Optional registry for net_* counters (e.g. the engine's own, or a
  /// client-side one).  May be null.
  service::MetricsRegistry* metrics = nullptr;
};

/// Blocking TCP client for a net::Server.
///
/// call() submits one request; call_batch() pipelines a whole batch on
/// one connection — every frame is written before responses are
/// awaited, and responses are matched to requests by id, so the server
/// completing them out of order is invisible to the caller.
///
/// Failure model (all failures are *typed*, never exceptions):
///  * Transport errors (connect refused, reset, EOF, undecodable
///    response bytes) are retried with exponential backoff, resending
///    only the still-unanswered requests; when retries are exhausted the
///    remaining slots get StatusCode::Unavailable.
///  * A deadline bounds the whole call: the remaining budget travels on
///    the wire (the server rejects late requests DeadlineExceeded), and
///    a locally-expired deadline yields DeadlineExceeded without I/O.
///  * Per-request server-side errors (QueueFull, ProtocolError, ...)
///    arrive as ordinary responses and are returned as-is — they are
///    answers, not transport failures, and are never retried.
///
/// Not thread-safe: one Client per thread (they are cheap — one socket).
class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Synchronous round trip for one request.
  service::QueryResponse call(
      service::Request request,
      service::Deadline deadline = service::Deadline::never());

  /// Pipelined round trip: element i of the result answers request i.
  std::vector<service::QueryResponse> call_batch(
      std::vector<service::Request> requests,
      service::Deadline deadline = service::Deadline::never());

  bool connected() const { return socket_.valid(); }
  void disconnect() { socket_.close(); }
  const ClientOptions& options() const { return options_; }

 private:
  /// One wire attempt over the current connection: send every request in
  /// @p unanswered, collect responses into @p responses.  Returns false
  /// on a transport failure (the caller decides whether to retry);
  /// indices answered before the failure keep their responses.
  bool attempt(const std::vector<service::Request>& requests,
               std::vector<std::size_t>& unanswered,
               std::vector<service::QueryResponse>& responses,
               service::Deadline deadline, std::string& error);
  bool ensure_connected(std::string& error);

  ClientOptions options_;
  Socket socket_;
  std::uint64_t next_id_ = 1;
};

}  // namespace mpct::net
