#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/socket.hpp"
#include "service/engine.hpp"
#include "wire/protocol.hpp"

namespace mpct::net {

/// Tuning knobs of a Client.
struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{2000};
  /// Longest the client waits for the socket to become readable/writable
  /// before declaring the attempt dead (per poll, while progress stalls).
  std::chrono::milliseconds io_timeout{10000};
  /// Reconnect-and-resend attempts after the first try.  Every request
  /// in the service API is idempotent (pure functions of the request +
  /// the engine's component library), so resending is always safe.
  int max_retries = 2;
  /// First retry backoff; doubles per retry.
  std::chrono::milliseconds initial_backoff{50};
  /// Highest wire version this client will speak.  Frames are encoded at
  /// this version until negotiate() agrees on another; set 1 to emulate
  /// an old v1 client against a v2 server.
  std::uint16_t protocol_version = wire::kProtocolVersion;
  /// Optional registry for net_* counters (e.g. the engine's own, or a
  /// client-side one).  May be null.
  service::MetricsRegistry* metrics = nullptr;
  /// QoS class stamped on every request frame this client sends.
  /// nullopt lets the wire layer derive the request type's default
  /// class (point queries Interactive, grid work Batch); a replay soak
  /// sets Background so live traffic outranks it.  v1 frames cannot
  /// carry the byte — the value is dropped when the agreed version is 1.
  std::optional<qos::PriorityClass> priority;
};

/// Blocking TCP client for a net::Server.
///
/// call() submits one request; call_batch() pipelines a whole batch on
/// one connection — every frame is written before responses are
/// awaited, and responses are matched to requests by id, so the server
/// completing them out of order is invisible to the caller.
///
/// Failure model (all failures are *typed*, never exceptions):
///  * Transport errors (connect refused, reset, EOF, undecodable
///    response bytes) are retried with exponential backoff, resending
///    only the still-unanswered requests; when retries are exhausted the
///    remaining slots get StatusCode::Unavailable.
///  * A deadline bounds the whole call: the remaining budget travels on
///    the wire (the server rejects late requests DeadlineExceeded), and
///    a locally-expired deadline yields DeadlineExceeded without I/O.
///  * Per-request server-side errors (QueueFull, ProtocolError, ...)
///    arrive as ordinary responses and are returned as-is — they are
///    answers, not transport failures, and are never retried.  The one
///    exception is StatusCode::Overloaded: an admission-control shed is
///    explicitly transient, so call()/call_batch() resend shed requests
///    within the retry budget, sleeping max(backoff, the server's
///    retry_after_ms hint) first.
///
/// Metrics accounting: net_requests_sent counts *logical* requests —
/// once per request handed to call()/call_batch(), never re-counted on
/// retry (retries tick net_retries; hedges issued by the cluster layer
/// tick net_hedges_sent there).
///
/// Besides the synchronous API there is a non-blocking primitive layer
/// (send_request / pump / take_response / cancel) used by
/// cluster::ClusterClient to hedge across connections: it needs to park
/// a request on one server, start the same request elsewhere, and
/// cancel whichever loses.  Use ONE style per client instance — the
/// synchronous calls treat primitive-tracked responses as stale and
/// drop them.
///
/// Not thread-safe: one Client per thread (they are cheap — one socket).
class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Synchronous round trip for one request.  @p trace_id stamps the
  /// frame's v2 trace field (0 = derive one from the request id).
  service::QueryResponse call(
      service::Request request,
      service::Deadline deadline = service::Deadline::never(),
      std::uint64_t trace_id = 0);

  /// Pipelined round trip: element i of the result answers request i.
  std::vector<service::QueryResponse> call_batch(
      std::vector<service::Request> requests,
      service::Deadline deadline = service::Deadline::never(),
      std::uint64_t trace_id = 0);

  /// Hello/HelloAck version negotiation: agree with the server on the
  /// highest version both speak and use it for every later frame.
  /// Optional — without it the client just emits options().protocol_version.
  /// Returns Ok, UnsupportedVersion (typed, from the server), or
  /// Unavailable (transport).
  service::Status negotiate();

  /// Version subsequent frames are encoded at (protocol_version until a
  /// successful negotiate()).
  std::uint16_t agreed_version() const { return agreed_version_; }

  /// Liveness probe: Ping → Pong round trip within @p timeout.
  bool ping(std::chrono::milliseconds timeout, std::string& error);

  // --- Non-blocking primitive layer (cluster::ClusterClient) ---------

  /// Write one request frame (blocking until written or failed) and
  /// track its id; the response is collected later via pump() +
  /// take_response().  Does NOT count net_requests_sent — the caller
  /// owns logical-request accounting.  @p priority overrides
  /// options().priority for this one frame (hedges inherit the
  /// original request's class).
  bool send_request(const service::Request& request,
                    service::Deadline deadline, std::uint64_t trace_id,
                    std::uint64_t& id_out, std::string& error,
                    std::optional<qos::PriorityClass> priority = std::nullopt);

  /// Poll the socket for up to @p wait and read/decode once.  Returns
  /// the number of newly completed tracked requests, or -1 on transport
  /// error (the connection is reset; every tracked request is lost).
  int pump(std::chrono::milliseconds wait, std::string& error);

  /// Move request @p id's response out, if it has completed.
  bool take_response(std::uint64_t id, service::QueryResponse& out);

  /// Stop tracking @p id (hedge loser): a late response is dropped on
  /// arrival.  The server still executes it — requests are idempotent
  /// and its result may warm the server's cache.
  void cancel(std::uint64_t id);

  /// Ask the *server* to abandon request @p id too (wire CancelRequest,
  /// v2-only — a no-op returning true when the agreed version is 1).
  /// Fire-and-forget: the cancelled request's own response is the
  /// acknowledgement.  Counts qos_cancels_sent.  Callers usually pair
  /// this with cancel(id) to also drop the local tracking.
  bool send_cancel(std::uint64_t id, std::string& error);

  std::size_t pending_count() const { return pending_.size(); }

  bool connected() const { return socket_.valid(); }
  void disconnect();
  const ClientOptions& options() const { return options_; }

 private:
  /// One wire attempt over the current connection: send every request in
  /// @p unanswered, collect responses into @p responses.  Returns false
  /// on a transport failure (the caller decides whether to retry);
  /// indices answered before the failure keep their responses.
  bool attempt(const std::vector<service::Request>& requests,
               std::vector<std::size_t>& unanswered,
               std::vector<service::QueryResponse>& responses,
               service::Deadline deadline, std::uint64_t trace_id,
               std::string& error);
  bool ensure_connected(std::string& error);
  /// Blocking write of a whole frame (poll + send loop).  On failure the
  /// connection is reset.
  bool write_frame(const std::vector<std::uint8_t>& frame,
                   service::Deadline deadline, std::string& error);
  /// Decode every complete frame in in_ into completed_ / pongs_ /
  /// hello_ack_.  False on a broken stream.
  bool drain_frames(std::string& error);

  ClientOptions options_;
  Socket socket_;
  std::uint64_t next_id_ = 1;
  std::uint16_t agreed_version_;

  // Primitive-layer stream state (reset by disconnect()).
  std::vector<std::uint8_t> in_;
  std::size_t in_offset_ = 0;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_map<std::uint64_t, service::QueryResponse> completed_;
  std::unordered_set<std::uint64_t> pongs_;
  std::optional<wire::HelloAckFrame> hello_ack_;
};

}  // namespace mpct::net
