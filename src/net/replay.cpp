#include "net/replay.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <set>
#include <thread>

#include "net/socket.hpp"
#include "wire/protocol.hpp"

namespace mpct::net {

namespace {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t normalized_response_fingerprint(const std::uint8_t* frame,
                                              std::size_t frame_size) {
  const wire::DecodeResult<wire::ResponseFrame> decoded =
      wire::decode_response_frame(frame, frame_size);
  if (!decoded.ok()) return fnv1a(frame, frame_size);
  wire::ResponseFrame normalized = *decoded.value;
  normalized.response.latency = std::chrono::nanoseconds{0};
  normalized.response.cache_hit = false;
  const std::vector<std::uint8_t> canonical = wire::encode_response_frame(
      normalized.request_id, normalized.response, normalized.version,
      /*trace_id=*/0);
  return fnv1a(canonical.data(), canonical.size());
}

ReplayOutcome replay_capture(const CaptureFile& capture,
                             const ReplayOptions& options) {
  ReplayOutcome outcome;
  if (capture.records.empty()) return outcome;

  std::string connect_error;
  Socket socket = connect_tcp(options.host, options.port,
                              options.io_timeout_ms, connect_error);
  if (!socket.valid()) {
    outcome.error = "replay: " + connect_error;
    return outcome;
  }

  // Request ids we still expect a response for.  Ids come from the
  // capture verbatim; a capture with duplicate ids still terminates
  // (the set collapses them) but fingerprints then only keep the last
  // response per id.
  std::set<std::uint64_t> outstanding;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fingerprints;
  std::vector<std::uint8_t> read_buffer;
  std::size_t next_record = 0;
  std::size_t write_offset = 0;  // within the current record's frame

  const auto drain_responses = [&](const std::uint8_t* data,
                                   std::size_t size) {
    read_buffer.insert(read_buffer.end(), data, data + size);
    std::size_t consumed = 0;
    for (;;) {
      const wire::FrameScan scan = wire::scan_frame(
          read_buffer.data() + consumed, read_buffer.size() - consumed);
      if (scan.state != wire::FrameScan::State::Ready) {
        if (scan.state == wire::FrameScan::State::Bad) {
          outcome.error = "replay: response stream broken: " +
                          scan.error.message;
        }
        break;
      }
      if (scan.header.kind == wire::FrameKind::Response) {
        const std::uint64_t id = scan.header.request_id;
        const std::uint64_t print = normalized_response_fingerprint(
            read_buffer.data() + consumed, scan.frame_size);
        fingerprints.emplace_back(id, print);
        ++outcome.answered;
        outstanding.erase(id);
      }
      consumed += scan.frame_size;
    }
    if (consumed > 0) {
      read_buffer.erase(read_buffer.begin(),
                        read_buffer.begin() +
                            static_cast<std::ptrdiff_t>(consumed));
    }
  };

  auto last_progress = std::chrono::steady_clock::now();
  while (outcome.error.empty() &&
         (next_record < capture.records.size() || !outstanding.empty())) {
    // Pace the next frame: honour the recorded arrival gap once the
    // previous frame is fully on the wire.
    if (next_record < capture.records.size() && write_offset == 0 &&
        !options.max_speed) {
      const std::uint32_t delta = capture.records[next_record].delta_us;
      if (delta > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delta));
      }
    }

    pollfd pfd{};
    pfd.fd = socket.fd();
    pfd.events = POLLIN;
    if (next_record < capture.records.size()) pfd.events |= POLLOUT;
    const int ready = ::poll(&pfd, 1, options.io_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      outcome.error = "replay: poll failed";
      break;
    }
    if (ready == 0) {
      outcome.error = "replay: timed out with " +
                      std::to_string(outstanding.size()) +
                      " responses outstanding";
      break;
    }

    if (pfd.revents & POLLIN) {
      std::uint8_t chunk[16384];
      const ssize_t got = ::read(socket.fd(), chunk, sizeof(chunk));
      if (got > 0) {
        drain_responses(chunk, static_cast<std::size_t>(got));
        last_progress = std::chrono::steady_clock::now();
      } else if (got == 0) {
        outcome.error = "replay: server closed the connection with " +
                        std::to_string(outstanding.size()) +
                        " responses outstanding";
        break;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        outcome.error = "replay: read failed";
        break;
      }
    }

    if ((pfd.revents & POLLOUT) && next_record < capture.records.size()) {
      const std::vector<std::uint8_t>& frame =
          capture.records[next_record].frame;
      const ssize_t sent = ::write(socket.fd(), frame.data() + write_offset,
                                   frame.size() - write_offset);
      if (sent > 0) {
        write_offset += static_cast<std::size_t>(sent);
        last_progress = std::chrono::steady_clock::now();
        if (write_offset == frame.size()) {
          const wire::FrameScan scan =
              wire::scan_frame(frame.data(), frame.size());
          if (scan.state == wire::FrameScan::State::Ready &&
              scan.header.kind == wire::FrameKind::Request) {
            outstanding.insert(scan.header.request_id);
          }
          ++outcome.sent;
          ++next_record;
          write_offset = 0;
        }
      } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        outcome.error = "replay: write failed";
        break;
      }
    }

    if (pfd.revents & (POLLERR | POLLHUP) && !(pfd.revents & POLLIN)) {
      outcome.error = "replay: connection lost";
      break;
    }

    // Defensive cutoff: poll kept returning readable/writable without
    // any bytes moving (shouldn't happen, but never spin forever).
    if (std::chrono::steady_clock::now() - last_progress >
        std::chrono::milliseconds(options.io_timeout_ms)) {
      outcome.error = "replay: no progress within the io timeout";
      break;
    }
  }

  // Fingerprints sorted by (id, hash); duplicate ids collapse to one
  // deterministic entry, so two runs of the same capture compare with ==.
  std::sort(fingerprints.begin(), fingerprints.end());
  fingerprints.erase(
      std::unique(fingerprints.begin(), fingerprints.end(),
                  [](const auto& a, const auto& b) { return a.first == b.first; }),
      fingerprints.end());
  outcome.fingerprints = std::move(fingerprints);
  return outcome;
}

}  // namespace mpct::net
