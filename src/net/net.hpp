#pragma once

/// Umbrella header for the TCP transport: RAII sockets, the poll-based
/// nonblocking Server fronting a service::QueryEngine, and the
/// pipelining retrying Client.  Frame encoding lives in wire/wire.hpp.

#include "net/capture.hpp"  // IWYU pragma: export
#include "net/client.hpp"   // IWYU pragma: export
#include "net/replay.hpp"   // IWYU pragma: export
#include "net/server.hpp"   // IWYU pragma: export
#include "net/socket.hpp"   // IWYU pragma: export
