#include "net/trace_stream.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <utility>

#include "wire/protocol.hpp"

namespace mpct::net {

TraceStreamer::TraceStreamer(TraceStreamerOptions options)
    : options_(std::move(options)), filter_(options_.policy) {}

TraceStreamer::~TraceStreamer() { stop(); }

bool TraceStreamer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  error_.clear();
  stopping_.store(false, std::memory_order_release);
  socket_ = connect_tcp(options_.host, options_.port,
                        static_cast<int>(options_.connect_timeout.count()),
                        error_);
  if (!socket_.valid()) return false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

void TraceStreamer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  socket_.close();
}

void TraceStreamer::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pump(false);
    // Sleep in small slices so stop() stays responsive at any interval.
    auto remaining = options_.interval;
    const auto slice = std::chrono::milliseconds(10);
    while (remaining.count() > 0 &&
           !stopping_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(remaining < slice ? remaining : slice);
      remaining -= slice;
    }
  }
  // Final tick: ship whatever the rings still hold, with a bounded
  // blocking flush so short-lived processes deliver their tail.
  pump(true);
}

void TraceStreamer::pump(bool final_tick) {
  trace::Tracer::DrainResult drained = trace::Tracer::instance().drain();
  pending_dropped_ += drained.dropped;
  if (drained.dropped > 0) {
    // Ring wrap past the export cursor: real losses, same counter as
    // shed batches so drop accounting reads as one number.
    spans_dropped_.fetch_add(drained.dropped, std::memory_order_relaxed);
    if (options_.metrics != nullptr) {
      options_.metrics->trace_spans_dropped.add(drained.dropped);
    }
  }
  std::vector<trace::ExportSpan> kept = filter_.apply(drained.spans);
  const std::uint64_t sampled_total = filter_.sampled_out();
  const std::uint64_t sampled_prev =
      spans_sampled_out_.exchange(sampled_total, std::memory_order_relaxed);
  if (options_.metrics != nullptr && sampled_total > sampled_prev) {
    options_.metrics->trace_spans_sampled_out.add(sampled_total -
                                                  sampled_prev);
  }

  std::size_t offset = 0;
  do {
    const std::size_t count =
        std::min(options_.max_spans_per_batch, kept.size() - offset);
    trace::SpanBatch batch;
    batch.node = options_.node;
    batch.send_ns = trace::Tracer::instance().now_ns();
    batch.dropped = pending_dropped_;
    batch.spans.assign(kept.begin() + static_cast<std::ptrdiff_t>(offset),
                       kept.begin() + static_cast<std::ptrdiff_t>(offset) +
                           static_cast<std::ptrdiff_t>(count));
    offset += count;

    const std::vector<std::uint8_t> frame =
        wire::encode_span_batch_frame(next_batch_id_++, batch);
    const std::size_t backlog = outbox_.size() - outbox_offset_;
    if (dead_ || backlog + frame.size() > options_.max_outbox_bytes) {
      // Back-pressure: the collector is not keeping up.  Shed this
      // batch whole — bounded memory beats unbounded buffering — and
      // carry the loss into the next batch's dropped field.
      pending_dropped_ += batch.spans.size();
      spans_dropped_.fetch_add(batch.spans.size(),
                               std::memory_order_relaxed);
      batches_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (options_.metrics != nullptr) {
        options_.metrics->trace_spans_dropped.add(batch.spans.size());
        options_.metrics->trace_batches_dropped.add();
      }
    } else {
      outbox_.insert(outbox_.end(), frame.begin(), frame.end());
      pending_dropped_ = 0;
      spans_exported_.fetch_add(batch.spans.size(),
                                std::memory_order_relaxed);
      batches_sent_.fetch_add(1, std::memory_order_relaxed);
      if (options_.metrics != nullptr) {
        options_.metrics->trace_spans_exported.add(batch.spans.size());
        options_.metrics->trace_batches_sent.add();
        options_.metrics->net_frames_out.add();
      }
    }
  } while (offset < kept.size());

  flush(final_tick ? 200 : 0);
}

void TraceStreamer::flush(int wait_ms) {
  for (;;) {
    if (outbox_offset_ == outbox_.size()) {
      outbox_.clear();
      outbox_offset_ = 0;
      return;
    }
    const ssize_t n =
        ::send(socket_.fd(), outbox_.data() + outbox_offset_,
               outbox_.size() - outbox_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      outbox_offset_ += static_cast<std::size_t>(n);
      if (options_.metrics != nullptr) {
        options_.metrics->net_bytes_out.add(static_cast<std::uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_ms <= 0) return;  // try again next tick
      pollfd pfd{socket_.fd(), POLLOUT, 0};
      if (::poll(&pfd, 1, wait_ms) <= 0) return;
      wait_ms = 0;  // one bounded wait per flush call
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Dead link: everything unsent is lost, and every later batch is
    // shed at the pump (drop-counted) instead of pretending to export.
    error_ = "trace stream connection lost";
    dead_ = true;
    outbox_.clear();
    outbox_offset_ = 0;
    return;
  }
}

}  // namespace mpct::net
