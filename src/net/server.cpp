#include "net/server.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "trace/trace.hpp"
#include "wire/wire.hpp"

namespace mpct::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Chunk size for recv(); frames larger than this just take several
/// reads to accumulate.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Poll granularity: upper bound on how stale the idle sweep and the
/// drain-deadline check can be.  Completions interrupt poll via the
/// self-pipe, so this is not a latency floor.
constexpr int kPollTickMs = 100;

}  // namespace

Server::Server(service::QueryEngine& engine, ServerOptions options)
    : handler_([&engine](service::Request request, service::Deadline deadline,
                         const RequestContext& context,
                         service::QueryEngine::ResponseCallback callback) {
        // The wire identity (connection serial, request id) doubles as
        // the engine's cancellation key, so a CancelRequest frame can
        // name this submission later.
        engine.submit_async(std::move(request), deadline, context.priority,
                            context.conn_id, context.request_id,
                            std::move(callback));
      }),
      engine_(&engine),
      options_(std::move(options)),
      metrics_(engine.metrics()) {}

Server::Server(Handler handler, service::MetricsRegistry& metrics,
               ServerOptions options)
    : handler_(std::move(handler)),
      options_(std::move(options)),
      metrics_(metrics) {}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  error_.clear();
  stopping_.store(false, std::memory_order_release);

  listener_ = listen_tcp(options_.host, options_.port, port_, error_);
  if (!listener_.valid()) return false;

  if (!options_.capture_path.empty() &&
      !capture_.open(options_.capture_path, error_)) {
    listener_.close();
    return false;
  }

  if (::pipe(wake_fds_) != 0) {
    error_ = std::string("pipe: ") + ::strerror(errno);
    listener_.close();
    capture_.close();
    return false;
  }
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
  return true;
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);

  // The loop may have given up on slow in-flight requests at the drain
  // deadline; their engine callbacks still reference this object.  Wait
  // for the engine to finish everything before tearing state down so no
  // callback can touch a dead Server.  (Handler mode: the handler's
  // owner provides this guarantee — see the Handler ctor contract.)
  if (engine_) engine_->drain();

  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  connections_.clear();
  connection_count_.store(0, std::memory_order_release);
  completions_.clear();
  capture_.close();
}

void Server::wake() {
  if (wake_fds_[1] < 0) return;
  const char byte = 1;
  // EAGAIN means the pipe already holds a wake-up; that is enough.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Server::loop() {
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd row (0 = none)
  bool drain_deadline_set = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && !drain_deadline_set) {
      drain_deadline = Clock::now() + options_.drain_timeout;
      drain_deadline_set = true;
    }
    if (stopping) {
      const bool drained =
          in_flight_total_.load(std::memory_order_acquire) == 0 &&
          std::all_of(connections_.begin(), connections_.end(),
                      [](const auto& kv) {
                        return kv.second.write_buffer.size() ==
                               kv.second.write_offset;
                      });
      if (drained || Clock::now() >= drain_deadline) break;
    }

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfd_conn.push_back(0);
    const bool accepting =
        !stopping && connections_.size() < options_.max_connections;
    if (accepting) {
      pfds.push_back({listener_.fd(), POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : connections_) {
      short events = 0;
      if (!stopping && !conn.paused) events |= POLLIN;
      if (conn.write_buffer.size() > conn.write_offset) events |= POLLOUT;
      pfds.push_back({conn.socket.fd(), events, 0});
      pfd_conn.push_back(id);
    }

    ::poll(pfds.data(), pfds.size(), kPollTickMs);

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    drain_completions();
    if (accepting && (pfds[1].revents & POLLIN)) accept_connections();

    // Walk by conn id, re-resolving per event: any handler may have
    // closed the connection (stale pollfd rows must not be trusted).
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const std::uint64_t id = pfd_conn[i];
      if (id == 0) continue;
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      const short revents = pfds[i].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_connection(id);
        continue;
      }
      if ((revents & POLLOUT) && !handle_writable(it->second)) {
        close_connection(id);
        continue;
      }
      if ((revents & POLLIN) && !handle_readable(id, it->second)) {
        close_connection(id);
      }
    }

    if (!stopping) sweep_idle(Clock::now());
  }

  // Shutdown: close every socket.  Completions racing in afterwards are
  // swallowed by the final drain in stop() — the engine is drained there
  // before the Server dies, so no callback outlives it.
  drain_completions();
  for (auto& [id, conn] : connections_) {
    (void)id;
    conn.socket.close();
    metrics_.net_connections_closed.add();
    metrics_.net_active_connections.decrement();
  }
  connections_.clear();
  connection_count_.store(0, std::memory_order_release);
  listener_.close();
}

void Server::accept_connections() {
  for (;;) {
    if (connections_.size() >= options_.max_connections) break;
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient error: try next poll round
    trace::emit_instant("net.accept", trace::Category::Net);
    set_nonblocking(fd);
    set_nodelay(fd);
    Connection conn;
    conn.socket = Socket(fd);
    conn.last_activity = Clock::now();
    connections_.emplace(next_conn_id_++, std::move(conn));
    connection_count_.store(connections_.size(), std::memory_order_release);
    metrics_.net_connections_opened.add();
    metrics_.net_active_connections.increment();
  }
}

bool Server::handle_readable(std::uint64_t conn_id, Connection& conn) {
  for (;;) {
    const std::size_t old_size = conn.read_buffer.size();
    conn.read_buffer.resize(old_size + kReadChunk);
    const ssize_t n =
        ::recv(conn.socket.fd(), conn.read_buffer.data() + old_size,
               kReadChunk, 0);
    if (n > 0) {
      conn.read_buffer.resize(old_size + static_cast<std::size_t>(n));
      conn.last_activity = Clock::now();
      metrics_.net_bytes_in.add(static_cast<std::uint64_t>(n));
      if (!consume_frames(conn_id, conn)) return false;
      // consume_frames may have tripped the write watermark: stop
      // reading until the client drains its responses.
      if (conn.paused) return true;
      if (static_cast<std::size_t>(n) < kReadChunk) return true;
      continue;
    }
    conn.read_buffer.resize(old_size);
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
    return false;
  }
}

bool Server::consume_frames(std::uint64_t conn_id, Connection& conn) {
  bool ok = true;
  std::size_t offset = 0;
  while (offset < conn.read_buffer.size()) {
    const wire::FrameScan scan = wire::scan_frame(
        conn.read_buffer.data() + offset, conn.read_buffer.size() - offset);
    if (scan.state == wire::FrameScan::State::NeedMore) break;
    if (scan.state == wire::FrameScan::State::Bad) {
      // Framing is gone: nothing downstream of a bad header can be
      // trusted, so the stream (not just the frame) is unrecoverable.
      metrics_.net_decode_errors.add();
      ok = false;
      break;
    }
    metrics_.net_frames_in.add();
    if (!dispatch_request(conn_id, conn, conn.read_buffer.data() + offset,
                          scan.frame_size)) {
      ok = false;
      break;
    }
    offset += scan.frame_size;
  }
  conn.read_buffer.erase(conn.read_buffer.begin(),
                         conn.read_buffer.begin() +
                             static_cast<std::ptrdiff_t>(offset));
  return ok;
}

bool Server::dispatch_request(std::uint64_t conn_id, Connection& conn,
                              const std::uint8_t* frame,
                              std::size_t frame_size) {
  const wire::FrameScan scan = wire::scan_frame(frame, frame_size);
  // Request frames install their wire trace id as the thread's trace
  // context before the dispatch span opens, so this span — and every
  // span the handler records inline — is stamped with it.
  trace::TraceContextScope context(
      scan.header.kind == wire::FrameKind::Request ? scan.header.trace_id : 0);
  trace::ScopedSpan span("net.dispatch", trace::Category::Net);

  // Control frames are answered inline on the loop thread: they carry
  // no payload worth a worker round trip, and health probes must stay
  // answerable even when the engine queue is saturated.
  switch (scan.header.kind) {
    case wire::FrameKind::Ping:
      return queue_write(conn,
                         wire::encode_pong_frame(scan.header.request_id));
    case wire::FrameKind::Hello: {
      auto hello = wire::decode_hello_frame(frame, frame_size);
      if (!hello.ok()) {
        metrics_.net_decode_errors.add();
        return queue_write(
            conn, wire::encode_hello_ack_frame(
                      scan.header.request_id,
                      service::Status::protocol_error(
                          hello.error.to_string()),
                      wire::kProtocolVersion));
      }
      const auto agreed = wire::negotiate_version(hello.value->min_version,
                                                  hello.value->max_version);
      service::Status status =
          agreed ? service::Status::okay()
                 : service::Status::unsupported_version(
                       "client speaks " +
                       std::to_string(hello.value->min_version) + ".." +
                       std::to_string(hello.value->max_version) +
                       ", this server speaks " +
                       std::to_string(wire::kMinProtocolVersion) + ".." +
                       std::to_string(wire::kProtocolVersion));
      return queue_write(
          conn, wire::encode_hello_ack_frame(
                    hello.value->request_id, status,
                    agreed.value_or(wire::kProtocolVersion)));
    }
    case wire::FrameKind::Pong:
    case wire::FrameKind::HelloAck:
      return true;  // meaningless server-side; tolerate and move on
    case wire::FrameKind::CancelRequest: {
      // Fire-and-forget: no response frame.  The cancelled request's own
      // response (Cancelled if the cancel won, the result if it lost) is
      // the acknowledgement, so an unknown/already-resolved id needs no
      // answer either.
      auto cancel = wire::decode_cancel_frame(frame, frame_size);
      if (!cancel.ok()) {
        metrics_.net_decode_errors.add();
        return true;  // losing one cancel must not kill the stream
      }
      metrics_.qos_cancels_received.add();
      trace::emit_instant("net.cancel_request", trace::Category::Qos);
      // Handler mode (the proxy tier) has no engine-side queue to
      // reclaim; the frame is counted and dropped there.
      if (engine_ != nullptr) {
        engine_->cancel(conn_id, cancel.value->request_id);
      }
      return true;
    }
    case wire::FrameKind::SpanBatch: {
      // Fire-and-forget streaming export: no response frame ever.  A
      // malformed payload inside a good frame is counted and skipped —
      // losing one batch must not kill the stream carrying the rest.
      auto batch = wire::decode_span_batch_frame(frame, frame_size);
      if (!batch.ok()) {
        metrics_.net_decode_errors.add();
        return true;
      }
      metrics_.trace_collector_batches.add();
      metrics_.trace_collector_spans.add(batch.value->batch.spans.size());
      if (options_.span_sink) options_.span_sink(std::move(*batch.value));
      return true;
    }
    default:
      break;  // Request (or Response, rejected in-band below)
  }

  // Recorder hook: every well-framed request frame, verbatim, before
  // decode — so a replay exercises the same decode path this server
  // did, malformed payloads included.  Loop thread only, like all
  // frame handling.
  if (capture_.is_open() && scan.header.kind == wire::FrameKind::Request) {
    capture_.record(frame, frame_size);
  }

  auto decoded = wire::decode_request_frame(frame, frame_size);
  if (!decoded.ok()) {
    // Well-framed but undecodable payload: answer in-band so the client
    // learns *which* request died, and keep the stream alive.
    metrics_.net_decode_errors.add();
    service::QueryResponse response;
    response.status =
        service::Status::protocol_error(decoded.error.to_string());
    return queue_write(conn, wire::encode_response_frame(
                                 scan.header.request_id, response,
                                 scan.header.version,
                                 scan.header.trace_id));
  }

  const std::uint64_t request_id = decoded.value->request_id;
  const std::uint16_t version = decoded.value->version;
  const std::uint64_t trace_id = decoded.value->trace_id;
  if (trace_id != 0) {
    span.annotate("trace_id", static_cast<std::int64_t>(trace_id));
  }
  service::Deadline deadline = service::Deadline::never();
  if (decoded.value->deadline_ms > 0) {
    deadline = service::Deadline::in(
        std::chrono::milliseconds(decoded.value->deadline_ms));
  }

  ++conn.in_flight;
  in_flight_total_.fetch_add(1, std::memory_order_acq_rel);
  const RequestContext request_context{trace_id, decoded.value->priority,
                                       conn_id, request_id};
  handler_(
      std::move(decoded.value->request), deadline, request_context,
      [this, conn_id, request_id, version,
       trace_id](service::QueryResponse response) {
        // Worker thread (or this thread, for rejections): encode here so
        // serialisation cost never lands on the event loop.  The
        // response goes out at the version (and with the trace id) the
        // request arrived with, which is what keeps v1 clients working.
        trace::TraceContextScope encode_context(trace_id);
        trace::ScopedSpan encode_span("net.encode", trace::Category::Net,
                                      "trace_id",
                                      static_cast<std::int64_t>(trace_id));
        enqueue_completion(conn_id,
                           wire::encode_response_frame(request_id, response,
                                                       version, trace_id));
      });
  return true;
}

void Server::enqueue_completion(std::uint64_t conn_id,
                                std::vector<std::uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.emplace_back(conn_id, std::move(bytes));
  }
  wake();
}

void Server::drain_completions() {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> ready;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (auto& [conn_id, bytes] : ready) {
    in_flight_total_.fetch_sub(1, std::memory_order_acq_rel);
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // client left; drop response
    if (it->second.in_flight > 0) --it->second.in_flight;
    if (!queue_write(it->second, std::move(bytes))) close_connection(conn_id);
  }
}

bool Server::queue_write(Connection& conn, std::vector<std::uint8_t> bytes) {
  conn.write_buffer.insert(conn.write_buffer.end(), bytes.begin(),
                           bytes.end());
  metrics_.net_frames_out.add();
  const std::size_t pending = conn.write_buffer.size() - conn.write_offset;
  if (!conn.paused && pending > options_.write_high_watermark) {
    conn.paused = true;
  }
  // Opportunistic flush: most responses fit the socket buffer, so this
  // usually clears the backlog without waiting for the next POLLOUT.
  return handle_writable(conn);
}

bool Server::handle_writable(Connection& conn) {
  trace::ScopedSpan span("net.flush", trace::Category::Net);
  while (conn.write_offset < conn.write_buffer.size()) {
    const ssize_t n = ::send(
        conn.socket.fd(), conn.write_buffer.data() + conn.write_offset,
        conn.write_buffer.size() - conn.write_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_offset += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      metrics_.net_bytes_out.add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      break;
    }
    return false;
  }
  if (conn.write_offset == conn.write_buffer.size()) {
    conn.write_buffer.clear();
    conn.write_offset = 0;
  } else if (conn.write_offset > (1u << 20)) {
    // Compact occasionally so a long-lived backlog does not pin the
    // already-sent prefix.
    conn.write_buffer.erase(conn.write_buffer.begin(),
                            conn.write_buffer.begin() +
                                static_cast<std::ptrdiff_t>(conn.write_offset));
    conn.write_offset = 0;
  }
  const std::size_t pending = conn.write_buffer.size() - conn.write_offset;
  if (conn.paused && pending < options_.write_high_watermark / 2) {
    conn.paused = false;
  }
  return true;
}

void Server::close_connection(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  // In-flight responses for this connection will be dropped when their
  // completions arrive; in_flight_total_ is decremented there, so the
  // drain accounting stays exact.
  connections_.erase(it);
  connection_count_.store(connections_.size(), std::memory_order_release);
  metrics_.net_connections_closed.add();
  metrics_.net_active_connections.decrement();
}

void Server::sweep_idle(Clock::time_point now) {
  if (options_.idle_timeout.count() <= 0) return;
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn.in_flight > 0) continue;
    if (conn.write_buffer.size() > conn.write_offset) continue;
    if (now - conn.last_activity >= options_.idle_timeout) idle.push_back(id);
  }
  for (std::uint64_t id : idle) close_connection(id);
}

}  // namespace mpct::net
