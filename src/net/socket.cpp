#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mpct::net {
namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + ::strerror(errno);
}

bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in& addr, std::string& error) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string target = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    error = "invalid IPv4 address: " + target;
    return false;
  }
  return true;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

Socket listen_tcp(const std::string& host, std::uint16_t port,
                  std::uint16_t& bound_port, std::string& error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, addr, error)) return {};

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    error = errno_string("socket");
    return {};
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error = errno_string("bind");
    return {};
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    error = errno_string("listen");
    return {};
  }
  if (!set_nonblocking(sock.fd())) {
    error = errno_string("fcntl(O_NONBLOCK)");
    return {};
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) !=
      0) {
    error = errno_string("getsockname");
    return {};
  }
  bound_port = ntohs(actual.sin_port);
  error.clear();
  return sock;
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms, std::string& error) {
  sockaddr_in addr;
  if (!parse_addr(host, port, addr, error)) return {};

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    error = errno_string("socket");
    return {};
  }
  if (!set_nonblocking(sock.fd())) {
    error = errno_string("fcntl(O_NONBLOCK)");
    return {};
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      error = errno_string("connect");
      return {};
    }
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      error = ready == 0 ? "connect timed out" : errno_string("poll");
      return {};
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      error = errno_string("connect");
      return {};
    }
  }
  set_nodelay(sock.fd());
  error.clear();
  return sock;
}

}  // namespace mpct::net
