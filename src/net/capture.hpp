#pragma once

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <string>
#include <vector>

namespace mpct::net {

/// Recorded-traffic capture: the server's event loop appends every
/// well-framed Request frame it receives, verbatim, together with the
/// arrival gap to the previous one.  Because frames are stored exactly
/// as they crossed the wire (request id, version, deadline, payload),
/// a capture replays against any server speaking the same protocol —
/// the replay harness (net/replay.hpp) compares normalized response
/// fingerprints to prove behaviour identical across runs or builds.
///
/// File layout (little-endian):
///   u32 magic "MPC1" (0x3143504d)   u16 format version = 1   u16 zero
/// then per record:
///   u32 frame_size   u32 delta_us (arrival gap, first record 0)
///   frame_size raw frame bytes
struct CaptureRecord {
  std::uint32_t delta_us = 0;
  std::vector<std::uint8_t> frame;
};

struct CaptureFile {
  std::vector<CaptureRecord> records;
};

inline constexpr std::uint32_t kCaptureMagic = 0x3143504du;  // "MPC1"
inline constexpr std::uint16_t kCaptureFormatVersion = 1;

/// Append-only writer.  Single-threaded by design: the server's event
/// loop is the only caller (all request frames pass through it), so
/// records need no locking and arrival order is exact.  Each record is
/// flushed as written — a capture survives an unclean shutdown up to
/// the last complete record.
class CaptureWriter {
 public:
  CaptureWriter() = default;
  ~CaptureWriter() { close(); }

  CaptureWriter(const CaptureWriter&) = delete;
  CaptureWriter& operator=(const CaptureWriter&) = delete;

  /// Create/truncate @p path and write the file header.  False + error
  /// message on failure.
  bool open(const std::string& path, std::string& error);

  /// Append one raw request frame; stamps the arrival delta since the
  /// previous record (0 for the first).
  void record(const std::uint8_t* frame, std::size_t frame_size);

  void close();

  bool is_open() const { return file_ != nullptr; }
  std::size_t frames_written() const { return frames_; }

 private:
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point last_{};
  std::size_t frames_ = 0;
};

/// Read a whole capture into memory.  False + error on a missing file,
/// bad magic/version, or a truncated record (records before the
/// truncation point are NOT returned — a capture is all-or-nothing so
/// replays never silently compare partial sessions).
bool read_capture(const std::string& path, CaptureFile& out,
                  std::string& error);

}  // namespace mpct::net
