#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/capture.hpp"
#include "net/socket.hpp"
#include "service/engine.hpp"
#include "wire/protocol.hpp"

namespace mpct::net {

/// Tuning knobs of a Server.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the actual one.
  std::uint16_t port = 0;
  std::size_t max_connections = 256;

  /// Reading from a connection pauses once its unsent response bytes
  /// exceed this (and resumes below half of it).  Bounds per-connection
  /// memory against a client that pipelines faster than it reads.
  std::size_t write_high_watermark = 4u << 20;

  /// Close a connection with no traffic, no queued writes and no
  /// in-flight requests for this long.  <= 0 disables the idle sweep.
  std::chrono::milliseconds idle_timeout{30000};

  /// How long stop() waits for in-flight requests to complete and
  /// response bytes to flush before closing connections anyway.
  std::chrono::milliseconds drain_timeout{5000};

  /// When non-empty, record every well-framed request frame (verbatim,
  /// with arrival gaps) to this capture file for later replay with
  /// net::replay_capture.  Opening the file is part of start(): a path
  /// that cannot be created fails the server rather than silently
  /// recording nothing.
  std::string capture_path;

  /// Where decoded SpanBatch frames (streaming flight-recorder export)
  /// go — set on a collector server, typically feeding a
  /// trace::Collector.  Called from the loop thread; keep it cheap
  /// (the Collector's ingest is one lock + a few vector appends).
  /// Span batches are fire-and-forget: no response frame is written,
  /// and without a sink they are counted and discarded.
  std::function<void(wire::SpanBatchFrame)> span_sink;
};

/// Poll-based nonblocking TCP front end for a service::QueryEngine.
///
/// One event-loop thread owns every socket: it accepts connections,
/// splits the byte stream into frames (wire::scan_frame), decodes
/// requests and hands them to the engine via submit_async().  Engine
/// callbacks run on worker threads: they encode the response frame there
/// (keeping serialisation off the loop) and enqueue the bytes to a
/// completion list the loop drains after a self-pipe wake-up.  Responses
/// therefore complete out of order; clients match them by request id.
///
/// Error handling is two-tier, mirroring the wire layer's split:
///  * A broken *stream* (bad magic, unknown version, oversized frame)
///    means framing is unrecoverable — the connection is closed.
///  * A malformed *payload* inside a well-framed frame gets a typed
///    StatusCode::ProtocolError response keyed by the frame's request
///    id, and the stream continues.
///
/// Backpressure is never silent: a full engine queue surfaces as a
/// QueueFull response on the wire, and a slow-reading client stops being
/// read from (write_high_watermark) until it catches up.
class Server {
 public:
  /// Per-request wire context handed to a Handler alongside the decoded
  /// request.  `trace_id` is the frame's v2 trace field (0 on v1
  /// frames); `priority` is the decoded QoS class (the request type's
  /// default when the frame did not carry the byte); (`conn_id`,
  /// `request_id`) is the cancellation identity the engine registers
  /// the request under — a later CancelRequest frame on the same
  /// connection names exactly this pair.
  struct RequestContext {
    std::uint64_t trace_id = 0;
    qos::PriorityClass priority = qos::PriorityClass::Interactive;
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
  };

  /// Where decoded request frames go.  The handler must eventually
  /// invoke the callback exactly once (from any thread); the response
  /// is encoded there and shipped back on the frame's connection at the
  /// frame's wire version.
  using Handler =
      std::function<void(service::Request, service::Deadline,
                         const RequestContext&,
                         service::QueryEngine::ResponseCallback)>;

  /// The engine must outlive the server.  Network counters are recorded
  /// into engine.metrics().
  explicit Server(service::QueryEngine& engine, ServerOptions options = {});

  /// Generic front end (the cluster proxy tier): requests go to
  /// @p handler instead of an engine.  The caller owns draining — every
  /// callback must have fired before this Server is destroyed (the
  /// engine ctor gets that for free from QueryEngine::drain()).
  Server(Handler handler, service::MetricsRegistry& metrics,
         ServerOptions options = {});

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and launch the event-loop thread.  False + error() on
  /// failure (port in use, bad address).
  bool start();

  /// Graceful drain: stop accepting connections and reading requests,
  /// wait (up to drain_timeout) for in-flight requests to resolve and
  /// their responses to flush, then close everything and join the loop.
  /// Idempotent; called by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (after start()); useful with ServerOptions::port 0.
  std::uint16_t port() const { return port_; }
  const std::string& error() const { return error_; }
  const ServerOptions& options() const { return options_; }

  /// Live connection count, as seen by the loop (test/diagnostic aid).
  std::size_t connection_count() const {
    return connection_count_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    Socket socket;
    std::vector<std::uint8_t> read_buffer;
    /// Pending response bytes; write_offset marks how much of the front
    /// has already been sent (compacted once fully drained).
    std::vector<std::uint8_t> write_buffer;
    std::size_t write_offset = 0;
    /// Requests handed to the engine whose responses have not yet been
    /// appended to write_buffer.
    std::size_t in_flight = 0;
    /// Reading paused by the write watermark.
    bool paused = false;
    std::chrono::steady_clock::time_point last_activity{};
  };

  void loop();
  void accept_connections();
  // The bool-returning handlers report "connection still healthy"; only
  // their top-level callers (the loop, drain_completions) close and
  // erase connections, so no frame on the stack ever holds a reference
  // into an erased Connection.
  bool handle_readable(std::uint64_t conn_id, Connection& conn);
  bool handle_writable(Connection& conn);
  /// Split conn.read_buffer into frames and dispatch them.  Returns
  /// false when the stream is broken and the connection must close.
  bool consume_frames(std::uint64_t conn_id, Connection& conn);
  bool dispatch_request(std::uint64_t conn_id, Connection& conn,
                        const std::uint8_t* frame, std::size_t frame_size);
  /// Append encoded response bytes to a connection's write buffer,
  /// update the watermark, and opportunistically flush (loop thread
  /// only).
  bool queue_write(Connection& conn, std::vector<std::uint8_t> bytes);
  /// Thread-safe completion entry point used by engine callbacks.
  void enqueue_completion(std::uint64_t conn_id,
                          std::vector<std::uint8_t> bytes);
  void drain_completions();
  void close_connection(std::uint64_t conn_id);
  void sweep_idle(std::chrono::steady_clock::time_point now);
  void wake();

  Handler handler_;
  /// Set only by the engine ctor; stop() drains it so no callback can
  /// outlive this object.  Null in handler mode.
  service::QueryEngine* engine_ = nullptr;
  ServerOptions options_;
  service::MetricsRegistry& metrics_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::string error_;

  /// Traffic recorder (ServerOptions::capture_path); owned and touched
  /// by start()/stop() and the loop thread only.
  CaptureWriter capture_;

  /// Self-pipe: [0] is polled by the loop, [1] is written by callbacks
  /// (and stop()) to interrupt a blocking poll.
  int wake_fds_[2] = {-1, -1};

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Owned and touched by the loop thread only.
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::size_t> connection_count_{0};

  /// Requests accepted by this server whose responses have not yet been
  /// appended to a write buffer (or dropped with their connection).
  /// Tracked here rather than via the engine (which may be shared).
  std::atomic<std::size_t> in_flight_total_{0};

  std::mutex completions_mutex_;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
      completions_;
};

}  // namespace mpct::net
