#include "interconnect/omega.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace mpct::interconnect {

namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

OmegaNetwork::OmegaNetwork(int ports) : ports_(ports), stages_(0) {
  if (!is_power_of_two(ports) || ports < 2) {
    throw std::invalid_argument(
        "OmegaNetwork needs a power-of-two port count >= 2");
  }
  for (int p = 1; p < ports; p <<= 1) ++stages_;
  switches_.assign(static_cast<std::size_t>(stages_),
                   std::vector<SwitchState>(
                       static_cast<std::size_t>(ports / 2)));
  routes_.resize(static_cast<std::size_t>(ports));
}

std::string OmegaNetwork::name() const {
  return "omega " + std::to_string(ports_) + " ports, " +
         std::to_string(stages_) + " stages";
}

int OmegaNetwork::shuffle(int wire) const {
  // Left-rotate the k-bit wire index.
  const int msb = (wire >> (stages_ - 1)) & 1;
  return ((wire << 1) | msb) & (ports_ - 1);
}

OmegaNetwork::SwitchRef OmegaNetwork::switch_at(int /*stage*/,
                                                int wire) const {
  return SwitchRef{wire >> 1, wire & 1};
}

bool OmegaNetwork::reachable(PortId input, PortId output) const {
  if (!valid_ports(input, output)) return false;
  if (dead_.empty()) return true;
  // The destination-tag path is unique per (input, output): walk it and
  // demand every switch alive.
  int wire = input;
  for (int s = 0; s < stages_; ++s) {
    wire = shuffle(wire);
    const SwitchRef ref = switch_at(s, wire);
    if (!switch_alive(s, ref.index)) return false;
    wire = (ref.index << 1) | ((output >> (stages_ - 1 - s)) & 1);
  }
  return true;
}

bool OmegaNetwork::connect(PortId input, PortId output) {
  if (!valid_ports(input, output)) return false;

  // Temporarily release the route currently terminating at this output.
  Route previous = routes_[static_cast<std::size_t>(output)];
  if (previous.input >= 0) {
    for (int s = 0; s < stages_; ++s) {
      SwitchState& sw = switches_[static_cast<std::size_t>(s)]
                                 [static_cast<std::size_t>(
                                     previous.switches
                                         [static_cast<std::size_t>(s)])];
      if (--sw.users == 0) sw.setting = -1;
    }
    routes_[static_cast<std::size_t>(output)] = Route{};
  }

  // Walk the destination-tag path and collect switch requirements.
  trace::profile_count(trace::ProfilePoint::OmegaRoute);
  Route route;
  route.input = input;
  bool ok = true;
  int wire = input;
  for (int s = 0; s < stages_ && ok; ++s) {
    wire = shuffle(wire);
    const SwitchRef ref = switch_at(s, wire);
    if (!switch_alive(s, ref.index)) {
      ok = false;
      break;
    }
    const int desired_leg = (output >> (stages_ - 1 - s)) & 1;
    const int setting = ref.leg ^ desired_leg;  // 0 through, 1 cross
    const SwitchState& sw =
        switches_[static_cast<std::size_t>(s)]
                 [static_cast<std::size_t>(ref.index)];
    if (sw.setting != -1 && sw.setting != setting) {
      ok = false;
      break;
    }
    route.switches.push_back(ref.index);
    route.settings.push_back(setting);
    wire = (ref.index << 1) | desired_leg;
  }

  if (!ok) {
    // Restore the released route, if any.
    if (previous.input >= 0) {
      for (int s = 0; s < stages_; ++s) {
        SwitchState& sw =
            switches_[static_cast<std::size_t>(s)]
                     [static_cast<std::size_t>(
                         previous.switches[static_cast<std::size_t>(s)])];
        sw.setting = previous.settings[static_cast<std::size_t>(s)];
        ++sw.users;
      }
      routes_[static_cast<std::size_t>(output)] = std::move(previous);
    }
    return false;
  }

  for (int s = 0; s < stages_; ++s) {
    SwitchState& sw =
        switches_[static_cast<std::size_t>(s)]
                 [static_cast<std::size_t>(
                     route.switches[static_cast<std::size_t>(s)])];
    sw.setting = route.settings[static_cast<std::size_t>(s)];
    ++sw.users;
  }
  routes_[static_cast<std::size_t>(output)] = std::move(route);
  return true;
}

void OmegaNetwork::disconnect(PortId output) {
  if (output < 0 || output >= ports_) return;
  Route& route = routes_[static_cast<std::size_t>(output)];
  if (route.input < 0) return;
  for (int s = 0; s < stages_; ++s) {
    SwitchState& sw =
        switches_[static_cast<std::size_t>(s)]
                 [static_cast<std::size_t>(
                     route.switches[static_cast<std::size_t>(s)])];
    if (--sw.users == 0) sw.setting = -1;
  }
  route = Route{};
}

std::optional<PortId> OmegaNetwork::source_of(PortId output) const {
  if (output < 0 || output >= ports_) return std::nullopt;
  const Route& route = routes_[static_cast<std::size_t>(output)];
  if (route.input < 0) return std::nullopt;
  return route.input;
}

std::int64_t OmegaNetwork::config_bits() const {
  // One through/cross bit per 2x2 switch.
  return static_cast<std::int64_t>(stages_) * (ports_ / 2);
}

int OmegaNetwork::route_latency(PortId output) const {
  return source_of(output) ? stages_ : 0;
}

bool OmegaNetwork::fail_switch(int stage, int index) {
  if (stage < 0 || stage >= stages_ || index < 0 || index >= ports_ / 2) {
    return false;
  }
  if (dead_.empty()) {
    dead_.assign(static_cast<std::size_t>(stages_),
                 std::vector<bool>(static_cast<std::size_t>(ports_ / 2),
                                   false));
  }
  dead_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(index)] =
      true;
  // Tear down every route crossing the dead switch (each route records
  // exactly one switch per stage).
  for (int output = 0; output < ports_; ++output) {
    const Route& route = routes_[static_cast<std::size_t>(output)];
    if (route.input >= 0 &&
        route.switches[static_cast<std::size_t>(stage)] == index) {
      disconnect(output);
    }
  }
  return true;
}

bool OmegaNetwork::switch_alive(int stage, int index) const {
  if (stage < 0 || stage >= stages_ || index < 0 || index >= ports_ / 2) {
    return false;
  }
  return dead_.empty() ||
         !dead_[static_cast<std::size_t>(stage)]
               [static_cast<std::size_t>(index)];
}

std::int64_t OmegaNetwork::dead_switch_count() const {
  std::int64_t count = 0;
  for (const auto& stage : dead_) {
    for (const bool d : stage) count += d ? 1 : 0;
  }
  return count;
}

std::vector<bool> OmegaNetwork::reachable_outputs() const {
  // Forward OR-propagation: a wire is live when some input can still
  // drive it; a live 2x2 switch offers either live input leg to both of
  // its output legs, a dead one offers neither.
  std::vector<char> live(static_cast<std::size_t>(ports_), 1);
  std::vector<char> shuffled(static_cast<std::size_t>(ports_));
  for (int s = 0; s < stages_; ++s) {
    for (int wire = 0; wire < ports_; ++wire) {
      shuffled[static_cast<std::size_t>(shuffle(wire))] =
          live[static_cast<std::size_t>(wire)];
    }
    for (int sw = 0; sw < ports_ / 2; ++sw) {
      const char any = switch_alive(s, sw) &&
                               (shuffled[static_cast<std::size_t>(2 * sw)] ||
                                shuffled[static_cast<std::size_t>(2 * sw + 1)])
                           ? 1
                           : 0;
      live[static_cast<std::size_t>(2 * sw)] = any;
      live[static_cast<std::size_t>(2 * sw + 1)] = any;
    }
  }
  return std::vector<bool>(live.begin(), live.end());
}

double OmegaNetwork::output_reachability() const {
  if (dead_.empty()) return 1.0;
  const std::vector<bool> reach = reachable_outputs();
  std::int64_t alive = 0;
  for (const bool r : reach) alive += r ? 1 : 0;
  return static_cast<double>(alive) / static_cast<double>(ports_);
}

int OmegaNetwork::route_permutation(const std::vector<PortId>& perm) {
  reset();
  int routed = 0;
  for (std::size_t out = 0; out < perm.size() &&
                            out < static_cast<std::size_t>(ports_);
       ++out) {
    if (connect(perm[out], static_cast<PortId>(out))) ++routed;
  }
  return routed;
}

}  // namespace mpct::interconnect
