#pragma once

#include "interconnect/network.hpp"

namespace mpct::interconnect {

/// A set of shared buses (RaPiD-style segmented-bus fabric collapsed to
/// its essential constraint): each bus is driven by at most one input at
/// a time, and each output listens to at most one bus.  With fewer buses
/// than inputs the fabric *blocks*: the (k+1)-th distinct source cannot
/// be routed — the structural reason the paper calls RaPiD's buses "not
/// scalable".
///
/// Configuration state: per bus a driver select of ceil(log2(inputs+1))
/// bits, plus per output a bus select of ceil(log2(buses+1)) bits.
class BusNetwork final : public Network {
 public:
  BusNetwork(int inputs, int outputs, int bus_count);

  int input_count() const override { return inputs_; }
  int output_count() const override { return outputs_; }
  int bus_count() const { return static_cast<int>(bus_driver_.size()); }
  std::string name() const override;

  /// Routes over an existing bus when the input already drives one;
  /// otherwise claims a free bus.  Fails when every bus is driven by
  /// other inputs.
  bool connect(PortId input, PortId output) override;
  void disconnect(PortId output) override;
  std::optional<PortId> source_of(PortId output) const override;
  bool reachable(PortId input, PortId output) const override;
  std::int64_t config_bits() const override;
  int route_latency(PortId output) const override;

  /// Number of buses currently carrying a driver.
  int buses_in_use() const;

  /// Fault mask (src/fault), mirroring Crossbar::fail_input semantics:
  /// kill bus segment @p bus.  Routes riding it are torn down, connect()
  /// never claims it again, and config_bits() is unchanged (the select
  /// fields remain physically present).  With every segment dead the
  /// fabric routes nothing — reachable() goes false everywhere.  False
  /// when out of range.
  bool fail_segment(int bus);
  bool segment_alive(int bus) const;
  int live_bus_count() const;

 private:
  void release_unused_buses();

  int inputs_;
  int outputs_;
  std::vector<PortId> bus_driver_;   ///< per bus: driving input or -1
  std::vector<int> output_bus_;      ///< per output: bus listened to or -1
  std::vector<char> bus_dead_;       ///< per bus; empty while fault-free
};

}  // namespace mpct::interconnect
