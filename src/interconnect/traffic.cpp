#include "interconnect/traffic.hpp"

namespace mpct::interconnect {

namespace {

template <typename DstPicker>
std::vector<Packet> generate(const MeshNoc& mesh, const TrafficParams& params,
                             DstPicker&& pick_dst) {
  Rng rng(params.seed);
  std::vector<Packet> packets;
  for (int cycle = 0; cycle < params.cycles; ++cycle) {
    for (int node = 0; node < mesh.node_count(); ++node) {
      if (rng.next_double() >= params.rate) continue;
      const int dst = pick_dst(rng, node);
      if (dst == node) continue;
      packets.push_back(Packet{node, dst, cycle, -1});
    }
  }
  return packets;
}

}  // namespace

std::vector<Packet> uniform_traffic(const MeshNoc& mesh,
                                    const TrafficParams& params) {
  return generate(mesh, params, [&](Rng& rng, int node) {
    int dst = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(mesh.node_count())));
    if (dst == node) dst = (dst + 1) % mesh.node_count();
    return dst;
  });
}

std::vector<Packet> hotspot_traffic(const MeshNoc& mesh,
                                    const TrafficParams& params,
                                    int hot_node, double hot_fraction) {
  return generate(mesh, params, [&](Rng& rng, int node) {
    if (rng.next_double() < hot_fraction && node != hot_node) {
      return hot_node;
    }
    int dst = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(mesh.node_count())));
    if (dst == node) dst = (dst + 1) % mesh.node_count();
    return dst;
  });
}

std::vector<Packet> neighbor_traffic(const MeshNoc& mesh,
                                     const TrafficParams& params) {
  return generate(mesh, params, [&](Rng&, int node) {
    return (node + 1) % mesh.node_count();
  });
}

std::vector<Packet> transpose_traffic(const MeshNoc& mesh,
                                      const TrafficParams& params) {
  return generate(mesh, params, [&](Rng&, int node) {
    const int x = mesh.x_of(node);
    const int y = mesh.y_of(node);
    // Clip for non-square meshes: transpose within the largest square.
    const int side = std::min(mesh.width(), mesh.height());
    if (x >= side || y >= side) return node;
    return mesh.node_id(y, x);
  });
}

}  // namespace mpct::interconnect
