#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpct::interconnect {

/// One packet travelling the mesh.
struct Packet {
  int src = 0;               ///< source node id
  int dst = 0;               ///< destination node id
  std::int64_t inject_cycle = 0;
  // Filled by the simulation:
  std::int64_t arrive_cycle = -1;  ///< -1 until delivered

  bool delivered() const { return arrive_cycle >= 0; }
  std::int64_t latency() const {
    return delivered() ? arrive_cycle - inject_cycle : -1;
  }
};

/// Cycle-accurate 2-D mesh network-on-chip with dimension-ordered (XY)
/// routing — the packet-switched substrate of REDEFINE's compute fabric
/// (Section IV).  Unlike the circuit-switched Network models, a NoC
/// carries no per-route configuration state: routing is computed from
/// the packet header, which is why data-flow fabrics like REDEFINE pay
/// their flexibility in network area rather than configuration bits.
///
/// Model: one packet per directed link per cycle (configurable); packets
/// advance one hop per cycle along X first, then Y; link contention is
/// resolved oldest-injection-first (deterministic).
class MeshNoc {
 public:
  MeshNoc(int width, int height, int link_capacity = 1);

  int width() const { return width_; }
  int height() const { return height_; }
  int node_count() const { return width_ * height_; }
  std::string name() const;

  int node_id(int x, int y) const { return y * width_ + x; }
  int x_of(int node) const { return node % width_; }
  int y_of(int node) const { return node / width_; }

  /// Manhattan hop count between two nodes (the zero-load latency).
  int hops(int from, int to) const;

  /// Aggregate results of a simulation run.
  struct Stats {
    std::int64_t cycles = 0;       ///< cycles simulated
    std::int64_t delivered = 0;    ///< packets that reached their dst
    std::int64_t undelivered = 0;  ///< packets still in flight at cutoff
    double avg_latency = 0;        ///< mean inject->arrive latency
    std::int64_t max_latency = 0;
    double throughput = 0;  ///< delivered packets per node per cycle
  };

  /// Run until every packet is delivered or @p max_cycles elapse.
  /// Packets are annotated with their arrival cycles in place.
  Stats simulate(std::vector<Packet>& packets,
                 std::int64_t max_cycles = 1'000'000) const;

 private:
  int next_hop(int current, int dst) const;

  int width_;
  int height_;
  int link_capacity_;
};

}  // namespace mpct::interconnect
