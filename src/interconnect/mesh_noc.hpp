#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpct::interconnect {

/// One packet travelling the mesh.
struct Packet {
  int src = 0;               ///< source node id
  int dst = 0;               ///< destination node id
  std::int64_t inject_cycle = 0;
  // Filled by the simulation:
  std::int64_t arrive_cycle = -1;  ///< -1 until delivered

  bool delivered() const { return arrive_cycle >= 0; }
  std::int64_t latency() const {
    return delivered() ? arrive_cycle - inject_cycle : -1;
  }
};

/// Cycle-accurate 2-D mesh network-on-chip with dimension-ordered (XY)
/// routing — the packet-switched substrate of REDEFINE's compute fabric
/// (Section IV).  Unlike the circuit-switched Network models, a NoC
/// carries no per-route configuration state: routing is computed from
/// the packet header, which is why data-flow fabrics like REDEFINE pay
/// their flexibility in network area rather than configuration bits.
///
/// Model: one packet per directed link per cycle (configurable); packets
/// advance one hop per cycle along X first, then Y; link contention is
/// resolved oldest-injection-first (deterministic).
///
/// Fault model (src/fault): routers and undirected links can be marked
/// dead.  A faulted mesh routes around failures with per-destination
/// shortest paths (deterministic BFS, fixed neighbour order -x +x -y +y),
/// so packets still flow wherever the surviving topology permits; packets
/// whose endpoints are dead or disconnected are counted `unroutable`.
/// A fault-free mesh keeps the original pure-XY routing bit for bit.
class MeshNoc {
 public:
  MeshNoc(int width, int height, int link_capacity = 1);

  int width() const { return width_; }
  int height() const { return height_; }
  int node_count() const { return width_ * height_; }
  std::string name() const;

  int node_id(int x, int y) const { return y * width_ + x; }
  int x_of(int node) const { return node % width_; }
  int y_of(int node) const { return node / width_; }

  /// Manhattan hop count between two nodes (the zero-load latency).
  int hops(int from, int to) const;

  /// Kill the router at @p node (and every link touching it).
  void fail_node(int node);
  /// Kill the undirected link @p a - @p b; false if not mesh-adjacent.
  bool fail_link(int a, int b);
  bool node_alive(int node) const;
  /// Both routers alive and the connecting link not failed.
  bool link_alive(int a, int b) const;
  int alive_node_count() const;
  bool faulty() const { return faulty_; }

  /// A packet src -> dst can be routed on the surviving topology.
  bool routable(int src, int dst) const;
  /// Fraction of ordered alive-router pairs (src != dst) still connected;
  /// 1.0 on a fault-free mesh.
  double reachable_fraction() const;
  /// Alive links crossing the canonical mid-cut (across the wider
  /// dimension) — the surviving bisection bandwidth in links.
  int bisection_width() const;

  /// Aggregate results of a simulation run.
  struct Stats {
    std::int64_t cycles = 0;       ///< cycles simulated
    std::int64_t delivered = 0;    ///< packets that reached their dst
    std::int64_t undelivered = 0;  ///< packets still in flight at cutoff
    std::int64_t unroutable = 0;   ///< dropped: dead/disconnected endpoint
    double avg_latency = 0;        ///< mean inject->arrive latency
    std::int64_t max_latency = 0;
    double throughput = 0;  ///< delivered packets per node per cycle
  };

  /// Run until every packet is delivered or @p max_cycles elapse.
  /// Packets are annotated with their arrival cycles in place.
  Stats simulate(std::vector<Packet>& packets,
                 std::int64_t max_cycles = 1'000'000) const;

 private:
  int next_hop(int current, int dst) const;
  /// +x link of @p node is link 2*node, +y link is 2*node + 1.
  int link_slot(int a, int b) const;
  void rebuild_routes();

  int width_;
  int height_;
  int link_capacity_;
  bool faulty_ = false;
  std::vector<char> node_dead_;  ///< sized node_count() once faulty
  std::vector<char> link_dead_;  ///< 2 slots per node, see link_slot
  /// Per-(node, dst) next hop on the surviving topology; -1 =
  /// unreachable.  Rebuilt after every fail_* call; empty while
  /// fault-free (pure XY routing needs no table).
  std::vector<int> route_;
};

}  // namespace mpct::interconnect
