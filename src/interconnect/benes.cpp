#include "interconnect/benes.hpp"

#include <numeric>
#include <stdexcept>



namespace mpct::interconnect {

namespace {

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

BenesNetwork::BenesNetwork(int ports) : ports_(ports), stages_(0) {
  if (!is_power_of_two(ports) || ports < 2) {
    throw std::invalid_argument(
        "BenesNetwork needs a power-of-two port count >= 2");
  }
  int log2 = 0;
  for (int p = 1; p < ports; p <<= 1) ++log2;
  stages_ = 2 * log2 - 1;
  settings_.assign(static_cast<std::size_t>(stages_),
                   std::vector<bool>(static_cast<std::size_t>(ports / 2),
                                     false));
}

std::string BenesNetwork::name() const {
  return "benes " + std::to_string(ports_) + " ports, " +
         std::to_string(stages_) + " stages";
}

std::int64_t BenesNetwork::config_bits() const {
  return static_cast<std::int64_t>(stages_) * (ports_ / 2);
}

void BenesNetwork::route_permutation(const std::vector<int>& perm) {
  if (static_cast<int>(perm.size()) != ports_) {
    throw std::invalid_argument("benes: permutation size mismatch");
  }
  std::vector<bool> seen(static_cast<std::size_t>(ports_), false);
  for (int in : perm) {
    if (in < 0 || in >= ports_ || seen[static_cast<std::size_t>(in)]) {
      throw std::invalid_argument("benes: not a permutation");
    }
    seen[static_cast<std::size_t>(in)] = true;
  }
  for (auto& stage : settings_) {
    stage.assign(stage.size(), false);
  }
  route_recursive(0, stages_ - 1, 0, ports_, perm);
}

void BenesNetwork::route_recursive(int first_stage, int last_stage,
                                   int offset, int size,
                                   const std::vector<int>& perm) {
  if (size == 2) {
    settings_[static_cast<std::size_t>(first_stage)]
             [static_cast<std::size_t>(offset / 2)] = perm[0] != 0;
    return;
  }
  const int half = size / 2;

  // Looping algorithm: assign every output (and thus its input) to the
  // upper (0) or lower (1) half such that switch-sharing pairs split.
  std::vector<int> out_side(static_cast<std::size_t>(size), -1);
  std::vector<int> in_side(static_cast<std::size_t>(size), -1);
  std::vector<int> out_of_input(static_cast<std::size_t>(size), 0);
  for (int o = 0; o < size; ++o) {
    out_of_input[static_cast<std::size_t>(perm[static_cast<std::size_t>(
        o)])] = o;
  }
  for (int start = 0; start < size; ++start) {
    if (out_side[static_cast<std::size_t>(start)] != -1) continue;
    int o = start;
    int side = 0;
    while (out_side[static_cast<std::size_t>(o)] == -1) {
      out_side[static_cast<std::size_t>(o)] = side;
      const int in = perm[static_cast<std::size_t>(o)];
      in_side[static_cast<std::size_t>(in)] = side;
      // The input sharing in's switch must take the other half...
      const int partner_in = in ^ 1;
      const int o2 = out_of_input[static_cast<std::size_t>(partner_in)];
      if (out_side[static_cast<std::size_t>(o2)] != -1) break;
      out_side[static_cast<std::size_t>(o2)] = 1 - side;
      in_side[static_cast<std::size_t>(partner_in)] = 1 - side;
      // ...and the output sharing o2's switch must take side again.
      o = o2 ^ 1;
      // side stays the same for the next link of the chain.
    }
  }

  // Input-stage switches: input 2i exits towards the upper half on
  // 'through'; cross when its assigned side is the lower half.
  for (int i = 0; i < half; ++i) {
    settings_[static_cast<std::size_t>(first_stage)]
             [static_cast<std::size_t>(offset / 2 + i)] =
                 in_side[static_cast<std::size_t>(2 * i)] == 1;
  }
  // Output-stage switches: output 2j receives from the upper half on
  // 'through'; cross when it was assigned the lower half.
  for (int j = 0; j < half; ++j) {
    settings_[static_cast<std::size_t>(last_stage)]
             [static_cast<std::size_t>(offset / 2 + j)] =
                 out_side[static_cast<std::size_t>(2 * j)] == 1;
  }

  // Sub-permutations: upper-sub output j carries whichever member of
  // output pair j was assigned upper; its input entered the upper sub
  // at position (input / 2).  Likewise for the lower sub.
  std::vector<int> upper(static_cast<std::size_t>(half));
  std::vector<int> lower(static_cast<std::size_t>(half));
  for (int j = 0; j < half; ++j) {
    const int o_up =
        out_side[static_cast<std::size_t>(2 * j)] == 0 ? 2 * j : 2 * j + 1;
    const int o_lo = o_up ^ 1;
    upper[static_cast<std::size_t>(j)] =
        perm[static_cast<std::size_t>(o_up)] / 2;
    lower[static_cast<std::size_t>(j)] =
        perm[static_cast<std::size_t>(o_lo)] / 2;
  }
  route_recursive(first_stage + 1, last_stage - 1, offset, half, upper);
  route_recursive(first_stage + 1, last_stage - 1, offset + half, half,
                  lower);
}

namespace {

/// Shared stage walker used by propagate, source_of and the fault
/// reachability analysis: runs the recursive wiring with an arbitrary
/// value type; @p op(stage, switch_index, a, b) applies one 2x2 switch.
template <typename T, typename SwitchOp>
void walk_block(int first_stage, int last_stage, int offset, int size,
                std::vector<T>& values, SwitchOp&& op) {
  if (size == 2) {
    op(first_stage, offset / 2, values[static_cast<std::size_t>(offset)],
       values[static_cast<std::size_t>(offset + 1)]);
    return;
  }
  const int half = size / 2;
  std::vector<T> tmp(static_cast<std::size_t>(size));
  for (int j = 0; j < half; ++j) {
    T a = values[static_cast<std::size_t>(offset + 2 * j)];
    T b = values[static_cast<std::size_t>(offset + 2 * j + 1)];
    op(first_stage, offset / 2 + j, a, b);
    tmp[static_cast<std::size_t>(j)] = a;
    tmp[static_cast<std::size_t>(half + j)] = b;
  }
  for (int j = 0; j < size; ++j) {
    values[static_cast<std::size_t>(offset + j)] =
        tmp[static_cast<std::size_t>(j)];
  }
  walk_block(first_stage + 1, last_stage - 1, offset, half, values, op);
  walk_block(first_stage + 1, last_stage - 1, offset + half, half, values,
             op);
  for (int j = 0; j < half; ++j) {
    T a = values[static_cast<std::size_t>(offset + j)];
    T b = values[static_cast<std::size_t>(offset + half + j)];
    op(last_stage, offset / 2 + j, a, b);
    tmp[static_cast<std::size_t>(2 * j)] = a;
    tmp[static_cast<std::size_t>(2 * j + 1)] = b;
  }
  for (int j = 0; j < size; ++j) {
    values[static_cast<std::size_t>(offset + j)] =
        tmp[static_cast<std::size_t>(j)];
  }
}

}  // namespace

std::vector<std::uint64_t> BenesNetwork::propagate(
    const std::vector<std::uint64_t>& inputs) const {
  if (static_cast<int>(inputs.size()) != ports_) {
    throw std::invalid_argument("benes: input size mismatch");
  }
  std::vector<std::uint64_t> values = inputs;
  walk_block(0, stages_ - 1, 0, ports_, values,
             [this](int stage, int sw, std::uint64_t& a, std::uint64_t& b) {
               if (!switch_alive(stage, sw)) {
                 a = b = 0;
                 return;
               }
               if (settings_[static_cast<std::size_t>(stage)]
                            [static_cast<std::size_t>(sw)]) {
                 std::swap(a, b);
               }
             });
  return values;
}

int BenesNetwork::source_of(int output) const {
  if (output < 0 || output >= ports_) {
    throw std::invalid_argument("benes: output out of range");
  }
  std::vector<int> values(static_cast<std::size_t>(ports_));
  std::iota(values.begin(), values.end(), 0);
  walk_block(0, stages_ - 1, 0, ports_, values,
             [this](int stage, int sw, int& a, int& b) {
               if (!switch_alive(stage, sw)) {
                 a = b = -1;
                 return;
               }
               if (settings_[static_cast<std::size_t>(stage)]
                            [static_cast<std::size_t>(sw)]) {
                 std::swap(a, b);
               }
             });
  return values[static_cast<std::size_t>(output)];
}

bool BenesNetwork::fail_switch(int stage, int index) {
  if (stage < 0 || stage >= stages_ || index < 0 || index >= ports_ / 2) {
    return false;
  }
  if (dead_.empty()) {
    dead_.assign(static_cast<std::size_t>(stages_),
                 std::vector<bool>(static_cast<std::size_t>(ports_ / 2),
                                   false));
  }
  dead_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(index)] =
      true;
  return true;
}

bool BenesNetwork::switch_alive(int stage, int index) const {
  if (stage < 0 || stage >= stages_ || index < 0 || index >= ports_ / 2) {
    return false;
  }
  return dead_.empty() ||
         !dead_[static_cast<std::size_t>(stage)]
               [static_cast<std::size_t>(index)];
}

std::int64_t BenesNetwork::dead_switch_count() const {
  std::int64_t count = 0;
  for (const auto& stage : dead_) {
    for (const bool d : stage) count += d ? 1 : 0;
  }
  return count;
}

std::vector<bool> BenesNetwork::reachable_outputs() const {
  std::vector<char> reach(static_cast<std::size_t>(ports_), 1);
  walk_block(0, stages_ - 1, 0, ports_, reach,
             [this](int stage, int sw, char& a, char& b) {
               if (!switch_alive(stage, sw)) {
                 a = b = 0;
                 return;
               }
               const char any = a || b ? 1 : 0;
               a = b = any;
             });
  return std::vector<bool>(reach.begin(), reach.end());
}

double BenesNetwork::output_reachability() const {
  if (dead_.empty()) return 1.0;
  const std::vector<bool> reach = reachable_outputs();
  std::int64_t alive = 0;
  for (const bool r : reach) alive += r ? 1 : 0;
  return static_cast<double>(alive) / static_cast<double>(ports_);
}

}  // namespace mpct::interconnect
