#include "interconnect/network.hpp"

namespace mpct::interconnect {

std::vector<std::uint64_t> Network::propagate(
    const std::vector<std::uint64_t>& inputs) const {
  std::vector<std::uint64_t> outputs(
      static_cast<std::size_t>(output_count()), 0);
  for (PortId out = 0; out < output_count(); ++out) {
    const std::optional<PortId> src = source_of(out);
    if (src && *src >= 0 && static_cast<std::size_t>(*src) < inputs.size()) {
      outputs[static_cast<std::size_t>(out)] =
          inputs[static_cast<std::size_t>(*src)];
    }
  }
  return outputs;
}

void Network::reset() {
  for (PortId out = 0; out < output_count(); ++out) {
    disconnect(out);
  }
}

}  // namespace mpct::interconnect
