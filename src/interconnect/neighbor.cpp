#include "interconnect/neighbor.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "cost/switch_cost.hpp"

namespace mpct::interconnect {

NeighborNetwork::NeighborNetwork(int elements, int hops, bool wrap)
    : elements_(elements),
      hops_(hops),
      wrap_(wrap),
      source_(static_cast<std::size_t>(elements), -1) {
  if (elements < 1) {
    throw std::invalid_argument("NeighborNetwork needs >= 1 element");
  }
  if (hops < 0) {
    throw std::invalid_argument("NeighborNetwork needs hops >= 0");
  }
}

std::string NeighborNetwork::name() const {
  return "neighbor window +-" + std::to_string(hops_) + " over " +
         std::to_string(elements_) + (wrap_ ? " (torus)" : " (line)");
}

int NeighborNetwork::distance(PortId a, PortId b) const {
  const int direct = std::abs(a - b);
  if (!wrap_) return direct;
  return std::min(direct, elements_ - direct);
}

bool NeighborNetwork::reachable(PortId input, PortId output) const {
  if (!valid_ports(input, output)) return false;
  return distance(input, output) <= hops_;
}

bool NeighborNetwork::connect(PortId input, PortId output) {
  if (!reachable(input, output)) return false;
  source_[static_cast<std::size_t>(output)] = input;
  return true;
}

void NeighborNetwork::disconnect(PortId output) {
  if (output < 0 || output >= elements_) return;
  source_[static_cast<std::size_t>(output)] = -1;
}

std::optional<PortId> NeighborNetwork::source_of(PortId output) const {
  if (output < 0 || output >= elements_) return std::nullopt;
  const PortId src = source_[static_cast<std::size_t>(output)];
  if (src < 0) return std::nullopt;
  return src;
}

std::int64_t NeighborNetwork::config_bits() const {
  // Window candidates, clipped by the array size, plus "disconnected".
  const int window = std::min(elements_, 2 * hops_ + 1);
  return static_cast<std::int64_t>(elements_) *
         cost::ceil_log2(window + 1);
}

int NeighborNetwork::route_latency(PortId output) const {
  const std::optional<PortId> src = source_of(output);
  if (!src) return 0;
  return std::max(1, distance(*src, output));
}

}  // namespace mpct::interconnect
