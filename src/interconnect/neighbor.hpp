#pragma once

#include "interconnect/network.hpp"

namespace mpct::interconnect {

/// Windowed nearest-neighbour network over a linear array of elements
/// (the DRRA "sliding window" connectivity: every element reaches
/// elements within +-hops positions; MorphoSys/REMARC row-column
/// neighbourhoods reduce to the same constraint along each axis).
///
/// Port i of either side belongs to element i; output o may only be
/// driven by inputs whose element index lies within the window
/// |i - o| <= hops (optionally wrapping around, torus style).
///
/// Configuration state: one select field per output over the window
/// (2*hops + 1 candidates + disconnected) — O(n log hops) instead of the
/// crossbar's O(n log n): the area/configuration saving that motivates
/// windowed fabrics.
class NeighborNetwork final : public Network {
 public:
  NeighborNetwork(int elements, int hops, bool wrap = false);

  int input_count() const override { return elements_; }
  int output_count() const override { return elements_; }
  int hops() const { return hops_; }
  bool wraps() const { return wrap_; }
  std::string name() const override;

  bool connect(PortId input, PortId output) override;
  void disconnect(PortId output) override;
  std::optional<PortId> source_of(PortId output) const override;
  bool reachable(PortId input, PortId output) const override;
  std::int64_t config_bits() const override;
  int route_latency(PortId output) const override;

  /// Distance between two elements under this topology (hop count,
  /// respecting wrap).
  int distance(PortId a, PortId b) const;

 private:
  int elements_;
  int hops_;
  bool wrap_;
  std::vector<PortId> source_;
};

}  // namespace mpct::interconnect
