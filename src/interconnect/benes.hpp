#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpct::interconnect {

/// Beneš rearrangeable network: two back-to-back butterfly halves,
/// 2*log2(N) - 1 stages of N/2 two-by-two switches.  Unlike the Omega
/// network it can realise *every* permutation (computed globally with
/// the classic looping algorithm), at roughly twice the switch cost —
/// the missing point on the taxonomy's flexibility/overhead curve
/// between Omega and the full crossbar:
///
///   window  <  bus  <  omega  <  benes  <  crossbar
///   (reach)    (concurrency) (blocking) (rearrangeable) (strict-sense)
class BenesNetwork {
 public:
  /// @param ports power of two >= 2.
  explicit BenesNetwork(int ports);

  int port_count() const { return ports_; }
  int stage_count() const { return stages_; }
  std::string name() const;

  /// Program the network to realise @p perm (output i driven by input
  /// perm[i]); @p perm must be a permutation of 0..N-1.  Always
  /// succeeds (rearrangeability); throws SimError on a malformed
  /// permutation.
  void route_permutation(const std::vector<int>& perm);

  /// The input currently feeding @p output under the programmed
  /// configuration (identity before any routing); -1 when the route
  /// passes through a failed switch.
  int source_of(int output) const;

  /// Push values through the configured switch stages (validates the
  /// routing really is a physical switch setting, not bookkeeping).
  /// Signals entering a failed switch are dropped: both its outputs
  /// read 0.
  std::vector<std::uint64_t> propagate(
      const std::vector<std::uint64_t>& inputs) const;

  /// Fault mask (src/fault): kill 2x2 switch @p index of @p stage.
  /// False when out of range.
  bool fail_switch(int stage, int index);
  bool switch_alive(int stage, int index) const;
  std::int64_t dead_switch_count() const;

  /// Config-independent reachability under the fault mask: output o is
  /// reachable iff *some* configuration of the surviving switches can
  /// drive it from some input (forward OR-propagation — a live 2x2
  /// switch offers either input to either output; a dead one offers
  /// neither).
  std::vector<bool> reachable_outputs() const;
  /// Fraction of outputs still reachable; 1.0 while fault-free.
  double output_reachability() const;

  /// Configuration state: one through/cross bit per 2x2 switch:
  /// (2*log2(N) - 1) * N/2.
  std::int64_t config_bits() const;

  /// Latency of any route: the stage count.
  int latency() const { return stages_; }

 private:
  int ports_;
  int stages_;
  /// settings_[stage][switch]: false = through, true = cross.
  std::vector<std::vector<bool>> settings_;
  /// dead_[stage][switch]; empty while fault-free.
  std::vector<std::vector<bool>> dead_;

  /// Recursively set switches for the sub-network spanning
  /// [first_stage, last_stage] over the port subset described by
  /// (offset, size) using the looping algorithm.
  void route_recursive(int first_stage, int last_stage, int offset,
                       int size, const std::vector<int>& perm);
};

}  // namespace mpct::interconnect
