#include "interconnect/crossbar.hpp"

#include <algorithm>
#include <stdexcept>

#include "cost/switch_cost.hpp"

namespace mpct::interconnect {

Crossbar::Crossbar(int inputs, int outputs)
    : inputs_(inputs),
      outputs_(outputs),
      select_(static_cast<std::size_t>(outputs), -1) {
  if (inputs < 1 || outputs < 1) {
    throw std::invalid_argument("Crossbar needs at least 1x1 ports");
  }
}

std::string Crossbar::name() const {
  return "crossbar " + std::to_string(inputs_) + "x" +
         std::to_string(outputs_);
}

bool Crossbar::connect(PortId input, PortId output) {
  if (!valid_ports(input, output)) return false;
  if (!input_alive(input) || !output_alive(output)) return false;
  select_[static_cast<std::size_t>(output)] = input;
  return true;
}

void Crossbar::disconnect(PortId output) {
  if (output < 0 || output >= outputs_) return;
  select_[static_cast<std::size_t>(output)] = -1;
}

std::optional<PortId> Crossbar::source_of(PortId output) const {
  if (output < 0 || output >= outputs_) return std::nullopt;
  const PortId src = select_[static_cast<std::size_t>(output)];
  if (src < 0) return std::nullopt;
  return src;
}

bool Crossbar::reachable(PortId input, PortId output) const {
  return valid_ports(input, output) && input_alive(input) &&
         output_alive(output);
}

void Crossbar::fail_input(PortId input) {
  if (input < 0 || input >= inputs_) return;
  if (input_dead_.empty()) {
    input_dead_.assign(static_cast<std::size_t>(inputs_), 0);
  }
  input_dead_[static_cast<std::size_t>(input)] = 1;
  for (PortId out = 0; out < outputs_; ++out) {
    if (select_[static_cast<std::size_t>(out)] == input) {
      select_[static_cast<std::size_t>(out)] = -1;
    }
  }
}

void Crossbar::fail_output(PortId output) {
  if (output < 0 || output >= outputs_) return;
  if (output_dead_.empty()) {
    output_dead_.assign(static_cast<std::size_t>(outputs_), 0);
  }
  output_dead_[static_cast<std::size_t>(output)] = 1;
  select_[static_cast<std::size_t>(output)] = -1;
}

bool Crossbar::input_alive(PortId input) const {
  if (input < 0 || input >= inputs_) return false;
  return input_dead_.empty() ||
         !input_dead_[static_cast<std::size_t>(input)];
}

bool Crossbar::output_alive(PortId output) const {
  if (output < 0 || output >= outputs_) return false;
  return output_dead_.empty() ||
         !output_dead_[static_cast<std::size_t>(output)];
}

int Crossbar::live_input_count() const {
  if (input_dead_.empty()) return inputs_;
  return inputs_ - static_cast<int>(std::count(
                       input_dead_.begin(), input_dead_.end(), char{1}));
}

int Crossbar::live_output_count() const {
  if (output_dead_.empty()) return outputs_;
  return outputs_ - static_cast<int>(std::count(
                        output_dead_.begin(), output_dead_.end(), char{1}));
}

int Crossbar::select_bits() const { return cost::ceil_log2(inputs_ + 1); }

std::int64_t Crossbar::config_bits() const {
  return static_cast<std::int64_t>(outputs_) * select_bits();
}

int Crossbar::route_latency(PortId output) const {
  return source_of(output) ? 1 : 0;
}

std::vector<bool> Crossbar::bitstream() const {
  const int width = select_bits();
  std::vector<bool> bits;
  bits.reserve(static_cast<std::size_t>(config_bits()));
  for (PortId out = 0; out < outputs_; ++out) {
    // Encode "disconnected" as 0 and input i as i+1, LSB first.
    const PortId src = select_[static_cast<std::size_t>(out)];
    const unsigned code = src < 0 ? 0u : static_cast<unsigned>(src) + 1u;
    for (int b = 0; b < width; ++b) {
      bits.push_back((code >> b) & 1u);
    }
  }
  return bits;
}

bool Crossbar::load_bitstream(const std::vector<bool>& bits) {
  const int width = select_bits();
  if (bits.size() != static_cast<std::size_t>(config_bits())) return false;
  std::vector<PortId> decoded(static_cast<std::size_t>(outputs_), -1);
  for (PortId out = 0; out < outputs_; ++out) {
    unsigned code = 0;
    for (int b = 0; b < width; ++b) {
      if (bits[static_cast<std::size_t>(out * width + b)]) {
        code |= 1u << b;
      }
    }
    if (code > static_cast<unsigned>(inputs_)) return false;
    PortId src = code == 0 ? -1 : static_cast<PortId>(code - 1);
    if (src >= 0 && (!input_alive(src) || !output_alive(out))) src = -1;
    decoded[static_cast<std::size_t>(out)] = src;
  }
  select_ = std::move(decoded);
  return true;
}

}  // namespace mpct::interconnect
