#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mpct::interconnect {

/// Index of a port on a network; inputs and outputs are numbered
/// independently from 0.
using PortId = int;

/// Abstract circuit-switched interconnection network between a set of
/// producer (input) ports and consumer (output) ports.
///
/// This is the executable counterpart of a taxonomy switch column: a
/// SwitchKind::Crossbar cell corresponds to a Crossbar instance, a
/// Direct cell to fixed wiring, and richer real-world fabrics (buses,
/// neighbourhoods, hierarchies) refine the crossbar abstraction with
/// reachability limits.  The measured `config_bits()` of each model is
/// what Eq. 2's CW_X-Y terms predict.
class Network {
 public:
  virtual ~Network() = default;

  virtual int input_count() const = 0;
  virtual int output_count() const = 0;
  virtual std::string name() const = 0;

  /// Attempt to program a route so that @p output is driven by @p input.
  /// Returns false when the topology forbids it (unreachable) or a
  /// structural conflict exists (e.g. bus already driven by another
  /// input).  Reprogramming an output that was already connected is
  /// allowed and replaces the old route.
  virtual bool connect(PortId input, PortId output) = 0;

  /// Tear down whatever drives @p output (no-op if disconnected).
  virtual void disconnect(PortId output) = 0;

  /// The input currently driving @p output, if any.
  virtual std::optional<PortId> source_of(PortId output) const = 0;

  /// Whether a route input->output could ever be programmed on an
  /// otherwise empty network.
  virtual bool reachable(PortId input, PortId output) const = 0;

  /// Size of the configuration state in bits — the measured CW of this
  /// switch instance.
  virtual std::int64_t config_bits() const = 0;

  /// Circuit latency of an established route in cycles (1 for a plain
  /// crossbar, more for multi-hop fabrics); 0 if the route is not
  /// currently programmed.
  virtual int route_latency(PortId output) const = 0;

  /// Drive the network: values presented at the inputs propagate to the
  /// outputs according to the current configuration; disconnected
  /// outputs read 0.
  std::vector<std::uint64_t> propagate(
      const std::vector<std::uint64_t>& inputs) const;

  /// Convenience: tear down every route.
  void reset();

 protected:
  /// Bounds check helper shared by implementations.
  bool valid_ports(PortId input, PortId output) const {
    return input >= 0 && input < input_count() && output >= 0 &&
           output < output_count();
  }
};

}  // namespace mpct::interconnect
