#include "interconnect/bus.hpp"

#include <algorithm>
#include <stdexcept>

#include "cost/switch_cost.hpp"

namespace mpct::interconnect {

BusNetwork::BusNetwork(int inputs, int outputs, int bus_count)
    : inputs_(inputs),
      outputs_(outputs),
      bus_driver_(static_cast<std::size_t>(bus_count), -1),
      output_bus_(static_cast<std::size_t>(outputs), -1) {
  if (inputs < 1 || outputs < 1 || bus_count < 1) {
    throw std::invalid_argument("BusNetwork needs >=1 input/output/bus");
  }
}

std::string BusNetwork::name() const {
  return "bus " + std::to_string(inputs_) + "x" + std::to_string(outputs_) +
         " over " + std::to_string(bus_count()) + " buses";
}

bool BusNetwork::connect(PortId input, PortId output) {
  if (!valid_ports(input, output)) return false;
  // Reuse the bus this input already drives, if any.
  int bus = -1;
  for (std::size_t b = 0; b < bus_driver_.size(); ++b) {
    if (bus_driver_[b] == input) {
      bus = static_cast<int>(b);
      break;
    }
  }
  if (bus < 0) {
    for (std::size_t b = 0; b < bus_driver_.size(); ++b) {
      if (bus_driver_[b] < 0 && segment_alive(static_cast<int>(b))) {
        bus = static_cast<int>(b);
        break;
      }
    }
  }
  if (bus < 0) return false;  // all buses busy with other drivers

  const int previous = output_bus_[static_cast<std::size_t>(output)];
  bus_driver_[static_cast<std::size_t>(bus)] = input;
  output_bus_[static_cast<std::size_t>(output)] = bus;
  if (previous >= 0 && previous != bus) release_unused_buses();
  return true;
}

void BusNetwork::disconnect(PortId output) {
  if (output < 0 || output >= outputs_) return;
  output_bus_[static_cast<std::size_t>(output)] = -1;
  release_unused_buses();
}

void BusNetwork::release_unused_buses() {
  for (std::size_t b = 0; b < bus_driver_.size(); ++b) {
    if (bus_driver_[b] < 0) continue;
    const bool listened = std::any_of(
        output_bus_.begin(), output_bus_.end(),
        [&](int bus) { return bus == static_cast<int>(b); });
    if (!listened) bus_driver_[b] = -1;
  }
}

std::optional<PortId> BusNetwork::source_of(PortId output) const {
  if (output < 0 || output >= outputs_) return std::nullopt;
  const int bus = output_bus_[static_cast<std::size_t>(output)];
  if (bus < 0) return std::nullopt;
  const PortId driver = bus_driver_[static_cast<std::size_t>(bus)];
  if (driver < 0) return std::nullopt;
  return driver;
}

bool BusNetwork::reachable(PortId input, PortId output) const {
  return valid_ports(input, output) && live_bus_count() > 0;
}

bool BusNetwork::fail_segment(int bus) {
  if (bus < 0 || bus >= bus_count()) return false;
  if (bus_dead_.empty()) bus_dead_.assign(bus_driver_.size(), 0);
  bus_dead_[static_cast<std::size_t>(bus)] = 1;
  // Tear down everything riding the dead segment.
  bus_driver_[static_cast<std::size_t>(bus)] = -1;
  for (int& listened : output_bus_) {
    if (listened == bus) listened = -1;
  }
  return true;
}

bool BusNetwork::segment_alive(int bus) const {
  if (bus < 0 || bus >= bus_count()) return false;
  return bus_dead_.empty() || !bus_dead_[static_cast<std::size_t>(bus)];
}

int BusNetwork::live_bus_count() const {
  if (bus_dead_.empty()) return bus_count();
  return bus_count() -
         static_cast<int>(
             std::count(bus_dead_.begin(), bus_dead_.end(), char{1}));
}

std::int64_t BusNetwork::config_bits() const {
  const int driver_bits = cost::ceil_log2(inputs_ + 1);
  const int listen_bits = cost::ceil_log2(bus_count() + 1);
  return static_cast<std::int64_t>(bus_count()) * driver_bits +
         static_cast<std::int64_t>(outputs_) * listen_bits;
}

int BusNetwork::route_latency(PortId output) const {
  return source_of(output) ? 1 : 0;
}

int BusNetwork::buses_in_use() const {
  return static_cast<int>(
      std::count_if(bus_driver_.begin(), bus_driver_.end(),
                    [](PortId driver) { return driver >= 0; }));
}

}  // namespace mpct::interconnect
