#include "interconnect/hierarchical.hpp"

#include <stdexcept>

#include "cost/switch_cost.hpp"

namespace mpct::interconnect {

HierarchicalNetwork::HierarchicalNetwork(int elements, int cluster_size,
                                         int global_links)
    : elements_(elements),
      cluster_size_(cluster_size),
      cluster_count_(cluster_size > 0
                         ? (elements + cluster_size - 1) / cluster_size
                         : 0),
      global_links_(global_links),
      routes_(static_cast<std::size_t>(elements)) {
  if (elements < 1 || cluster_size < 1 || global_links < 0) {
    throw std::invalid_argument("HierarchicalNetwork: bad shape");
  }
}

std::string HierarchicalNetwork::name() const {
  return "hierarchical " + std::to_string(elements_) + " elements, clusters "
         "of " + std::to_string(cluster_size_) + ", " +
         std::to_string(global_links_) + " global links/cluster";
}

int HierarchicalNetwork::global_links_in_use(int cluster) const {
  int used = 0;
  for (PortId out = 0; out < elements_; ++out) {
    const Route& route = routes_[static_cast<std::size_t>(out)];
    if (route.input < 0 || !route.global) continue;
    // A global route consumes one up-link in the source cluster and one
    // down-link in the destination cluster.
    if (cluster_of(route.input) == cluster || cluster_of(out) == cluster) {
      ++used;
    }
  }
  return used;
}

bool HierarchicalNetwork::reachable(PortId input, PortId output) const {
  return valid_ports(input, output);
}

bool HierarchicalNetwork::connect(PortId input, PortId output) {
  if (!valid_ports(input, output)) return false;
  const bool global = cluster_of(input) != cluster_of(output);
  if (global) {
    // Account for the link this connect would add; the route being
    // replaced (if any) is torn down first.
    Route& slot = routes_[static_cast<std::size_t>(output)];
    const Route saved = slot;
    slot = Route{};  // temporarily free the output
    const bool fits =
        global_links_in_use(cluster_of(input)) < global_links_ &&
        global_links_in_use(cluster_of(output)) < global_links_;
    if (!fits) {
      slot = saved;
      return false;
    }
  }
  routes_[static_cast<std::size_t>(output)] = Route{input, global};
  return true;
}

void HierarchicalNetwork::disconnect(PortId output) {
  if (output < 0 || output >= elements_) return;
  routes_[static_cast<std::size_t>(output)] = Route{};
}

std::optional<PortId> HierarchicalNetwork::source_of(PortId output) const {
  if (output < 0 || output >= elements_) return std::nullopt;
  const Route& route = routes_[static_cast<std::size_t>(output)];
  if (route.input < 0) return std::nullopt;
  return route.input;
}

std::int64_t HierarchicalNetwork::config_bits() const {
  // Each cluster's local crossbar: (cluster elements + global down-links)
  // sources feeding (cluster elements + global up-links) sinks; plus the
  // global crossbar over cluster up-links -> down-links.
  const int local_ins = cluster_size_ + global_links_;
  const int local_outs = cluster_size_ + global_links_;
  const std::int64_t local = static_cast<std::int64_t>(local_outs) *
                             cost::ceil_log2(local_ins + 1);
  const int global_ports = cluster_count_ * global_links_;
  const std::int64_t global =
      global_ports > 0 ? static_cast<std::int64_t>(global_ports) *
                             cost::ceil_log2(global_ports + 1)
                       : 0;
  return local * cluster_count_ + global;
}

int HierarchicalNetwork::route_latency(PortId output) const {
  if (output < 0 || output >= elements_) return 0;
  const Route& route = routes_[static_cast<std::size_t>(output)];
  if (route.input < 0) return 0;
  return route.global ? 3 : 1;
}

}  // namespace mpct::interconnect
