#include "interconnect/hierarchical.hpp"

#include <stdexcept>

#include "cost/switch_cost.hpp"

namespace mpct::interconnect {

HierarchicalNetwork::HierarchicalNetwork(int elements, int cluster_size,
                                         int global_links)
    : elements_(elements),
      cluster_size_(cluster_size),
      cluster_count_(cluster_size > 0
                         ? (elements + cluster_size - 1) / cluster_size
                         : 0),
      global_links_(global_links),
      routes_(static_cast<std::size_t>(elements)) {
  if (elements < 1 || cluster_size < 1 || global_links < 0) {
    throw std::invalid_argument("HierarchicalNetwork: bad shape");
  }
}

std::string HierarchicalNetwork::name() const {
  return "hierarchical " + std::to_string(elements_) + " elements, clusters "
         "of " + std::to_string(cluster_size_) + ", " +
         std::to_string(global_links_) + " global links/cluster";
}

int HierarchicalNetwork::global_links_in_use(int cluster) const {
  int used = 0;
  for (PortId out = 0; out < elements_; ++out) {
    const Route& route = routes_[static_cast<std::size_t>(out)];
    if (route.input < 0 || !route.global) continue;
    // A global route consumes one up-link in the source cluster and one
    // down-link in the destination cluster.
    if (cluster_of(route.input) == cluster || cluster_of(out) == cluster) {
      ++used;
    }
  }
  return used;
}

bool HierarchicalNetwork::reachable(PortId input, PortId output) const {
  if (!valid_ports(input, output)) return false;
  const int in_cluster = cluster_of(input);
  const int out_cluster = cluster_of(output);
  if (!switch_alive(in_cluster) || !switch_alive(out_cluster)) return false;
  if (in_cluster == out_cluster) return true;
  // An inter-cluster path needs at least one surviving link on each end.
  return live_global_links(in_cluster) > 0 &&
         live_global_links(out_cluster) > 0;
}

bool HierarchicalNetwork::connect(PortId input, PortId output) {
  if (!reachable(input, output)) return false;
  const bool global = cluster_of(input) != cluster_of(output);
  if (global) {
    // Account for the link this connect would add; the route being
    // replaced (if any) is torn down first.
    Route& slot = routes_[static_cast<std::size_t>(output)];
    const Route saved = slot;
    slot = Route{};  // temporarily free the output
    const bool fits =
        global_links_in_use(cluster_of(input)) <
            live_global_links(cluster_of(input)) &&
        global_links_in_use(cluster_of(output)) <
            live_global_links(cluster_of(output));
    if (!fits) {
      slot = saved;
      return false;
    }
  }
  routes_[static_cast<std::size_t>(output)] = Route{input, global};
  return true;
}

void HierarchicalNetwork::disconnect(PortId output) {
  if (output < 0 || output >= elements_) return;
  routes_[static_cast<std::size_t>(output)] = Route{};
}

std::optional<PortId> HierarchicalNetwork::source_of(PortId output) const {
  if (output < 0 || output >= elements_) return std::nullopt;
  const Route& route = routes_[static_cast<std::size_t>(output)];
  if (route.input < 0) return std::nullopt;
  return route.input;
}

std::int64_t HierarchicalNetwork::config_bits() const {
  // Each cluster's local crossbar: (cluster elements + global down-links)
  // sources feeding (cluster elements + global up-links) sinks; plus the
  // global crossbar over cluster up-links -> down-links.
  const int local_ins = cluster_size_ + global_links_;
  const int local_outs = cluster_size_ + global_links_;
  const std::int64_t local = static_cast<std::int64_t>(local_outs) *
                             cost::ceil_log2(local_ins + 1);
  const int global_ports = cluster_count_ * global_links_;
  const std::int64_t global =
      global_ports > 0 ? static_cast<std::int64_t>(global_ports) *
                             cost::ceil_log2(global_ports + 1)
                       : 0;
  return local * cluster_count_ + global;
}

bool HierarchicalNetwork::fail_switch(int cluster) {
  if (cluster < 0 || cluster >= cluster_count_) return false;
  if (switch_dead_.empty()) {
    switch_dead_.assign(static_cast<std::size_t>(cluster_count_), 0);
  }
  switch_dead_[static_cast<std::size_t>(cluster)] = 1;
  // The cluster can no longer source or sink anything: tear down every
  // route touching it (local and global alike).
  for (PortId out = 0; out < elements_; ++out) {
    const Route& route = routes_[static_cast<std::size_t>(out)];
    if (route.input < 0) continue;
    if (cluster_of(route.input) == cluster || cluster_of(out) == cluster) {
      routes_[static_cast<std::size_t>(out)] = Route{};
    }
  }
  return true;
}

bool HierarchicalNetwork::fail_link(int cluster, int link) {
  if (cluster < 0 || cluster >= cluster_count_) return false;
  if (link < 0 || link >= global_links_) return false;
  if (link_dead_.empty()) {
    link_dead_.assign(
        static_cast<std::size_t>(cluster_count_) *
            static_cast<std::size_t>(global_links_),
        0);
  }
  link_dead_[static_cast<std::size_t>(cluster) *
                 static_cast<std::size_t>(global_links_) +
             static_cast<std::size_t>(link)] = 1;
  // Evict inter-cluster routes the shrunken budget no longer carries,
  // highest-numbered output first so the survivors are deterministic.
  while (global_links_in_use(cluster) > live_global_links(cluster)) {
    for (PortId out = elements_ - 1; out >= 0; --out) {
      const Route& route = routes_[static_cast<std::size_t>(out)];
      if (route.input < 0 || !route.global) continue;
      if (cluster_of(route.input) == cluster || cluster_of(out) == cluster) {
        routes_[static_cast<std::size_t>(out)] = Route{};
        break;
      }
    }
  }
  return true;
}

bool HierarchicalNetwork::switch_alive(int cluster) const {
  if (cluster < 0 || cluster >= cluster_count_) return false;
  return switch_dead_.empty() ||
         switch_dead_[static_cast<std::size_t>(cluster)] == 0;
}

bool HierarchicalNetwork::link_alive(int cluster, int link) const {
  if (cluster < 0 || cluster >= cluster_count_) return false;
  if (link < 0 || link >= global_links_) return false;
  return link_dead_.empty() ||
         link_dead_[static_cast<std::size_t>(cluster) *
                        static_cast<std::size_t>(global_links_) +
                    static_cast<std::size_t>(link)] == 0;
}

std::int64_t HierarchicalNetwork::dead_switch_count() const {
  std::int64_t dead = 0;
  for (char d : switch_dead_) dead += d;
  return dead;
}

std::int64_t HierarchicalNetwork::dead_link_count() const {
  std::int64_t dead = 0;
  for (char d : link_dead_) dead += d;
  return dead;
}

int HierarchicalNetwork::live_global_links(int cluster) const {
  if (cluster < 0 || cluster >= cluster_count_) return 0;
  if (!switch_alive(cluster)) return 0;
  if (link_dead_.empty()) return global_links_;
  int live = 0;
  for (int link = 0; link < global_links_; ++link) {
    if (link_alive(cluster, link)) ++live;
  }
  return live;
}

std::vector<bool> HierarchicalNetwork::reachable_outputs() const {
  std::vector<bool> reach(static_cast<std::size_t>(elements_));
  for (PortId out = 0; out < elements_; ++out) {
    reach[static_cast<std::size_t>(out)] = switch_alive(cluster_of(out));
  }
  return reach;
}

double HierarchicalNetwork::output_reachability() const {
  if (elements_ == 0) return 1.0;
  const std::vector<bool> reach = reachable_outputs();
  std::int64_t alive = 0;
  for (bool r : reach) alive += r ? 1 : 0;
  return static_cast<double>(alive) / static_cast<double>(elements_);
}

int HierarchicalNetwork::route_latency(PortId output) const {
  if (output < 0 || output >= elements_) return 0;
  const Route& route = routes_[static_cast<std::size_t>(output)];
  if (route.input < 0) return 0;
  return route.global ? 3 : 1;
}

}  // namespace mpct::interconnect
