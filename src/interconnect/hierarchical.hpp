#pragma once

#include <memory>

#include "interconnect/crossbar.hpp"
#include "interconnect/network.hpp"

namespace mpct::interconnect {

/// Two-level hierarchical network (PADDI-2 style): elements are grouped
/// into clusters; each cluster has a local crossbar, and clusters talk
/// through a global crossbar with a limited number of up/down links per
/// cluster.  Local routes cost 1 cycle; global routes 3 (local up,
/// global, local down).
///
/// With cluster-local traffic this matches a flat crossbar at a fraction
/// of its area/configuration; with all-to-all traffic the limited global
/// links block — the classic hierarchy trade-off the benches quantify.
class HierarchicalNetwork final : public Network {
 public:
  /// @param elements    total elements (inputs == outputs == elements)
  /// @param cluster_size elements per cluster (last cluster may be short)
  /// @param global_links up/down ports each cluster has on the global
  ///                     crossbar (bounds the number of concurrent
  ///                     inter-cluster routes per cluster)
  HierarchicalNetwork(int elements, int cluster_size, int global_links);

  int input_count() const override { return elements_; }
  int output_count() const override { return elements_; }
  std::string name() const override;

  bool connect(PortId input, PortId output) override;
  void disconnect(PortId output) override;
  std::optional<PortId> source_of(PortId output) const override;
  bool reachable(PortId input, PortId output) const override;
  std::int64_t config_bits() const override;
  int route_latency(PortId output) const override;

  int cluster_of(PortId element) const { return element / cluster_size_; }
  int cluster_count() const { return cluster_count_; }

  /// Inter-cluster routes currently using global links out of a cluster.
  int global_links_in_use(int cluster) const;

  /// Fault mask (src/fault), mirroring the Benes/Omega/Crossbar/Bus
  /// semantics: kill cluster @p cluster's local crossbar.  Every element
  /// of the cluster becomes unreachable (as source and sink), routes
  /// touching the cluster are torn down, and config_bits() is unchanged
  /// (the configuration memory is still physically there).  reset()
  /// tears down routes but never clears the mask.  False out of range.
  bool fail_switch(int cluster);
  /// Kill one of @p cluster's global up/down link pairs (@p link in
  /// [0, global_links)).  The cluster's concurrent inter-cluster route
  /// budget shrinks by one; routes over budget are evicted
  /// highest-numbered output first (deterministic, like the bitstream
  /// loader dropping routes onto failed ports).  False out of range.
  bool fail_link(int cluster, int link);
  bool switch_alive(int cluster) const;
  bool link_alive(int cluster, int link) const;
  std::int64_t dead_switch_count() const;
  std::int64_t dead_link_count() const;
  /// Surviving inter-cluster link budget of a cluster (global_links
  /// while fault-free, 0 once the cluster's switch died — a dead local
  /// crossbar strands its up/down ports too).
  int live_global_links(int cluster) const;

  /// Config-independent reachability under the fault mask (the
  /// Benes/Omega idiom): output o is reachable iff its cluster's local
  /// crossbar survives — cluster-local sources then still reach it even
  /// with every global link dead.
  std::vector<bool> reachable_outputs() const;
  /// Fraction of outputs still reachable; 1.0 while fault-free.
  double output_reachability() const;

 private:
  struct Route {
    PortId input = -1;
    bool global = false;
  };

  int elements_;
  int cluster_size_;
  int cluster_count_;
  int global_links_;
  std::vector<Route> routes_;  ///< per output
  /// Fault masks; empty while fault-free (the Crossbar idiom).
  std::vector<char> switch_dead_;             ///< per cluster
  std::vector<char> link_dead_;               ///< cluster * global_links + link
};

}  // namespace mpct::interconnect
