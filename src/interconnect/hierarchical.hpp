#pragma once

#include <memory>

#include "interconnect/crossbar.hpp"
#include "interconnect/network.hpp"

namespace mpct::interconnect {

/// Two-level hierarchical network (PADDI-2 style): elements are grouped
/// into clusters; each cluster has a local crossbar, and clusters talk
/// through a global crossbar with a limited number of up/down links per
/// cluster.  Local routes cost 1 cycle; global routes 3 (local up,
/// global, local down).
///
/// With cluster-local traffic this matches a flat crossbar at a fraction
/// of its area/configuration; with all-to-all traffic the limited global
/// links block — the classic hierarchy trade-off the benches quantify.
class HierarchicalNetwork final : public Network {
 public:
  /// @param elements    total elements (inputs == outputs == elements)
  /// @param cluster_size elements per cluster (last cluster may be short)
  /// @param global_links up/down ports each cluster has on the global
  ///                     crossbar (bounds the number of concurrent
  ///                     inter-cluster routes per cluster)
  HierarchicalNetwork(int elements, int cluster_size, int global_links);

  int input_count() const override { return elements_; }
  int output_count() const override { return elements_; }
  std::string name() const override;

  bool connect(PortId input, PortId output) override;
  void disconnect(PortId output) override;
  std::optional<PortId> source_of(PortId output) const override;
  bool reachable(PortId input, PortId output) const override;
  std::int64_t config_bits() const override;
  int route_latency(PortId output) const override;

  int cluster_of(PortId element) const { return element / cluster_size_; }
  int cluster_count() const { return cluster_count_; }

  /// Inter-cluster routes currently using global links out of a cluster.
  int global_links_in_use(int cluster) const;

 private:
  struct Route {
    PortId input = -1;
    bool global = false;
  };

  int elements_;
  int cluster_size_;
  int cluster_count_;
  int global_links_;
  std::vector<Route> routes_;  ///< per output
};

}  // namespace mpct::interconnect
