#pragma once

#include <vector>

#include "interconnect/network.hpp"

namespace mpct::interconnect {

/// Omega (shuffle-exchange) multistage interconnection network: N = 2^k
/// ports routed through k stages of N/2 two-by-two switches with a
/// perfect shuffle between stages.
///
/// In the taxonomy's cost spectrum this sits between the bus and the
/// full crossbar: every input can reach every output (destination-tag
/// routing), but the network *blocks* — two routes may demand opposite
/// settings of the same 2x2 switch.  Configuration state is one bit per
/// switch per traversal-pair... modelled here as one through/cross bit
/// per 2x2 switch: (N/2)*log2(N) bits, versus the crossbar's
/// N*ceil(log2(N+1)).
class OmegaNetwork final : public Network {
 public:
  /// @param ports must be a power of two >= 2.
  explicit OmegaNetwork(int ports);

  int input_count() const override { return ports_; }
  int output_count() const override { return ports_; }
  int stage_count() const { return stages_; }
  std::string name() const override;

  /// Destination-tag routing: walks input @p input through the shuffle
  /// stages; fails (without disturbing the configuration) when any
  /// required 2x2 switch is already locked in the opposite state by
  /// a previously routed connection.
  bool connect(PortId input, PortId output) override;
  void disconnect(PortId output) override;
  std::optional<PortId> source_of(PortId output) const override;
  bool reachable(PortId input, PortId output) const override;
  std::int64_t config_bits() const override;
  /// Routed latency equals the stage count.
  int route_latency(PortId output) const override;

  /// Try to route a full permutation (output i driven by perm[i]);
  /// returns how many routes succeeded.  The identity and uniform
  /// shifts route fully; many permutations block — the classic Omega
  /// property the tests sweep.
  int route_permutation(const std::vector<PortId>& perm);

  /// Fault mask (src/fault), mirroring BenesNetwork::fail_switch: kill
  /// the 2x2 switch @p index of @p stage.  Routes through it are torn
  /// down, connect()/reachable() refuse paths crossing it, and
  /// config_bits() is unchanged (the configuration memory is still
  /// physically there).  reset()/route_permutation() tear down routes
  /// but never clear the mask.  False when out of range.
  bool fail_switch(int stage, int index);
  bool switch_alive(int stage, int index) const;
  std::int64_t dead_switch_count() const;

  /// Config-independent reachability under the fault mask (forward
  /// OR-propagation, the BenesNetwork idiom): output o is reachable iff
  /// some input's destination-tag path to it survives every switch.
  std::vector<bool> reachable_outputs() const;
  /// Fraction of outputs still reachable; 1.0 while fault-free.
  double output_reachability() const;

 private:
  /// The switch on @p stage that the path through @p wire traverses,
  /// and whether the wire enters its upper (0) or lower (1) leg.
  struct SwitchRef {
    int index;
    int leg;
  };
  SwitchRef switch_at(int stage, int wire) const;
  /// Perfect shuffle applied to a wire index (left rotate of k bits).
  int shuffle(int wire) const;

  /// Per-route bookkeeping so disconnect can release switches.
  struct Route {
    PortId input = -1;
    std::vector<int> switches;  ///< switch index per stage
    std::vector<int> settings;  ///< 0 = through, 1 = cross per stage
  };

  int ports_;
  int stages_;
  /// Per stage, per switch: -1 free, 0 locked through, 1 locked cross,
  /// with a use count to release correctly on disconnect.
  struct SwitchState {
    int setting = -1;
    int users = 0;
  };
  std::vector<std::vector<SwitchState>> switches_;
  std::vector<Route> routes_;  ///< per output
  /// dead_[stage][switch]; empty while fault-free (the Benes idiom).
  std::vector<std::vector<bool>> dead_;
};

}  // namespace mpct::interconnect
