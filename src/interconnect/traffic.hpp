#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "interconnect/mesh_noc.hpp"

namespace mpct::interconnect {

/// The deterministic generator behind every traffic pattern, now shared
/// library-wide from core/rng.hpp (the fault engine samples failures from
/// the same stream discipline).  The alias keeps every existing caller
/// and the bit-exact streams for existing seeds.
using Rng = ::mpct::Rng;

/// Synthetic traffic patterns for the mesh NoC, parameterised by
/// injection rate (packets per node per cycle).
struct TrafficParams {
  int cycles = 1000;       ///< injection window length
  double rate = 0.05;      ///< packets per node per cycle
  std::uint64_t seed = 1;  ///< generator seed
};

/// Every packet targets a uniformly random other node.
std::vector<Packet> uniform_traffic(const MeshNoc& mesh,
                                    const TrafficParams& params);

/// A fraction of packets target one hot node, the rest are uniform —
/// models the shared-memory port of an IAP-III style machine.
std::vector<Packet> hotspot_traffic(const MeshNoc& mesh,
                                    const TrafficParams& params,
                                    int hot_node, double hot_fraction);

/// Each node talks to its +1 neighbour (wrapping), the friendliest
/// pattern for a mesh — systolic/pipelined workloads.
std::vector<Packet> neighbor_traffic(const MeshNoc& mesh,
                                     const TrafficParams& params);

/// Node (x, y) sends to (y, x): the classic adversarial pattern for XY
/// routing on square meshes.
std::vector<Packet> transpose_traffic(const MeshNoc& mesh,
                                      const TrafficParams& params);

}  // namespace mpct::interconnect
