#pragma once

#include <cstdint>
#include <vector>

#include "interconnect/mesh_noc.hpp"

namespace mpct::interconnect {

/// Small deterministic PRNG (xorshift64*) so traffic generation and every
/// simulation built on it reproduce bit-exactly across platforms — no
/// dependence on std::random distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next();

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t state_;
};

/// Synthetic traffic patterns for the mesh NoC, parameterised by
/// injection rate (packets per node per cycle).
struct TrafficParams {
  int cycles = 1000;       ///< injection window length
  double rate = 0.05;      ///< packets per node per cycle
  std::uint64_t seed = 1;  ///< generator seed
};

/// Every packet targets a uniformly random other node.
std::vector<Packet> uniform_traffic(const MeshNoc& mesh,
                                    const TrafficParams& params);

/// A fraction of packets target one hot node, the rest are uniform —
/// models the shared-memory port of an IAP-III style machine.
std::vector<Packet> hotspot_traffic(const MeshNoc& mesh,
                                    const TrafficParams& params,
                                    int hot_node, double hot_fraction);

/// Each node talks to its +1 neighbour (wrapping), the friendliest
/// pattern for a mesh — systolic/pipelined workloads.
std::vector<Packet> neighbor_traffic(const MeshNoc& mesh,
                                     const TrafficParams& params);

/// Node (x, y) sends to (y, x): the classic adversarial pattern for XY
/// routing on square meshes.
std::vector<Packet> transpose_traffic(const MeshNoc& mesh,
                                      const TrafficParams& params);

}  // namespace mpct::interconnect
