#pragma once

#include "interconnect/network.hpp"

namespace mpct::interconnect {

/// Full (possibly rectangular) crossbar: every output carries an
/// inputs:1 multiplexer, so any input reaches any output and distinct
/// outputs never conflict — the 'x' switch of the taxonomy in executable
/// form.
///
/// Configuration state: one select field per output wide enough to
/// address any input plus the disconnected state, i.e.
/// outputs * ceil(log2(inputs + 1)) bits — exactly the Eq. 2 crossbar
/// term, which the tests assert against cost::switch_cost.
class Crossbar final : public Network {
 public:
  Crossbar(int inputs, int outputs);

  int input_count() const override { return inputs_; }
  int output_count() const override { return outputs_; }
  std::string name() const override;

  bool connect(PortId input, PortId output) override;
  void disconnect(PortId output) override;
  std::optional<PortId> source_of(PortId output) const override;
  bool reachable(PortId input, PortId output) const override;
  std::int64_t config_bits() const override;
  int route_latency(PortId output) const override;

  /// Serialise the select fields into a bitstream (LSB-first per output),
  /// the "configuration bits" a real device would shift in.  Length
  /// equals config_bits().
  std::vector<bool> bitstream() const;

  /// Program the crossbar from a bitstream produced by bitstream().
  /// Returns false (leaving the configuration untouched) if the length is
  /// wrong or any select field decodes to an invalid input.  Routes that
  /// decode onto a failed port are dropped (the surviving fabric cannot
  /// honour them), not treated as errors.
  bool load_bitstream(const std::vector<bool>& bits);

  /// Fault mask (src/fault): a failed port can no longer be connected;
  /// existing routes through it are torn down.  The select state keeps
  /// its full width — dead ports waste their mux bits, exactly like a
  /// real device with a defective column.
  void fail_input(PortId input);
  void fail_output(PortId output);
  bool input_alive(PortId input) const;
  bool output_alive(PortId output) const;
  int live_input_count() const;
  int live_output_count() const;

 private:
  int select_bits() const;

  int inputs_;
  int outputs_;
  /// Per-output source; -1 = disconnected.
  std::vector<PortId> select_;
  /// Fault masks; empty while fault-free.
  std::vector<char> input_dead_;
  std::vector<char> output_dead_;
};

}  // namespace mpct::interconnect
