#include "interconnect/mesh_noc.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>

namespace mpct::interconnect {

MeshNoc::MeshNoc(int width, int height, int link_capacity)
    : width_(width), height_(height), link_capacity_(link_capacity) {
  if (width < 1 || height < 1 || link_capacity < 1) {
    throw std::invalid_argument("MeshNoc: bad shape");
  }
}

std::string MeshNoc::name() const {
  return "mesh " + std::to_string(width_) + "x" + std::to_string(height_) +
         " XY-routed";
}

int MeshNoc::hops(int from, int to) const {
  return std::abs(x_of(from) - x_of(to)) + std::abs(y_of(from) - y_of(to));
}

int MeshNoc::next_hop(int current, int dst) const {
  const int cx = x_of(current), cy = y_of(current);
  const int dx = x_of(dst), dy = y_of(dst);
  if (cx < dx) return node_id(cx + 1, cy);
  if (cx > dx) return node_id(cx - 1, cy);
  if (cy < dy) return node_id(cx, cy + 1);
  if (cy > dy) return node_id(cx, cy - 1);
  return current;
}

MeshNoc::Stats MeshNoc::simulate(std::vector<Packet>& packets,
                                 std::int64_t max_cycles) const {
  struct InFlight {
    std::size_t index;  ///< into packets
    int position;
  };
  // Sort indices by injection time so activation is O(n) overall.
  std::vector<std::size_t> order(packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return packets[a].inject_cycle < packets[b].inject_cycle;
  });

  std::vector<InFlight> flying;
  std::size_t next_to_inject = 0;
  Stats stats;
  std::int64_t cycle = 0;
  std::int64_t latency_sum = 0;

  for (Packet& p : packets) p.arrive_cycle = -1;

  while (cycle < max_cycles &&
         (next_to_inject < order.size() || !flying.empty())) {
    // Inject everything due this cycle.
    while (next_to_inject < order.size() &&
           packets[order[next_to_inject]].inject_cycle <= cycle) {
      const std::size_t idx = order[next_to_inject++];
      Packet& p = packets[idx];
      if (p.src == p.dst) {
        p.arrive_cycle = cycle;
        ++stats.delivered;
        continue;
      }
      flying.push_back({idx, p.src});
    }

    // Plan moves: group by desired directed link, admit up to
    // link_capacity per link, oldest injection first.
    std::map<std::pair<int, int>, std::vector<std::size_t>> want;
    for (std::size_t f = 0; f < flying.size(); ++f) {
      const int to = next_hop(flying[f].position, packets[flying[f].index].dst);
      want[{flying[f].position, to}].push_back(f);
    }
    std::vector<int> new_position(flying.size(), -1);
    for (auto& [link, contenders] : want) {
      std::sort(contenders.begin(), contenders.end(),
                [&](std::size_t a, std::size_t b) {
                  const Packet& pa = packets[flying[a].index];
                  const Packet& pb = packets[flying[b].index];
                  if (pa.inject_cycle != pb.inject_cycle) {
                    return pa.inject_cycle < pb.inject_cycle;
                  }
                  return flying[a].index < flying[b].index;
                });
      for (std::size_t k = 0; k < contenders.size(); ++k) {
        new_position[contenders[k]] =
            k < static_cast<std::size_t>(link_capacity_) ? link.second
                                                         : link.first;
      }
    }

    // Commit moves and retire arrivals.
    std::vector<InFlight> still_flying;
    still_flying.reserve(flying.size());
    for (std::size_t f = 0; f < flying.size(); ++f) {
      InFlight inflight = flying[f];
      inflight.position = new_position[f];
      Packet& p = packets[inflight.index];
      if (inflight.position == p.dst) {
        p.arrive_cycle = cycle + 1;
        ++stats.delivered;
        latency_sum += p.latency();
        stats.max_latency = std::max(stats.max_latency, p.latency());
      } else {
        still_flying.push_back(inflight);
      }
    }
    flying = std::move(still_flying);
    ++cycle;
  }

  stats.cycles = cycle;
  stats.undelivered =
      static_cast<std::int64_t>(packets.size()) - stats.delivered;
  if (stats.delivered > 0) {
    stats.avg_latency =
        static_cast<double>(latency_sum) / static_cast<double>(stats.delivered);
  }
  if (cycle > 0) {
    stats.throughput = static_cast<double>(stats.delivered) /
                       static_cast<double>(cycle) / node_count();
  }
  return stats;
}

}  // namespace mpct::interconnect
