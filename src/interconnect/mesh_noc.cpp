#include "interconnect/mesh_noc.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <stdexcept>

#include "trace/trace.hpp"

namespace mpct::interconnect {

MeshNoc::MeshNoc(int width, int height, int link_capacity)
    : width_(width), height_(height), link_capacity_(link_capacity) {
  if (width < 1 || height < 1 || link_capacity < 1) {
    throw std::invalid_argument("MeshNoc: bad shape");
  }
}

std::string MeshNoc::name() const {
  return "mesh " + std::to_string(width_) + "x" + std::to_string(height_) +
         " XY-routed";
}

int MeshNoc::hops(int from, int to) const {
  return std::abs(x_of(from) - x_of(to)) + std::abs(y_of(from) - y_of(to));
}

int MeshNoc::next_hop(int current, int dst) const {
  if (faulty_) {
    const int hop = route_[static_cast<std::size_t>(current) *
                               static_cast<std::size_t>(node_count()) +
                           static_cast<std::size_t>(dst)];
    return hop < 0 ? current : hop;
  }
  const int cx = x_of(current), cy = y_of(current);
  const int dx = x_of(dst), dy = y_of(dst);
  if (cx < dx) return node_id(cx + 1, cy);
  if (cx > dx) return node_id(cx - 1, cy);
  if (cy < dy) return node_id(cx, cy + 1);
  if (cy > dy) return node_id(cx, cy - 1);
  return current;
}

int MeshNoc::link_slot(int a, int b) const {
  const int lo = std::min(a, b), hi = std::max(a, b);
  if (lo < 0 || hi >= node_count()) return -1;
  if (hi == lo + 1 && y_of(lo) == y_of(hi)) return 2 * lo;  // +x link
  if (hi == lo + width_) return 2 * lo + 1;  // +y link
  return -1;
}

void MeshNoc::fail_node(int node) {
  if (node < 0 || node >= node_count()) return;
  faulty_ = true;
  if (node_dead_.empty()) {
    node_dead_.assign(static_cast<std::size_t>(node_count()), 0);
    link_dead_.assign(static_cast<std::size_t>(2 * node_count()), 0);
  }
  node_dead_[static_cast<std::size_t>(node)] = 1;
  rebuild_routes();
}

bool MeshNoc::fail_link(int a, int b) {
  const int slot = link_slot(a, b);
  if (slot < 0) return false;
  faulty_ = true;
  if (node_dead_.empty()) {
    node_dead_.assign(static_cast<std::size_t>(node_count()), 0);
    link_dead_.assign(static_cast<std::size_t>(2 * node_count()), 0);
  }
  link_dead_[static_cast<std::size_t>(slot)] = 1;
  rebuild_routes();
  return true;
}

bool MeshNoc::node_alive(int node) const {
  if (node < 0 || node >= node_count()) return false;
  return node_dead_.empty() || !node_dead_[static_cast<std::size_t>(node)];
}

bool MeshNoc::link_alive(int a, int b) const {
  const int slot = link_slot(a, b);
  if (slot < 0) return false;
  if (!node_alive(a) || !node_alive(b)) return false;
  return link_dead_.empty() || !link_dead_[static_cast<std::size_t>(slot)];
}

int MeshNoc::alive_node_count() const {
  if (node_dead_.empty()) return node_count();
  return node_count() -
         static_cast<int>(
             std::count(node_dead_.begin(), node_dead_.end(), char{1}));
}

void MeshNoc::rebuild_routes() {
  trace::ProfileTimer timer(trace::ProfilePoint::NocReroute);
  // One deterministic BFS per destination over the surviving topology.
  // Fixed neighbour order (-x, +x, -y, +y) makes the chosen shortest
  // paths — and therefore every downstream simulation — reproducible.
  const int n = node_count();
  route_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::deque<int> queue;
  for (int dst = 0; dst < n; ++dst) {
    if (!node_alive(dst)) continue;
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(dst)] = 0;
    route_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(dst)] = dst;
    queue.clear();
    queue.push_back(dst);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      const int ux = x_of(u), uy = y_of(u);
      const int neighbours[4] = {
          ux > 0 ? node_id(ux - 1, uy) : -1,
          ux + 1 < width_ ? node_id(ux + 1, uy) : -1,
          uy > 0 ? node_id(ux, uy - 1) : -1,
          uy + 1 < height_ ? node_id(ux, uy + 1) : -1,
      };
      for (const int v : neighbours) {
        if (v < 0 || dist[static_cast<std::size_t>(v)] != -1) continue;
        if (!link_alive(u, v)) continue;
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        // Travelling v -> dst, the first hop is back towards u.
        route_[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(dst)] = u;
        queue.push_back(v);
      }
    }
  }
}

bool MeshNoc::routable(int src, int dst) const {
  if (src < 0 || src >= node_count() || dst < 0 || dst >= node_count()) {
    return false;
  }
  if (!faulty_) return true;
  if (!node_alive(src) || !node_alive(dst)) return false;
  return route_[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(node_count()) +
                static_cast<std::size_t>(dst)] >= 0;
}

double MeshNoc::reachable_fraction() const {
  if (!faulty_) return 1.0;
  const int alive = alive_node_count();
  if (alive < 2) return alive == 1 ? 1.0 : 0.0;
  std::int64_t connected = 0;
  for (int s = 0; s < node_count(); ++s) {
    if (!node_alive(s)) continue;
    for (int d = 0; d < node_count(); ++d) {
      if (d == s || !node_alive(d)) continue;
      if (routable(s, d)) ++connected;
    }
  }
  const std::int64_t pairs =
      static_cast<std::int64_t>(alive) * (alive - 1);
  return static_cast<double>(connected) / static_cast<double>(pairs);
}

int MeshNoc::bisection_width() const {
  int crossing = 0;
  if (width_ >= height_ && width_ >= 2) {
    const int cut = width_ / 2 - 1;  // links cut..cut+1
    for (int y = 0; y < height_; ++y) {
      if (link_alive(node_id(cut, y), node_id(cut + 1, y))) ++crossing;
    }
  } else if (height_ >= 2) {
    const int cut = height_ / 2 - 1;
    for (int x = 0; x < width_; ++x) {
      if (link_alive(node_id(x, cut), node_id(x, cut + 1))) ++crossing;
    }
  }
  return crossing;
}

MeshNoc::Stats MeshNoc::simulate(std::vector<Packet>& packets,
                                 std::int64_t max_cycles) const {
  struct InFlight {
    std::size_t index;  ///< into packets
    int position;
  };
  // Sort indices by injection time so activation is O(n) overall.
  std::vector<std::size_t> order(packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return packets[a].inject_cycle < packets[b].inject_cycle;
  });

  std::vector<InFlight> flying;
  std::size_t next_to_inject = 0;
  Stats stats;
  std::int64_t cycle = 0;
  std::int64_t latency_sum = 0;

  for (Packet& p : packets) p.arrive_cycle = -1;

  while (cycle < max_cycles &&
         (next_to_inject < order.size() || !flying.empty())) {
    // Inject everything due this cycle.
    while (next_to_inject < order.size() &&
           packets[order[next_to_inject]].inject_cycle <= cycle) {
      const std::size_t idx = order[next_to_inject++];
      Packet& p = packets[idx];
      if (!routable(p.src, p.dst)) {
        ++stats.unroutable;
        continue;
      }
      if (p.src == p.dst) {
        p.arrive_cycle = cycle;
        ++stats.delivered;
        continue;
      }
      flying.push_back({idx, p.src});
    }

    // Plan moves: group by desired directed link, admit up to
    // link_capacity per link, oldest injection first.
    std::map<std::pair<int, int>, std::vector<std::size_t>> want;
    for (std::size_t f = 0; f < flying.size(); ++f) {
      const int to = next_hop(flying[f].position, packets[flying[f].index].dst);
      want[{flying[f].position, to}].push_back(f);
    }
    std::vector<int> new_position(flying.size(), -1);
    for (auto& [link, contenders] : want) {
      std::sort(contenders.begin(), contenders.end(),
                [&](std::size_t a, std::size_t b) {
                  const Packet& pa = packets[flying[a].index];
                  const Packet& pb = packets[flying[b].index];
                  if (pa.inject_cycle != pb.inject_cycle) {
                    return pa.inject_cycle < pb.inject_cycle;
                  }
                  return flying[a].index < flying[b].index;
                });
      for (std::size_t k = 0; k < contenders.size(); ++k) {
        new_position[contenders[k]] =
            k < static_cast<std::size_t>(link_capacity_) ? link.second
                                                         : link.first;
      }
    }

    // Commit moves and retire arrivals.
    std::vector<InFlight> still_flying;
    still_flying.reserve(flying.size());
    for (std::size_t f = 0; f < flying.size(); ++f) {
      InFlight inflight = flying[f];
      inflight.position = new_position[f];
      Packet& p = packets[inflight.index];
      if (inflight.position == p.dst) {
        p.arrive_cycle = cycle + 1;
        ++stats.delivered;
        latency_sum += p.latency();
        stats.max_latency = std::max(stats.max_latency, p.latency());
      } else {
        still_flying.push_back(inflight);
      }
    }
    flying = std::move(still_flying);
    ++cycle;
  }

  stats.cycles = cycle;
  stats.undelivered = static_cast<std::int64_t>(packets.size()) -
                      stats.delivered - stats.unroutable;
  if (stats.delivered > 0) {
    stats.avg_latency =
        static_cast<double>(latency_sum) / static_cast<double>(stats.delivered);
  }
  if (cycle > 0) {
    stats.throughput = static_cast<double>(stats.delivered) /
                       static_cast<double>(cycle) / node_count();
  }
  return stats;
}

}  // namespace mpct::interconnect
