#include "report/csv.hpp"

namespace mpct::report {

std::string CsvWriter::escape(const std::string& field, char separator) {
  const bool needs_quotes =
      field.find_first_of(std::string("\"\r\n") + separator) !=
      std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ += separator_;
    out_ += escape(cells[i], separator_);
  }
  out_ += '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text,
                                                char separator) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      field_started = true;
    } else if (c == separator) {
      end_field();
      field_started = true;  // the next field exists even if empty
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field += c;
      field_started = true;
    }
  }
  end_row();
  return rows;
}

}  // namespace mpct::report
