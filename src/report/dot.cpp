#include "report/dot.hpp"

#include <sstream>
#include <vector>

#include "core/comparison.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"
#include "report/svg.hpp"

namespace mpct::report {

namespace {

void emit_node(std::ostringstream& os, const std::string& id,
               const std::string& label) {
  os << "  \"" << id << "\" [label=\"" << xml_escape(label) << "\"];\n";
}

void walk(const HierarchyNode& node, const std::string& parent,
          std::ostringstream& os, int& counter) {
  const std::string id = "n" + std::to_string(counter++);
  std::string label = node.label;
  if (!node.classes.empty()) {
    label += "\\n";
    label += to_string(node.classes.front());
    if (node.classes.size() > 1) {
      label += " .. " + to_string(node.classes.back());
    }
  }
  emit_node(os, id, label);
  if (!parent.empty()) {
    os << "  \"" << parent << "\" -> \"" << id << "\";\n";
  }
  for (const HierarchyNode& child : node.children) {
    walk(child, id, os, counter);
  }
}

}  // namespace

std::string hierarchy_dot(const HierarchyNode& root) {
  std::ostringstream os;
  os << "digraph hierarchy {\n  rankdir=LR;\n  node [shape=box, "
        "fontname=\"sans-serif\"];\n";
  int counter = 0;
  walk(root, "", os, counter);
  os << "}\n";
  return os.str();
}

std::string morph_dot() {
  std::vector<TaxonomicName> names;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) names.push_back(*row.name);
  }
  const int n = static_cast<int>(names.size());
  // Full relation, then transitive reduction (Hasse diagram).
  std::vector<std::vector<bool>> edge(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      edge[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          can_morph_into(names[static_cast<std::size_t>(a)],
                         names[static_cast<std::size_t>(b)]);
    }
  }
  std::ostringstream os;
  os << "digraph morph {\n  rankdir=BT;\n  node [shape=ellipse, "
        "fontname=\"sans-serif\"];\n";
  for (int a = 0; a < n; ++a) {
    const TaxonomicName& name = names[static_cast<std::size_t>(a)];
    os << "  \"" << to_string(name) << "\" [label=\"" << to_string(name)
       << "\\nflex " << flexibility_of(name) << "\"];\n";
  }
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (!edge[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
        continue;
      }
      bool implied = false;
      for (int c = 0; c < n && !implied; ++c) {
        if (c == a || c == b) continue;
        implied =
            edge[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] &&
            edge[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
      }
      if (!implied) {
        // Drawn bottom-up: the more capable class points at what it can
        // impersonate.
        os << "  \"" << to_string(names[static_cast<std::size_t>(a)])
           << "\" -> \"" << to_string(names[static_cast<std::size_t>(b)])
           << "\";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace mpct::report
