#pragma once

#include <string>
#include <vector>

namespace mpct::report {

/// One labelled value of a bar chart (Figure 7 style: architectures on
/// the category axis, flexibility on the value axis).
struct Bar {
  std::string label;
  double value = 0;
};

/// Options for ASCII bar rendering.
struct BarChartOptions {
  int max_bar_width = 50;  ///< character cells for the largest value
  bool show_value = true;  ///< append the numeric value after the bar
  char fill = '#';
};

/// Render a horizontal ASCII bar chart; labels are right-padded to align
/// the bars.  Zero and negative values render as empty bars.
std::string render_bar_chart(const std::vector<Bar>& bars,
                             const BarChartOptions& options = {});

/// One series of a line chart (Figure 1 style: publications per year per
/// topic).
struct Series {
  std::string name;
  std::vector<double> values;  ///< one value per x position
};

/// Options for ASCII line-chart rendering.
struct LineChartOptions {
  int height = 16;  ///< plot rows
  /// Glyphs cycled across series.
  std::string glyphs = "*o+x@%";
};

/// Render a multi-series ASCII line chart over shared x labels.  Values
/// are scaled into `height` rows; each series plots with its own glyph
/// and a legend is appended.  All series must have values.size() ==
/// x_labels.size() (shorter series are padded with 0).
std::string render_line_chart(const std::vector<std::string>& x_labels,
                              std::vector<Series> series,
                              const LineChartOptions& options = {});

}  // namespace mpct::report
