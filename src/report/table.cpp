#include "report/table.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace mpct::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Left) {}

void TextTable::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{false, "", std::move(cells)});
}

void TextTable::add_section(std::string title) {
  rows_.push_back(Row{true, std::move(title), {}});
}

std::vector<std::size_t> TextTable::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.is_section) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

std::string TextTable::render_ascii() const {
  std::vector<std::size_t> widths = column_widths();
  // Section banners must fit inside the box: widen the last column when
  // a title exceeds the combined data width.
  if (!widths.empty()) {
    const auto row_width = [&] {
      return std::accumulate(widths.begin(), widths.end(),
                             std::size_t{0}) +
             3 * widths.size() - 1;
    };
    for (const Row& row : rows_) {
      if (!row.is_section) continue;
      const std::size_t needed = row.section_title.size() + 2;
      if (needed > row_width()) {
        widths.back() += needed - row_width();
      }
    }
  }
  std::ostringstream os;

  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto cell = [&](const std::string& text, std::size_t width,
                        Align align) {
    const std::size_t pad = width - std::min(width, text.size());
    os << ' ';
    if (align == Align::Right) os << std::string(pad, ' ');
    os << text;
    if (align == Align::Left) os << std::string(pad, ' ');
    os << " |";
  };
  const std::size_t total_width =
      std::accumulate(widths.begin(), widths.end(), std::size_t{0}) +
      3 * widths.size() - 1;

  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    cell(headers_[c], widths[c], Align::Left);
  }
  os << '\n';
  rule();
  for (const Row& row : rows_) {
    if (row.is_section) {
      os << '|';
      std::string title = " " + row.section_title;
      title.resize(total_width, ' ');
      os << title << "|\n";
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      cell(row.cells[c], widths[c], aligns_[c]);
    }
    os << '\n';
  }
  rule();
  return os.str();
}

std::string TextTable::render_markdown() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (const std::string& cell : cells) os << ' ' << cell << " |";
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (aligns_[c] == Align::Right ? " ---: |" : " --- |");
  }
  os << '\n';
  for (const Row& row : rows_) {
    if (row.is_section) {
      std::vector<std::string> cells(headers_.size());
      cells[0] = "**" + row.section_title + "**";
      emit_row(cells);
    } else {
      emit_row(row.cells);
    }
  }
  return os.str();
}

}  // namespace mpct::report
