#include "report/svg.hpp"

#include <algorithm>
#include <array>
#include <iomanip>
#include <sstream>

namespace mpct::report {

namespace {

constexpr std::array<std::string_view, 6> kPalette{
    "#4878a8", "#d95f02", "#1b9e77", "#7570b3", "#e7298a", "#66a61e"};

struct Frame {
  double x0, y0;  ///< plot-area origin (bottom-left) in SVG coordinates
  double w, h;    ///< plot-area size
};

Frame frame_of(const SvgOptions& o) {
  return Frame{static_cast<double>(o.margin_left),
               static_cast<double>(o.height - o.margin_bottom),
               static_cast<double>(o.width - o.margin_left - o.margin_right),
               static_cast<double>(o.height - o.margin_top -
                                   o.margin_bottom)};
}

void open_document(std::ostringstream& os, const SvgOptions& o) {
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << o.width
     << "\" height=\"" << o.height << "\" viewBox=\"0 0 " << o.width << ' '
     << o.height << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!o.title.empty()) {
    os << "<text x=\"" << o.width / 2 << "\" y=\"" << o.margin_top - 8
       << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
          "font-size=\"15\" font-weight=\"bold\">"
       << xml_escape(o.title) << "</text>\n";
  }
}

void axes(std::ostringstream& os, const Frame& f, double max_value) {
  os << "<line x1=\"" << f.x0 << "\" y1=\"" << f.y0 << "\" x2=\""
     << f.x0 + f.w << "\" y2=\"" << f.y0
     << "\" stroke=\"black\" stroke-width=\"1\"/>\n";
  os << "<line x1=\"" << f.x0 << "\" y1=\"" << f.y0 << "\" x2=\"" << f.x0
     << "\" y2=\"" << f.y0 - f.h
     << "\" stroke=\"black\" stroke-width=\"1\"/>\n";
  for (int tick = 0; tick <= 4; ++tick) {
    const double value = max_value * tick / 4.0;
    const double y = f.y0 - f.h * tick / 4.0;
    os << "<text x=\"" << f.x0 - 8 << "\" y=\"" << y + 4
       << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
          "font-size=\"11\">"
       << std::fixed << std::setprecision(0) << value << "</text>\n";
    os << "<line x1=\"" << f.x0 << "\" y1=\"" << y << "\" x2=\""
       << f.x0 + f.w << "\" y2=\"" << y
       << "\" stroke=\"#dddddd\" stroke-width=\"0.5\"/>\n";
  }
}

}  // namespace

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string svg_bar_chart(const std::vector<Bar>& bars,
                          const SvgOptions& options) {
  std::ostringstream os;
  open_document(os, options);
  const Frame f = frame_of(options);
  double max_value = 1;
  for (const Bar& b : bars) max_value = std::max(max_value, b.value);

  axes(os, f, max_value);
  const double slot = bars.empty() ? f.w : f.w / bars.size();
  const double bar_w = slot * 0.7;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    const double h = bars[i].value / max_value * f.h;
    const double x = f.x0 + slot * i + (slot - bar_w) / 2;
    os << "<rect x=\"" << x << "\" y=\"" << f.y0 - h << "\" width=\""
       << bar_w << "\" height=\"" << h << "\" fill=\""
       << kPalette[i % kPalette.size()] << "\"/>\n";
    const double lx = f.x0 + slot * i + slot / 2;
    os << "<text x=\"" << lx << "\" y=\"" << f.y0 + 12
       << "\" font-family=\"sans-serif\" font-size=\"10\" "
          "text-anchor=\"end\" transform=\"rotate(-45 "
       << lx << ' ' << f.y0 + 12 << ")\">" << xml_escape(bars[i].label)
       << "</text>\n";
    os << "<text x=\"" << lx << "\" y=\"" << f.y0 - h - 4
       << "\" font-family=\"sans-serif\" font-size=\"10\" "
          "text-anchor=\"middle\">"
       << std::defaultfloat << bars[i].value << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

std::string svg_line_chart(const std::vector<std::string>& x_labels,
                           const std::vector<Series>& series,
                           const SvgOptions& options) {
  std::ostringstream os;
  open_document(os, options);
  const Frame f = frame_of(options);

  double max_value = 1;
  for (const Series& s : series) {
    for (double v : s.values) max_value = std::max(max_value, v);
  }
  axes(os, f, max_value);

  const std::size_t columns = std::max<std::size_t>(2, x_labels.size());
  const double step = f.w / (columns - 1);

  for (std::size_t c = 0; c < x_labels.size(); ++c) {
    if (c % 2) continue;
    const double x = f.x0 + step * c;
    os << "<text x=\"" << x << "\" y=\"" << f.y0 + 16
       << "\" font-family=\"sans-serif\" font-size=\"10\" "
          "text-anchor=\"middle\">"
       << xml_escape(x_labels[c]) << "</text>\n";
  }

  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "<polyline fill=\"none\" stroke=\""
       << kPalette[si % kPalette.size()] << "\" stroke-width=\"2\" points=\"";
    for (std::size_t c = 0; c < series[si].values.size() &&
                            c < x_labels.size();
         ++c) {
      const double x = f.x0 + step * c;
      const double y = f.y0 - series[si].values[c] / max_value * f.h;
      os << x << ',' << y << ' ';
    }
    os << "\"/>\n";
    // Legend entry.
    const double ly = options.margin_top + 16.0 * si;
    os << "<rect x=\"" << f.x0 + f.w - 150 << "\" y=\"" << ly
       << "\" width=\"12\" height=\"12\" fill=\""
       << kPalette[si % kPalette.size()] << "\"/>\n";
    os << "<text x=\"" << f.x0 + f.w - 132 << "\" y=\"" << ly + 10
       << "\" font-family=\"sans-serif\" font-size=\"11\">"
       << xml_escape(series[si].name) << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace mpct::report
