#pragma once

#include <string>
#include <vector>

#include "report/chart.hpp"

namespace mpct::report {

/// Options shared by the SVG chart writers.
struct SvgOptions {
  int width = 900;
  int height = 420;
  int margin_left = 70;
  int margin_bottom = 90;
  int margin_top = 30;
  int margin_right = 20;
  std::string title;
};

/// Emit a self-contained SVG document with one vertical bar per entry
/// (Figure 7 rendering).  Labels are rotated under the axis.
std::string svg_bar_chart(const std::vector<Bar>& bars,
                          const SvgOptions& options = {});

/// Emit a self-contained SVG document with one polyline per series over
/// shared x labels (Figure 1 rendering), with legend.
std::string svg_line_chart(const std::vector<std::string>& x_labels,
                           const std::vector<Series>& series,
                           const SvgOptions& options = {});

/// XML-escape text for SVG attributes/content.
std::string xml_escape(const std::string& text);

}  // namespace mpct::report
