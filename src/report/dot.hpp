#pragma once

#include <string>

#include "core/hierarchy.hpp"

namespace mpct::report {

/// Render the Fig. 2 machine hierarchy as a Graphviz digraph.
std::string hierarchy_dot(const HierarchyNode& root);

/// Render the morphability partial order of the 43 named classes as a
/// Graphviz digraph (Hasse diagram: transitively implied edges and
/// self-loops are omitted; nodes are ranked by flexibility score).
std::string morph_dot();

}  // namespace mpct::report
