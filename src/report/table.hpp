#pragma once

#include <string>
#include <vector>

namespace mpct::report {

/// Column alignment for TextTable rendering.
enum class Align { Left, Right };

/// A simple text table renderer used by every bench binary to print the
/// regenerated paper tables in both ASCII (for terminals) and GitHub
/// markdown (for EXPERIMENTS.md).
class TextTable {
 public:
  /// Define the header row; alignments default to Left and may be set per
  /// column afterwards.
  explicit TextTable(std::vector<std::string> headers);

  /// Set a column's alignment (out-of-range indices are ignored).
  void set_align(std::size_t column, Align align);

  /// Append a data row.  Rows shorter than the header are padded with
  /// empty cells; longer rows are truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Append a full-width section banner row (rendered as a merged line).
  void add_section(std::string title);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  /// ASCII rendering with +---+ rules.
  std::string render_ascii() const;

  /// GitHub-flavoured markdown rendering (sections become bold rows).
  std::string render_markdown() const;

 private:
  struct Row {
    bool is_section = false;
    std::string section_title;
    std::vector<std::string> cells;
  };

  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace mpct::report
