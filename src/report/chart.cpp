#include "report/chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace mpct::report {

std::string render_bar_chart(const std::vector<Bar>& bars,
                             const BarChartOptions& options) {
  if (bars.empty()) return "";
  std::size_t label_width = 0;
  double max_value = 0;
  for (const Bar& bar : bars) {
    label_width = std::max(label_width, bar.label.size());
    max_value = std::max(max_value, bar.value);
  }
  std::ostringstream os;
  for (const Bar& bar : bars) {
    os << std::left << std::setw(static_cast<int>(label_width)) << bar.label
       << " |";
    const int cells =
        max_value <= 0
            ? 0
            : static_cast<int>(std::lround(bar.value / max_value *
                                           options.max_bar_width));
    os << std::string(static_cast<std::size_t>(std::max(0, cells)),
                      options.fill);
    if (options.show_value) {
      os << ' ' << std::defaultfloat << bar.value;
    }
    os << '\n';
  }
  return os.str();
}

std::string render_line_chart(const std::vector<std::string>& x_labels,
                              std::vector<Series> series,
                              const LineChartOptions& options) {
  if (x_labels.empty() || series.empty()) return "";
  const std::size_t columns = x_labels.size();
  double max_value = 1;
  for (Series& s : series) {
    s.values.resize(columns, 0.0);
    for (double v : s.values) max_value = std::max(max_value, v);
  }

  const int height = std::max(2, options.height);
  // grid[row][col]: row 0 is the top.
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(columns, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph =
        options.glyphs.empty()
            ? '*'
            : options.glyphs[si % options.glyphs.size()];
    for (std::size_t c = 0; c < columns; ++c) {
      const double v = series[si].values[c];
      if (v <= 0) continue;
      int row = height - 1 -
                static_cast<int>(std::lround(v / max_value * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][c] = glyph;
    }
  }

  std::ostringstream os;
  const int axis_width = 8;
  for (int r = 0; r < height; ++r) {
    const double level = max_value * (height - 1 - r) / (height - 1);
    os << std::right << std::setw(axis_width) << std::fixed
       << std::setprecision(0) << level << " |";
    // Stretch each column to two cells for readability.
    for (char c : grid[static_cast<std::size_t>(r)]) {
      os << c << ' ';
    }
    os << '\n';
  }
  os << std::string(axis_width, ' ') << " +" << std::string(columns * 2, '-')
     << '\n';
  // X labels, vertical-ish: print first/last plus every 4th.
  os << std::string(axis_width + 2, ' ');
  for (std::size_t c = 0; c < columns; ++c) {
    if (c % 4 == 0 && x_labels[c].size() >= 2) {
      os << x_labels[c].substr(x_labels[c].size() - 2);
    } else {
      os << "  ";
    }
  }
  os << '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph =
        options.glyphs.empty()
            ? '*'
            : options.glyphs[si % options.glyphs.size()];
    os << "  " << glyph << " = " << series[si].name << '\n';
  }
  return os.str();
}

}  // namespace mpct::report
