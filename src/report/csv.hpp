#pragma once

#include <string>
#include <vector>

namespace mpct::report {

/// RFC-4180-style CSV writer: fields containing separators, quotes or
/// newlines are quoted and embedded quotes doubled.  Used by benches to
/// dump the regenerated table/figure data next to the pretty print.
class CsvWriter {
 public:
  explicit CsvWriter(char separator = ',') : separator_(separator) {}

  void add_row(const std::vector<std::string>& cells);

  /// Serialise all rows added so far.
  const std::string& str() const { return out_; }

  /// Escape one field according to the writer's separator.
  static std::string escape(const std::string& field, char separator = ',');

 private:
  char separator_;
  std::string out_;
};

/// Parse a CSV document back into rows (handles quoted fields, doubled
/// quotes and embedded newlines); used by tests to round-trip.
std::vector<std::vector<std::string>> parse_csv(const std::string& text,
                                                char separator = ',');

}  // namespace mpct::report
