#include "arch/validate.hpp"

namespace mpct::arch {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Error:
      return "error";
    case Severity::Warning:
      return "warning";
    case Severity::Info:
      return "info";
  }
  return "?";
}

std::string Issue::to_string() const {
  return std::string(mpct::arch::to_string(severity)) + " [" + code + "] " +
         message;
}

namespace {

/// Compare a connectivity endpoint count against the declared component
/// count; only decidable when both are fixed numbers.
bool endpoint_mismatch(const Count& endpoint, const Count& declared) {
  if (endpoint.kind() != Count::Kind::Fixed ||
      declared.kind() != Count::Kind::Fixed) {
    return false;
  }
  return endpoint.value() != declared.value();
}

}  // namespace

std::vector<Issue> validate(const ArchitectureSpec& spec) {
  std::vector<Issue> issues;
  const auto add = [&](Severity sev, std::string code, std::string message) {
    issues.push_back({sev, std::move(code), std::move(message)});
  };

  const Multiplicity ips = spec.ips.multiplicity();
  const Multiplicity dps = spec.dps.multiplicity();

  if (dps == Multiplicity::Zero) {
    add(Severity::Error, "E_NO_PROCESSORS",
        "no data processors: the machine computes nothing");
  }

  if (ips == Multiplicity::Zero) {
    for (ConnectivityRole role : {ConnectivityRole::IpIp,
                                  ConnectivityRole::IpDp,
                                  ConnectivityRole::IpIm}) {
      if (spec.at(role).kind != SwitchKind::None) {
        add(Severity::Error, "E_IP_CONN_WITHOUT_IP",
            std::string(to_string(role)) +
                " connectivity declared but the machine has no IP");
      }
    }
  }

  if (spec.granularity == Granularity::IpDp &&
      (ips == Multiplicity::Variable || dps == Multiplicity::Variable)) {
    add(Severity::Error, "E_VARIABLE_NEEDS_LUT",
        "variable IP/DP counts require LUT granularity: only fabrics whose "
        "blocks are finer than an IP/DP can re-role them");
  }

  if (ips == Multiplicity::Many && dps == Multiplicity::One) {
    add(Severity::Error, "E_NI_SHAPE",
        "many instruction processors driving a single data processor is "
        "not implementable (Table I classes 11-14)");
  }

  if (ips == Multiplicity::One &&
      spec.at(ConnectivityRole::IpIp).kind != SwitchKind::None) {
    add(Severity::Error, "E_SELF_CONN_SINGLE",
        "IP-IP connectivity declared but there is only one IP");
  }
  if (dps == Multiplicity::One &&
      spec.at(ConnectivityRole::DpDp).kind != SwitchKind::None) {
    add(Severity::Error, "E_SELF_CONN_SINGLE",
        "DP-DP connectivity declared but there is only one DP");
  }

  if (spec.granularity == Granularity::Lut &&
      (ips != Multiplicity::Variable || dps != Multiplicity::Variable)) {
    add(Severity::Warning, "W_LUT_FIXED_COUNTS",
        "LUT-grained fabric with non-variable IP/DP counts: the point of "
        "fine granularity is that the counts vary on reconfiguration");
  }

  if (dps != Multiplicity::Zero &&
      spec.at(ConnectivityRole::DpDm).kind == SwitchKind::None) {
    add(Severity::Warning, "W_NO_MEMORY_PATH",
        "data processors have no path to data memory");
  }

  if (ips != Multiplicity::Zero &&
      spec.at(ConnectivityRole::IpDp).kind == SwitchKind::None) {
    add(Severity::Warning, "W_IP_WITHOUT_IPDP",
        "instruction processors present but not connected to any data "
        "processor");
  }
  if (ips != Multiplicity::Zero &&
      spec.at(ConnectivityRole::IpIm).kind == SwitchKind::None) {
    add(Severity::Warning, "W_IP_WITHOUT_IM",
        "instruction processors present but have no instruction memory "
        "path");
  }

  // Endpoint count consistency (informational: partial connectivity such
  // as ADRES's "8-1" DP-DM on a 64-DP fabric is real and intentional).
  const auto check_endpoints = [&](ConnectivityRole role, const Count& left,
                                   const Count& right) {
    const ConnectivityExpr& expr = spec.at(role);
    if (expr.kind == SwitchKind::None) return;
    if (endpoint_mismatch(expr.left, left)) {
      add(Severity::Info, "I_ENDPOINT_MISMATCH",
          std::string(to_string(role)) + " left endpoint count " +
              expr.left.to_string() + " differs from declared " +
              left.to_string() + " (partial connectivity)");
    }
    if (endpoint_mismatch(expr.right, right)) {
      add(Severity::Info, "I_ENDPOINT_MISMATCH",
          std::string(to_string(role)) + " right endpoint count " +
              expr.right.to_string() + " differs from declared " +
              right.to_string() + " (partial connectivity)");
    }
  };
  check_endpoints(ConnectivityRole::IpIp, spec.ips, spec.ips);
  check_endpoints(ConnectivityRole::IpDp, spec.ips, spec.dps);
  check_endpoints(ConnectivityRole::IpIm, spec.ips, spec.ips);
  // DP-DM right endpoints are memory-bank counts (Montium's "5x10"), so
  // only the left side is checked against the DP count.
  {
    const ConnectivityExpr& expr = spec.at(ConnectivityRole::DpDm);
    if (expr.kind != SwitchKind::None &&
        endpoint_mismatch(expr.left, spec.dps)) {
      add(Severity::Info, "I_ENDPOINT_MISMATCH",
          "DP-DM left endpoint count " + expr.left.to_string() +
              " differs from declared " + spec.dps.to_string() +
              " (partial connectivity)");
    }
  }
  check_endpoints(ConnectivityRole::DpDp, spec.dps, spec.dps);

  return issues;
}

bool is_valid(const ArchitectureSpec& spec) {
  for (const Issue& issue : validate(spec)) {
    if (issue.severity == Severity::Error) return false;
  }
  return true;
}

}  // namespace mpct::arch
