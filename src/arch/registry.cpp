#include "arch/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

namespace mpct::arch {

namespace {

/// Build one registry row from table-notation strings; throws on any
/// malformed cell so a transcription typo fails loudly at first use.
ArchitectureSpec row(std::string_view name, std::string_view citation,
                     int year, std::string_view category,
                     std::string_view ips, std::string_view dps,
                     std::string_view ip_ip, std::string_view ip_dp,
                     std::string_view ip_im, std::string_view dp_dm,
                     std::string_view dp_dp, std::string_view paper_name,
                     int paper_flexibility, std::string_view description,
                     Granularity granularity = Granularity::IpDp) {
  ArchitectureSpec spec;
  spec.name = std::string(name);
  spec.citation = std::string(citation);
  spec.year = year;
  spec.category = std::string(category);
  spec.description = std::string(description);
  spec.granularity = granularity;

  const auto count = [&](std::string_view text) {
    const std::optional<Count> c = Count::parse(text);
    if (!c) {
      throw std::invalid_argument("registry: bad count '" +
                                  std::string(text) + "' in row " +
                                  spec.name);
    }
    return *c;
  };
  const auto cell = [&](std::string_view text) {
    const std::optional<ConnectivityExpr> e = ConnectivityExpr::parse(text);
    if (!e) {
      throw std::invalid_argument("registry: bad connectivity '" +
                                  std::string(text) + "' in row " +
                                  spec.name);
    }
    return *e;
  };

  spec.ips = count(ips);
  spec.dps = count(dps);
  spec.at(ConnectivityRole::IpIp) = cell(ip_ip);
  spec.at(ConnectivityRole::IpDp) = cell(ip_dp);
  spec.at(ConnectivityRole::IpIm) = cell(ip_im);
  spec.at(ConnectivityRole::DpDm) = cell(dp_dm);
  spec.at(ConnectivityRole::DpDp) = cell(dp_dp);
  spec.paper_name = std::string(paper_name);
  spec.paper_flexibility = paper_flexibility;
  return spec;
}

std::vector<ArchitectureSpec> build_registry() {
  std::vector<ArchitectureSpec> rows;
  rows.reserve(25);

  rows.push_back(row(
      "ARM7TDMI", "[10]", 2001, "CPU", "1", "1", "none", "1-1", "1-1", "1-1",
      "none", "IUP", 0,
      "Classic three-stage RISC core: a single instruction processor "
      "directly driving a single data path — the instruction-flow "
      "uni-processor baseline with zero morphing flexibility."));
  rows.push_back(row(
      "AT89C51", "[11]", 1999, "MCU", "1", "1", "none", "1-1", "1-1", "1-1",
      "none", "IUP", 0,
      "8-bit 8051-family microcontroller with 4K flash; like the ARM7TDMI "
      "it is a fixed Von Neumann uni-processor (IUP)."));
  rows.push_back(row(
      "IMAGINE", "[12]", 2002, "Stream", "1", "6", "none", "1-6", "1-1",
      "6-1", "6x6", "IAP-II", 2,
      "Stream processor: a host IP controls 6 ALU clusters that connect to "
      "each other and a multi-ported stream register file through a "
      "circuit-switched network."));
  rows.push_back(row(
      "MorphoSys", "[13]", 1999, "CGRA", "1", "64", "none", "1-64", "1-1",
      "64-1", "64x64", "IAP-II", 2,
      "8x8 reconfigurable-cell fabric under a TinyRISC host; RC cells "
      "interconnect with each other and a frame buffer used for storage."));
  rows.push_back(row(
      "REMARC", "[14]", 1998, "CGRA", "1", "64", "none", "1-64", "1-1",
      "64-1", "64x64", "IAP-II", 2,
      "64 NANO processors in rows/columns with local instruction storage "
      "but a single global control unit providing the program counter."));
  rows.push_back(row(
      "RICA", "[8]", 2008, "CGRA", "1", "n", "none", "1-n", "1-1", "n-1",
      "nxn", "IAP-II", 2,
      "Reconfigurable Instruction Cell Array: a domain-tailored template "
      "of instruction cells loosely coupled to data memory through I/O "
      "ports and tightly coupled to a RISC controller."));
  rows.push_back(row(
      "PADDI", "[15]", 1992, "DSP", "1", "8", "none", "1-8", "1-8", "8-1",
      "8x8", "IAP-II", 2,
      "Eight execution units behind a crossbar, fed VLIW-style by a global "
      "instruction sequencer — rapid prototyping fabric for high-speed DSP "
      "data paths."));
  rows.push_back(row(
      "PACT XPP", "[16]", 2003, "CGRA", "n", "n", "none", "n-n", "n-n",
      "n-n", "nxn", "IMP-II", 2,
      "Self-reconfigurable packet-driven array of processing array "
      "elements; the paper prints flexibility 2 for this row although the "
      "IMP-II class scores 3 in Table II (known erratum)."));
  rows.push_back(row(
      "Chimaera", "[17]", 2004, "RFU", "1", "n", "none", "1-n", "1-1", "n-1",
      "nxn", "IAP-II", 2,
      "Reconfigurable functional unit of 2/3-input LUT rows coupled to a "
      "host register file through a shadow register file; the host "
      "processor controls the array."));
  rows.push_back(row(
      "ADRES", "[18]", 2005, "CGRA", "1", "64", "none", "1-64", "1-1", "8-1",
      "64x64", "IAP-II", 2,
      "VLIW host + 8x8 RC fabric template; the first RC row couples "
      "tightly to the multi-ported register file, the rest reach it only "
      "through a mux-based network."));
  rows.push_back(row(
      "Montium", "[19]", 2004, "CGRA", "1", "5", "none", "1-5", "1-1",
      "5x10", "5x5", "IAP-IV", 3,
      "Tile of 5 ALUs fully crossbar-connected to 10 memory banks; a "
      "sequencer drives data path, interconnect and memories VLIW-style."));
  rows.push_back(row(
      "GARP", "[20]", 2000, "CGRA", "1", "24n", "none", "1-24n", "1-1",
      "24nx1", "24nx24n", "IAP-IV", 3,
      "MIPS core tightly coupled to a fabric of rows of 23+1 2-bit logic "
      "elements that compose into wider data paths, loosely coupled to "
      "memory."));
  rows.push_back(row(
      "PipeRench", "[21], [22]", 1999, "CGRA", "1", "n", "none", "1-n",
      "1-1", "nx1", "nxn", "IAP-IV", 3,
      "Pipelined reconfiguration: stripes of PEs joined by horizontal and "
      "vertical buses under a single input controller with I/O FIFOs."));
  rows.push_back(row(
      "EGRA", "[23]", 2011, "CGRA", "1", "n", "none", "1-n", "1-1", "nxn",
      "nxn", "IAP-IV", 3,
      "Expression-grained template mixing ALU, multiplier and memory "
      "blocks in rows/columns joined by nearest-neighbour plus bus "
      "connectivity, under external control."));
  rows.push_back(row(
      "ELM", "[24]", 2008, "DSP", "1", "2", "none", "1-2", "1-1", "2x2",
      "2x2", "IAP-IV", 3,
      "Energy-efficient embedded processor whose ensemble of two ALUs "
      "reaches operand registers and memories through full switches."));
  rows.push_back(row(
      "PADDI-2", "[25]", 1995, "DSP", "48", "48", "none", "48-48", "48-48",
      "48-48", "48-48", "IMP-I", 2,
      "48 data-driven PEs, each with its own local control unit and local "
      "memory, joined by a hierarchical network — separate Von Neumann "
      "machines in the taxonomy's eyes."));
  rows.push_back(row(
      "Cortex-A9 (Quad core)", "[26]", 2009, "CPU", "4", "4", "none", "4-4",
      "4-4", "4-4", "none", "IMP-I", 2,
      "Four application cores working in parallel; each IP couples "
      "directly to its own data path and caches."));
  rows.push_back(row(
      "Core2Duo", "[27]", 2008, "CPU", "2", "2", "none", "2-2", "2-2", "2-2",
      "none", "IMP-I", 2,
      "Two x86 cores, each a fixed IP-DP pair — the desktop-CPU instance "
      "of IMP-I."));
  rows.push_back(row(
      "Pleiades", "[28]", 1997, "CGRA", "n", "n", "none", "n-n", "n-n",
      "n-1", "nxn", "IMP-II", 3,
      "Heterogeneous host + satellite processors joined by a "
      "circuit-switched network: the satellites interconnect flexibly, "
      "memory access stays direct."));
  rows.push_back(row(
      "RaPiD", "[29]", 1999, "CGRA", "n", "m", "none", "nxm", "nxn", "m-1",
      "mxm", "IMP-XIV", 5,
      "Linear array of functional units over a bus-based interconnect; "
      "instruction processors reach the FUs through the same kind of "
      "buses, which limits scalability."));
  rows.push_back(row(
      "REDEFINE", "[30]", 2009, "CGRA", "0", "64", "none", "none", "none",
      "22x1", "64x64", "DMP-IV", 3,
      "Static dataflow: HyperOps execute on an 8x8 fabric of compute "
      "elements joined by a packet-switched NoC; no instruction processor "
      "exists."));
  rows.push_back(row(
      "Colt", "[31]", 1996, "CGRA", "0", "16", "none", "none", "none",
      "16x6", "16x16", "DMP-IV", 3,
      "Wormhole run-time reconfiguration: a 4x4 crossbar-connected "
      "data-processing matrix where the data stream itself carries routing "
      "and configuration."));
  rows.push_back(row(
      "DRRA", "[32]", 2010, "CGRA", "n", "n", "nx14", "n-n", "n-n", "nx14",
      "nx14", "ISP-IV", 5,
      "Distributed control/memory/datapath template: every element reaches "
      "neighbours within a 3-hop window in both directions; control "
      "elements also talk to other control elements (IP-IP)."));
  rows.push_back(row(
      "MATRIX", "[33]", 1996, "CGRA", "n", "n", "nxn", "nxn", "nxn", "nxn",
      "nxn", "ISP-XVI", 7,
      "Every basic functional unit can serve as instruction or data "
      "storage, register file or datapath, over nearest-neighbour, "
      "length-4 bypass and global buses — but it cannot implement data "
      "flow, so it stays ISP, not USP."));
  rows.push_back(row(
      "FPGA", "[34]", 2011, "FPGA", "v", "v", "vxv", "vxv", "vxv", "vxv",
      "vxv", "USP", 8,
      "CLB-grain fabric: role of every block (IP, DP, IM, DM) is decided "
      "by configuration, so the counts themselves are variable — the "
      "universal spatial processor.",
      Granularity::Lut));

  return rows;
}

}  // namespace

std::span<const ArchitectureSpec> surveyed_architectures() {
  static const std::vector<ArchitectureSpec> registry = build_registry();
  return registry;
}

const ArchitectureSpec* find_architecture(std::string_view name) {
  const auto lower = [](std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return out;
  };
  const std::string needle = lower(name);
  for (const ArchitectureSpec& spec : surveyed_architectures()) {
    if (lower(spec.name) == needle) return &spec;
  }
  return nullptr;
}

int surveyed_count() {
  return static_cast<int>(surveyed_architectures().size());
}

}  // namespace mpct::arch
