#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "arch/spec.hpp"

namespace mpct::arch {

/// A diagnostic produced while parsing ADL text.
struct ParseError {
  int line = 0;  ///< 1-based source line
  std::string message;

  std::string to_string() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

/// Result of parsing an ADL document: the specs that parsed cleanly plus
/// every diagnostic encountered.  A document with errors still yields the
/// blocks that were well-formed, so tooling can report all problems in
/// one pass.
struct ParseResult {
  std::vector<ArchitectureSpec> specs;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

/// Parse the architecture description language.  Grammar (line oriented):
///
///   document    := { block }
///   block       := "architecture" name "{" { assignment } "}"
///   name        := bare-word | quoted-string
///   assignment  := key "=" value
///   key         := citation | year | category | granularity | ips | dps
///                | ip-ip | ip-dp | ip-im | dp-dm | dp-dp
///                | paper-name | paper-flexibility | description
///   value       := bare-word | quoted-string | integer
///
/// '#' starts a comment (outside quotes); blank lines are ignored;
/// granularity is "ip/dp" (default) or "lut"; connectivity values use the
/// paper's table notation ("none", "1-6", "64x64", "nx14", ...).
ParseResult parse_adl(std::string_view text);

/// Convenience: parse a document that must contain exactly one block.
/// Errors (including "zero blocks" / "more than one block") are reported
/// through the ParseResult.
ParseResult parse_single_adl(std::string_view text);

}  // namespace mpct::arch
