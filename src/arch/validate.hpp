#pragma once

#include <string>
#include <vector>

#include "arch/spec.hpp"

namespace mpct::arch {

/// Severity of a validation finding.
enum class Severity : std::uint8_t {
  Error,    ///< the structure is not a valid machine
  Warning,  ///< legal but suspicious (likely a transcription mistake)
  Info,     ///< noteworthy but common in real survey rows
};

std::string_view to_string(Severity s);

/// One validation finding with a stable machine-readable code.
struct Issue {
  Severity severity = Severity::Info;
  std::string code;     ///< e.g. "E_NI_SHAPE"
  std::string message;  ///< human explanation

  std::string to_string() const;
};

/// Structural lint of an architecture spec.  Error-level findings mean
/// classify() will refuse or the machine cannot compute:
///  * E_NO_PROCESSORS  — zero DPs (and for data flow, nothing at all)
///  * E_IP_CONN_WITHOUT_IP — IP-side connectivity but ips = 0
///  * E_VARIABLE_NEEDS_LUT — 'v' counts on a coarse-grained fabric
///  * E_NI_SHAPE       — many IPs driving one DP (Table I classes 11-14)
///  * E_SELF_CONN_SINGLE — self-connectivity (IP-IP/DP-DP) declared on a
///    set with fewer than two members
/// Warnings and infos flag shapes that occur in practice but deserve a
/// look (LUT fabric with fixed counts, DPs without any memory path,
/// connectivity endpoint counts that disagree with the declared ips/dps —
/// the ADRES and REDEFINE rows legitimately do the latter).
std::vector<Issue> validate(const ArchitectureSpec& spec);

/// True if validate() reports no Error-level issue.
bool is_valid(const ArchitectureSpec& spec);

}  // namespace mpct::arch
