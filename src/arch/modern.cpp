#include "arch/modern.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

namespace mpct::arch {

namespace {

ArchitectureSpec style(std::string_view name, int year,
                       std::string_view category, std::string_view ips,
                       std::string_view dps, std::string_view ip_ip,
                       std::string_view ip_dp, std::string_view ip_im,
                       std::string_view dp_dm, std::string_view dp_dp,
                       std::string_view description,
                       Granularity granularity = Granularity::IpDp) {
  ArchitectureSpec spec;
  spec.name = std::string(name);
  spec.citation = "[style]";
  spec.year = year;
  spec.category = std::string(category);
  spec.description = std::string(description);
  spec.granularity = granularity;
  const auto count = [&](std::string_view text) {
    const auto c = Count::parse(text);
    if (!c) throw std::invalid_argument("modern: bad count");
    return *c;
  };
  const auto cell = [&](std::string_view text) {
    const auto e = ConnectivityExpr::parse(text);
    if (!e) throw std::invalid_argument("modern: bad cell");
    return *e;
  };
  spec.ips = count(ips);
  spec.dps = count(dps);
  spec.at(ConnectivityRole::IpIp) = cell(ip_ip);
  spec.at(ConnectivityRole::IpDp) = cell(ip_dp);
  spec.at(ConnectivityRole::IpIm) = cell(ip_im);
  spec.at(ConnectivityRole::DpDm) = cell(dp_dm);
  spec.at(ConnectivityRole::DpDp) = cell(dp_dp);
  return spec;
}

std::vector<ArchitectureSpec> build() {
  std::vector<ArchitectureSpec> out;
  out.push_back(style(
      "SIMT GPU SM", 2016, "GPU", "1", "32", "none", "1-32", "1-1",
      "32x32", "32x32",
      "A streaming multiprocessor: one warp scheduler broadcasting to 32 "
      "lanes; banked shared memory reachable from any lane (DP-DM "
      "crossbar) and warp-shuffle lane exchange (DP-DP crossbar)."));
  out.push_back(style(
      "Systolic MXU", 2017, "NPU", "1", "256", "none", "1-256", "1-1",
      "256-1", "256-256",
      "A weight-stationary systolic matrix unit: one controller, a fixed "
      "nearest-neighbour pipe between MACs (direct DP-DP, no switch), "
      "edge-fed memory.  Classifies IAP-I — minimum flexibility is the "
      "price of its efficiency."));
  out.push_back(style(
      "Vector lanes", 2020, "CPU-V", "1", "n", "none", "1-n", "1-1",
      "nxn", "n-n",
      "A classic vector unit with gather/scatter: lanes address any "
      "memory bank (DP-DM crossbar) but exchange only through memory."));
  out.push_back(style(
      "Mesh manycore", 2014, "CPU", "64", "64", "none", "64-64", "64-64",
      "64x64", "64x64",
      "A tiled manycore with a shared address space over a NoC: every "
      "core reaches every bank and every other core's data."));
  out.push_back(style(
      "Spatial dataflow RDU", 2021, "Accelerator", "n", "n", "nxn", "n-n",
      "n-n", "nxn", "nxn",
      "A reconfigurable-dataflow accelerator: distributed sequencers "
      "compose across the fabric (IP-IP switch) — the spatial-processing "
      "classes the paper's extension introduced."));
  out.push_back(style(
      "Embedded FPGA fabric", 2018, "FPGA", "v", "v", "vxv", "vxv", "vxv",
      "vxv", "vxv",
      "An eFPGA tile: LUT-grain blocks with variable roles — the "
      "universal spatial processor, unchanged since the paper.",
      Granularity::Lut));
  return out;
}

}  // namespace

std::span<const ArchitectureSpec> modern_examples() {
  static const std::vector<ArchitectureSpec> examples = build();
  return examples;
}

const ArchitectureSpec* find_modern_example(std::string_view name) {
  const auto lower = [](std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return out;
  };
  const std::string needle = lower(name);
  for (const ArchitectureSpec& spec : modern_examples()) {
    if (lower(spec.name) == needle) return &spec;
  }
  return nullptr;
}

}  // namespace mpct::arch
