#pragma once

#include <array>
#include <optional>
#include <string>

#include "arch/connectivity_expr.hpp"
#include "arch/count.hpp"
#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "core/machine_class.hpp"

namespace mpct::arch {

/// Full structural description of a concrete architecture — one row of
/// the survey (Table III), or a user-defined design being evaluated
/// against the taxonomy.
struct ArchitectureSpec {
  std::string name;         ///< e.g. "MorphoSys"
  std::string citation;     ///< e.g. "[13]" (paper reference index)
  std::string description;  ///< prose summary (Section IV text)
  int year = 0;             ///< publication year, 0 if unknown
  /// Coarse category for reporting: "CPU", "MCU", "CGRA", "FPGA", "DSP".
  std::string category;

  Granularity granularity = Granularity::IpDp;
  Count ips;
  Count dps;
  /// Connectivity cells indexed by ConnectivityRole order
  /// (IP-IP, IP-DP, IP-IM, DP-DM, DP-DP).
  std::array<ConnectivityExpr, kConnectivityRoleCount> connectivity{};

  /// Values as printed in the paper's Table III, retained so benches can
  /// show paper-vs-computed (the PACT XPP row is a known erratum).
  std::optional<std::string> paper_name;
  std::optional<int> paper_flexibility;

  const ConnectivityExpr& at(ConnectivityRole role) const {
    return connectivity[static_cast<std::size_t>(role)];
  }
  ConnectivityExpr& at(ConnectivityRole role) {
    return connectivity[static_cast<std::size_t>(role)];
  }

  /// Reduce the concrete structure to its abstract taxonomy class.
  MachineClass machine_class() const;

  /// Classify (taxonomic name, or NI/unclassifiable diagnosis).
  Classification classify() const;

  /// Flexibility score of the reduced class.
  FlexibilityBreakdown flexibility() const;

  friend bool operator==(const ArchitectureSpec&,
                         const ArchitectureSpec&) = default;
};

/// Serialise a spec in the ADL text format understood by adl_parser.
std::string to_adl(const ArchitectureSpec& spec);

}  // namespace mpct::arch
