#include "arch/template_spec.hpp"

#include "core/classifier.hpp"

namespace mpct::arch {

namespace {

Count count_for(Multiplicity mult, std::int64_t n) {
  switch (mult) {
    case Multiplicity::Zero:
      return Count::fixed(0);
    case Multiplicity::One:
      return Count::fixed(1);
    case Multiplicity::Many:
      return Count::fixed(n);
    case Multiplicity::Variable:
      return Count::variable();
  }
  return Count::fixed(0);
}

}  // namespace

std::optional<ArchitectureSpec> spec_from_class(const TaxonomicName& name,
                                                std::int64_t n) {
  const std::optional<MachineClass> mc = canonical_class(name);
  if (!mc || n < 2) return std::nullopt;

  ArchitectureSpec spec;
  spec.name = to_string(name) + "-template";
  spec.citation = "[template]";
  spec.category = "template";
  spec.granularity = mc->granularity;
  spec.ips = count_for(mc->ips, n);
  spec.dps = count_for(mc->dps, n);
  spec.description = "canonical " + to_string(name) +
                     " structure instantiated at N = " + std::to_string(n);

  const auto endpoint_counts = [&](ConnectivityRole role) {
    switch (role) {
      case ConnectivityRole::IpIp:
      case ConnectivityRole::IpIm:
        return std::make_pair(spec.ips, spec.ips);
      case ConnectivityRole::IpDp:
        return std::make_pair(spec.ips, spec.dps);
      case ConnectivityRole::DpDm:
      case ConnectivityRole::DpDp:
        return std::make_pair(spec.dps, spec.dps);
    }
    return std::make_pair(spec.ips, spec.dps);
  };
  for (ConnectivityRole role : kAllConnectivityRoles) {
    const SwitchKind kind = mc->switch_at(role);
    if (kind == SwitchKind::None) {
      spec.at(role) = ConnectivityExpr::none();
      continue;
    }
    const auto [left, right] = endpoint_counts(role);
    spec.at(role) = kind == SwitchKind::Crossbar
                        ? ConnectivityExpr::crossbar(left, right)
                        : ConnectivityExpr::direct(left, right);
  }
  return spec;
}

}  // namespace mpct::arch
