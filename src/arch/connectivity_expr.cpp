#include "arch/connectivity_expr.hpp"

#include <algorithm>
#include <cctype>

namespace mpct::arch {

std::string ConnectivityExpr::to_string() const {
  if (kind == SwitchKind::None) return "none";
  const char sep = kind == SwitchKind::Crossbar ? 'x' : '-';
  return left.to_string() + sep + right.to_string();
}

std::optional<ConnectivityExpr> ConnectivityExpr::parse(
    std::string_view text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) {
                   return static_cast<char>(std::tolower(c));
                 });
  if (lower == "none") return ConnectivityExpr::none();

  // Try every occurrence of a separator character; a split is valid when
  // both sides parse as counts.  This disambiguates "24nx24n" (split at
  // the 'x', not inside a count) and rejects garbage like "x64" or "n--".
  for (std::size_t pos = 1; pos + 1 < lower.size(); ++pos) {
    const char c = lower[pos];
    if (c != 'x' && c != '-') continue;
    const std::optional<Count> lhs = Count::parse(lower.substr(0, pos));
    const std::optional<Count> rhs = Count::parse(lower.substr(pos + 1));
    if (lhs && rhs) {
      const SwitchKind kind =
          c == 'x' ? SwitchKind::Crossbar : SwitchKind::Direct;
      return ConnectivityExpr{kind, *lhs, *rhs};
    }
  }
  return std::nullopt;
}

}  // namespace mpct::arch
