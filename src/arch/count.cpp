#include "arch/count.hpp"

#include <cctype>

namespace mpct::arch {

Count Count::fixed(std::int64_t value) {
  Count c;
  c.kind_ = Kind::Fixed;
  c.value_ = value;
  return c;
}

Count Count::symbolic(char symbol) {
  Count c;
  c.kind_ = Kind::Symbolic;
  c.symbol_ = symbol;
  return c;
}

Count Count::scaled_symbolic(std::int64_t factor, char symbol) {
  Count c;
  c.kind_ = Kind::ScaledSymbolic;
  c.value_ = factor;
  c.symbol_ = symbol;
  return c;
}

Count Count::variable() {
  Count c;
  c.kind_ = Kind::Variable;
  return c;
}

Multiplicity Count::multiplicity() const {
  switch (kind_) {
    case Kind::Fixed:
      if (value_ == 0) return Multiplicity::Zero;
      if (value_ == 1) return Multiplicity::One;
      return Multiplicity::Many;
    case Kind::Symbolic:
    case Kind::ScaledSymbolic:
      // Symbolic constants denote template sizes chosen at design time;
      // the paper keeps them as 'n', i.e. many.
      return Multiplicity::Many;
    case Kind::Variable:
      return Multiplicity::Variable;
  }
  return Multiplicity::Zero;
}

std::optional<std::int64_t> Count::evaluate(
    const std::map<char, std::int64_t>& bindings) const {
  switch (kind_) {
    case Kind::Fixed:
      return value_;
    case Kind::Symbolic: {
      const auto it = bindings.find(symbol_);
      if (it == bindings.end()) return std::nullopt;
      return it->second;
    }
    case Kind::ScaledSymbolic: {
      const auto it = bindings.find(symbol_);
      if (it == bindings.end()) return std::nullopt;
      return value_ * it->second;
    }
    case Kind::Variable:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string Count::to_string() const {
  switch (kind_) {
    case Kind::Fixed:
      return std::to_string(value_);
    case Kind::Symbolic:
      return std::string(1, symbol_);
    case Kind::ScaledSymbolic:
      return std::to_string(value_) + std::string(1, symbol_);
    case Kind::Variable:
      return "v";
  }
  return "?";
}

std::optional<Count> Count::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  const auto is_symbol = [](char c) {
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return lower == 'n' || lower == 'm' || lower == 'v';
  };

  // Pure symbol.
  if (text.size() == 1 && is_symbol(text[0])) {
    const char lower =
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[0])));
    return lower == 'v' ? variable() : symbolic(lower);
  }

  // Leading digits, optionally followed by one symbol letter ("24n").
  std::size_t i = 0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == 0) return std::nullopt;  // no digits and not a pure symbol
  std::int64_t number = 0;
  for (std::size_t j = 0; j < i; ++j) {
    number = number * 10 + (text[j] - '0');
    if (number > 1'000'000'000) return std::nullopt;  // implausible count
  }
  if (i == text.size()) return fixed(number);
  if (i + 1 == text.size() && is_symbol(text[i])) {
    const char lower =
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
    if (lower == 'v') return std::nullopt;  // "24v" is not a thing
    if (number == 0) return std::nullopt;
    return scaled_symbolic(number, lower);
  }
  return std::nullopt;
}

}  // namespace mpct::arch
