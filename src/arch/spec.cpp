#include "arch/spec.hpp"

#include <sstream>

namespace mpct::arch {

MachineClass ArchitectureSpec::machine_class() const {
  MachineClass mc;
  mc.granularity = granularity;
  mc.ips = ips.multiplicity();
  mc.dps = dps.multiplicity();
  for (ConnectivityRole role : kAllConnectivityRoles) {
    mc.set_switch(role, at(role).kind);
  }
  return mc;
}

Classification ArchitectureSpec::classify() const {
  return mpct::classify(machine_class());
}

FlexibilityBreakdown ArchitectureSpec::flexibility() const {
  return mpct::flexibility(machine_class());
}

std::string to_adl(const ArchitectureSpec& spec) {
  std::ostringstream os;
  os << "architecture \"" << spec.name << "\" {\n";
  if (!spec.citation.empty()) os << "  citation = \"" << spec.citation << "\"\n";
  if (spec.year != 0) os << "  year = " << spec.year << "\n";
  if (!spec.category.empty())
    os << "  category = \"" << spec.category << "\"\n";
  os << "  granularity = "
     << (spec.granularity == Granularity::Lut ? "lut" : "ip/dp") << "\n";
  os << "  ips = " << spec.ips.to_string() << "\n";
  os << "  dps = " << spec.dps.to_string() << "\n";
  for (ConnectivityRole role : kAllConnectivityRoles) {
    std::string key(to_string(role));
    for (char& c : key) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    os << "  " << key << " = " << spec.at(role).to_string() << "\n";
  }
  if (spec.paper_name) os << "  paper-name = \"" << *spec.paper_name << "\"\n";
  if (spec.paper_flexibility)
    os << "  paper-flexibility = " << *spec.paper_flexibility << "\n";
  if (!spec.description.empty())
    os << "  description = \"" << spec.description << "\"\n";
  os << "}\n";
  return os.str();
}

}  // namespace mpct::arch
