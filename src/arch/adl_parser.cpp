#include "arch/adl_parser.hpp"

#include <cctype>
#include <optional>

namespace mpct::arch {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strip a '#' comment, respecting double-quoted strings.
std::string_view strip_comment(std::string_view line) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quotes = !in_quotes;
    if (line[i] == '#' && !in_quotes) return line.substr(0, i);
  }
  return line;
}

/// Remove surrounding quotes if present; returns nullopt for an
/// unterminated quote.
std::optional<std::string> unquote(std::string_view token) {
  if (token.size() >= 1 && token.front() == '"') {
    if (token.size() < 2 || token.back() != '"') return std::nullopt;
    return std::string(token.substr(1, token.size() - 2));
  }
  return std::string(token);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    while (next_line()) {
      const std::string_view line = trim(strip_comment(current_));
      if (line.empty()) continue;
      parse_block_header(line);
    }
    if (in_block_) {
      error("unterminated architecture block for '" + spec_.name + "'");
    }
    return std::move(result_);
  }

 private:
  void parse_block_header(std::string_view line) {
    if (in_block_) {
      if (line == "}") {
        finish_block();
        return;
      }
      parse_assignment(line);
      return;
    }
    constexpr std::string_view kKeyword = "architecture";
    if (line.substr(0, kKeyword.size()) != kKeyword) {
      error("expected 'architecture <name> {', got '" + std::string(line) +
            "'");
      return;
    }
    std::string_view rest = trim(line.substr(kKeyword.size()));
    if (rest.empty() || rest.back() != '{') {
      error("architecture header must end with '{'");
      return;
    }
    rest = trim(rest.substr(0, rest.size() - 1));
    const std::optional<std::string> name = unquote(rest);
    if (!name || name->empty()) {
      error("architecture needs a name");
      return;
    }
    spec_ = ArchitectureSpec{};
    spec_.name = *name;
    in_block_ = true;
    block_ok_ = true;
    saw_ips_ = saw_dps_ = false;
  }

  void parse_assignment(std::string_view line) {
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      block_error("expected 'key = value', got '" + std::string(line) + "'");
      return;
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string_view raw_value = trim(line.substr(eq + 1));
    const std::optional<std::string> value = unquote(raw_value);
    if (!value) {
      block_error("unterminated string in value for '" + key + "'");
      return;
    }

    if (key == "citation") {
      spec_.citation = *value;
    } else if (key == "description") {
      spec_.description = *value;
    } else if (key == "category") {
      spec_.category = *value;
    } else if (key == "paper-name") {
      spec_.paper_name = *value;
    } else if (key == "year") {
      if (const auto v = parse_int(*value)) {
        spec_.year = *v;
      } else {
        block_error("year must be an integer, got '" + *value + "'");
      }
    } else if (key == "paper-flexibility") {
      if (const auto v = parse_int(*value)) {
        spec_.paper_flexibility = *v;
      } else {
        block_error("paper-flexibility must be an integer, got '" + *value +
                    "'");
      }
    } else if (key == "granularity") {
      if (*value == "lut" || *value == "LUT" || *value == "luts") {
        spec_.granularity = Granularity::Lut;
      } else if (*value == "ip/dp" || *value == "coarse") {
        spec_.granularity = Granularity::IpDp;
      } else {
        block_error("granularity must be 'ip/dp' or 'lut', got '" + *value +
                    "'");
      }
    } else if (key == "ips") {
      if (const auto c = Count::parse(*value)) {
        spec_.ips = *c;
        saw_ips_ = true;
      } else {
        block_error("bad count for ips: '" + *value + "'");
      }
    } else if (key == "dps") {
      if (const auto c = Count::parse(*value)) {
        spec_.dps = *c;
        saw_dps_ = true;
      } else {
        block_error("bad count for dps: '" + *value + "'");
      }
    } else if (const auto role = connectivity_role_from_string(key)) {
      if (const auto expr = ConnectivityExpr::parse(*value)) {
        spec_.at(*role) = *expr;
      } else {
        block_error("bad connectivity cell for " + key + ": '" + *value +
                    "'");
      }
    } else {
      block_error("unknown key '" + key + "'");
    }
  }

  void finish_block() {
    in_block_ = false;
    if (!saw_ips_) block_error("missing required key 'ips'");
    if (!saw_dps_) block_error("missing required key 'dps'");
    if (block_ok_) result_.specs.push_back(std::move(spec_));
  }

  static std::optional<int> parse_int(std::string_view s) {
    if (s.empty()) return std::nullopt;
    bool negative = false;
    std::size_t i = 0;
    if (s[0] == '-') {
      negative = true;
      i = 1;
      if (s.size() == 1) return std::nullopt;
    }
    long long v = 0;
    for (; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
      v = v * 10 + (s[i] - '0');
      if (v > 1'000'000'000) return std::nullopt;
    }
    return static_cast<int>(negative ? -v : v);
  }

  bool next_line() {
    if (pos_ >= text_.size()) return false;
    const std::size_t end = text_.find('\n', pos_);
    if (end == std::string_view::npos) {
      current_ = text_.substr(pos_);
      pos_ = text_.size();
    } else {
      current_ = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
    }
    ++line_no_;
    return true;
  }

  void error(std::string message) {
    result_.errors.push_back({line_no_, std::move(message)});
  }
  void block_error(std::string message) {
    block_ok_ = false;
    error(std::move(message));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string_view current_;
  int line_no_ = 0;

  ParseResult result_;
  ArchitectureSpec spec_;
  bool in_block_ = false;
  bool block_ok_ = true;
  bool saw_ips_ = false;
  bool saw_dps_ = false;
};

}  // namespace

ParseResult parse_adl(std::string_view text) { return Parser(text).run(); }

ParseResult parse_single_adl(std::string_view text) {
  ParseResult result = parse_adl(text);
  if (result.specs.empty() && result.errors.empty()) {
    result.errors.push_back({0, "document contains no architecture block"});
  } else if (result.specs.size() > 1) {
    result.errors.push_back(
        {0, "expected exactly one architecture block, found " +
                std::to_string(result.specs.size())});
  }
  return result;
}

}  // namespace mpct::arch
