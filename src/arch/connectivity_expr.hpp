#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "arch/count.hpp"
#include "core/connectivity.hpp"

namespace mpct::arch {

/// A concrete connectivity cell of a survey row: the switch kind plus the
/// endpoint counts, so that "64x64", "1-6", "5x10", "nx14" and "none"
/// round-trip exactly as printed in Table III.
struct ConnectivityExpr {
  SwitchKind kind = SwitchKind::None;
  Count left;   ///< e.g. 5 in "5x10"
  Count right;  ///< e.g. 10 in "5x10"

  static ConnectivityExpr none() { return {}; }
  static ConnectivityExpr direct(Count left, Count right) {
    return {SwitchKind::Direct, std::move(left), std::move(right)};
  }
  static ConnectivityExpr crossbar(Count left, Count right) {
    return {SwitchKind::Crossbar, std::move(left), std::move(right)};
  }

  /// Table notation: "none", "1-6", "64x64".
  std::string to_string() const;

  /// Parse table notation.  The separator decides the kind: 'x' is a
  /// crossbar, '-' a direct link.  Both operands must parse as counts;
  /// for cells like "24nx24n" the parser resolves the ambiguity between
  /// separator and symbol letters by trying every candidate split.
  static std::optional<ConnectivityExpr> parse(std::string_view text);

  friend bool operator==(const ConnectivityExpr&,
                         const ConnectivityExpr&) = default;
};

}  // namespace mpct::arch
