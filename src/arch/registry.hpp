#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "arch/spec.hpp"

namespace mpct::arch {

/// The 25 architectures surveyed in Table III of the paper, in row order:
/// uni-processors (ARM7TDMI, AT89C51), the IAP-II CGRAs (IMAGINE,
/// MorphoSys, REMARC, RICA, PADDI, Chimaera, ADRES), PACT XPP, the IAP-IV
/// CGRAs (Montium, GARP, PipeRench, EGRA, ELM), the IMP machines
/// (PADDI-2, Cortex-A9, Core2Duo, Pleiades, RaPiD), the data-flow fabrics
/// (REDEFINE, Colt), the spatial processors (DRRA, MATRIX) and FPGA.
///
/// Each entry carries the exact counts/connectivity cells of the table,
/// the name and flexibility value the paper printed (for
/// paper-vs-computed reporting), and a prose description from Section IV.
///
/// Thread safety: the registry is a function-local static built on first
/// call (Meyers singleton — initialisation is race-free per [stmt.dcl]/4
/// since C++11) and never mutated afterwards.  Concurrent readers,
/// including service::QueryEngine workers, may call this and the lookup
/// functions below freely without synchronisation.
std::span<const ArchitectureSpec> surveyed_architectures();

/// Find a surveyed architecture by (case-insensitive) name; nullptr if
/// absent.
const ArchitectureSpec* find_architecture(std::string_view name);

/// Number of surveyed rows (25).
int surveyed_count();

}  // namespace mpct::arch
