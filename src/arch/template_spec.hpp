#pragma once

#include <optional>

#include "arch/spec.hpp"
#include "core/naming.hpp"

namespace mpct::arch {

/// Materialise a concrete architecture template from a taxonomic class —
/// the bridge from "the explorer recommended IAP-IV" to an editable ADL
/// description a designer can refine.
///
/// The generated spec uses the canonical connectivity of the class with
/// @p n substituted for every 'n' (and a matching LUT pool for the
/// universal class), named "<class>-template".  Returns std::nullopt
/// for non-canonical names.
std::optional<ArchitectureSpec> spec_from_class(const TaxonomicName& name,
                                                std::int64_t n = 16);

}  // namespace mpct::arch
