#pragma once

#include <span>
#include <string_view>

#include "arch/spec.hpp"

namespace mpct::arch {

/// Illustrative *modern* design points (a library addition, not part of
/// the paper's Table III): the dominant accelerator styles of the
/// post-2012 decade, described structurally and classified with the
/// same machinery.  Interesting outcomes:
///  * a SIMT GPU streaming multiprocessor is an IAP-IV (warp shuffle =
///    DP-DP crossbar, banked shared memory = DP-DM crossbar);
///  * a systolic matrix unit is an IAP-I — the *least* flexible
///    parallel class, which is exactly why it is so efficient;
///  * a mesh manycore is an IMP-IV; a spatial dataflow accelerator is
///    an ISP-class machine, validating the paper's prediction that the
///    IP-IP extension would be needed for future architectures.
///
/// Thread safety: backed by a function-local static built once (Meyers
/// singleton) and read-only afterwards; safe for concurrent readers.
std::span<const ArchitectureSpec> modern_examples();

/// Find a modern example by (case-insensitive) name; nullptr if absent.
const ArchitectureSpec* find_modern_example(std::string_view name);

}  // namespace mpct::arch
