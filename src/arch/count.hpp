#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/multiplicity.hpp"

namespace mpct::arch {

/// A concrete component count as it appears in an architecture survey row
/// (Table III): a fixed number ("64"), a symbolic design-time constant
/// ("n", "m" — template architectures whose size is chosen at
/// instantiation), a scaled symbolic product ("24n" for GARP's rows of 24
/// logic elements), or "v" — a variable count that changes on
/// reconfiguration (FPGA).
class Count {
 public:
  enum class Kind : std::uint8_t { Fixed, Symbolic, ScaledSymbolic, Variable };

  /// Default: the fixed count 0.
  Count() = default;

  static Count fixed(std::int64_t value);
  static Count symbolic(char symbol = 'n');
  static Count scaled_symbolic(std::int64_t factor, char symbol = 'n');
  static Count variable();

  Kind kind() const { return kind_; }
  /// Fixed value (only meaningful for Kind::Fixed).
  std::int64_t value() const { return value_; }
  /// Symbol letter (Kind::Symbolic / ScaledSymbolic), e.g. 'n'.
  char symbol() const { return symbol_; }
  /// Scale factor (Kind::ScaledSymbolic), e.g. 24 in "24n".
  std::int64_t factor() const { return value_; }

  /// Reduce to the abstract taxonomy multiplicity: 0 -> Zero, 1 -> One,
  /// any larger fixed value or any symbolic form -> Many, v -> Variable.
  Multiplicity multiplicity() const;

  /// Evaluate to a concrete number given bindings for the symbolic
  /// constants (e.g. {{'n', 8}}).  Fixed counts ignore the bindings;
  /// Variable counts and unbound symbols yield std::nullopt.
  std::optional<std::int64_t> evaluate(
      const std::map<char, std::int64_t>& bindings = {}) const;

  /// Table notation: "64", "n", "24n", "v".
  std::string to_string() const;

  /// Parse table notation (case-insensitive symbols). Accepts "0", "1",
  /// "64", "n", "m", "v", "24n".  Rejects empty strings, negative
  /// numbers and malformed products.
  static std::optional<Count> parse(std::string_view text);

  friend bool operator==(const Count&, const Count&) = default;

 private:
  Kind kind_ = Kind::Fixed;
  std::int64_t value_ = 0;  ///< fixed value, or scale factor when scaled
  char symbol_ = 'n';
};

}  // namespace mpct::arch
