#pragma once

/// Umbrella header: the whole public API of the mpct library.
///
/// Subsystem headers remain individually includable; this exists for
/// quick experiments and downstream projects that prefer one include.

// Taxonomy core (the paper's primary contribution).
#include "core/classifier.hpp"
#include "core/comparison.hpp"
#include "core/connectivity.hpp"
#include "core/flexibility.hpp"
#include "core/flynn.hpp"
#include "core/hierarchy.hpp"
#include "core/machine_class.hpp"
#include "core/multiplicity.hpp"
#include "core/naming.hpp"
#include "core/roman.hpp"
#include "core/taxonomy_table.hpp"

// Concrete architecture descriptions and the survey registries.
#include "arch/adl_parser.hpp"
#include "arch/connectivity_expr.hpp"
#include "arch/count.hpp"
#include "arch/modern.hpp"
#include "arch/registry.hpp"
#include "arch/spec.hpp"
#include "arch/template_spec.hpp"
#include "arch/validate.hpp"

// Predictive cost models (Eq. 1 / Eq. 2 and extensions).
#include "cost/area_model.hpp"
#include "cost/component_library.hpp"
#include "cost/config_bits.hpp"
#include "cost/config_map.hpp"
#include "cost/energy.hpp"
#include "cost/switch_cost.hpp"
#include "cost/technology.hpp"

// Design-space exploration.
#include "explore/recommend.hpp"
#include "explore/upgrade.hpp"

// Executable interconnect substrates.
#include "interconnect/benes.hpp"
#include "interconnect/bus.hpp"
#include "interconnect/crossbar.hpp"
#include "interconnect/hierarchical.hpp"
#include "interconnect/mesh_noc.hpp"
#include "interconnect/neighbor.hpp"
#include "interconnect/network.hpp"
#include "interconnect/omega.hpp"
#include "interconnect/traffic.hpp"

// Paradigm machine simulators.
#include "sim/cgra/cgra.hpp"
#include "sim/cgra/pipeline.hpp"
#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/expr_parser.hpp"
#include "sim/dataflow/graph.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/isa/isa.hpp"
#include "sim/isa/uniprocessor.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/morph.hpp"
#include "sim/simd/array_processor.hpp"
#include "sim/spatial/fabric.hpp"
#include "sim/spatial/mapper.hpp"
#include "sim/spatial/netlist.hpp"
#include "sim/word.hpp"

// Portable workload IR + per-paradigm lowerings + simulation runner.
#include "workload/lowering.hpp"
#include "workload/runner.hpp"
#include "workload/workload.hpp"

// Bibliometrics (Figure 1 substitute).
#include "bibliometrics/corpus.hpp"
#include "bibliometrics/query.hpp"
#include "bibliometrics/topics.hpp"
#include "bibliometrics/trends.hpp"

// Reporting.
#include "report/chart.hpp"
#include "report/csv.hpp"
#include "report/dot.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"

// Concurrent query serving (batching, caching, metrics).
#include "service/service.hpp"

// Structured tracing + exporters (docs/OBSERVABILITY.md).
#include "trace/chrome_trace.hpp"
#include "trace/prometheus.hpp"
#include "trace/trace.hpp"

// Wire protocol + TCP serving (docs/NET.md).
#include "net/net.hpp"
#include "wire/wire.hpp"

// Multi-server fleet: consistent-hash routing, health/failover/hedging,
// combining proxy (docs/CLUSTER.md).
#include "cluster/cluster.hpp"
