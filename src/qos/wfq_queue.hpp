#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "qos/priority.hpp"

namespace mpct::qos {

/// Per-class dispatch weights for the weighted-fair queue.  A weight is
/// the number of items a class may dequeue in one deficit-round-robin
/// visit while other classes have work waiting; zero is clamped to one
/// (a zero-weight class would never drain).
struct WfqWeights {
  std::uint32_t interactive = 8;
  std::uint32_t batch = 3;
  std::uint32_t background = 1;

  std::uint32_t of(PriorityClass cls) const {
    switch (cls) {
      case PriorityClass::Interactive: return interactive == 0 ? 1 : interactive;
      case PriorityClass::Batch:       return batch == 0 ? 1 : batch;
      case PriorityClass::Background:  return background == 0 ? 1 : background;
    }
    return 1;
  }
};

/// Weighted-fair bounded MPMC queue: one bounded FIFO subqueue per
/// PriorityClass, drained by deficit round robin.  Replaces the
/// engine's single BoundedQueue so a flood of Batch sweeps can no
/// longer starve Interactive classifies, while preserving the old
/// queue's contract exactly when only one class is in use:
///
/// - try_push(cls, item) never blocks; it returns false (leaving the
///   item untouched) when that class's subqueue is full or the queue is
///   closed.
/// - pop(out) blocks until an item is available or the queue is closed;
///   it returns false only when the queue is closed *and* empty —
///   items pushed before close() are always drained.
/// - Within a class, items pop in push order (FIFO).  Across classes,
///   a DRR cursor grants each non-empty class `weight` consecutive
///   dequeues per visit; empty classes are skipped without consuming a
///   turn (work-conserving), and a class's deficit resets when it
///   empties so idle time never banks future bursts.
///
/// Capacity is per class: each subqueue holds up to `capacity` items,
/// so admission for one class is independent of the others' backlog.
template <typename T>
class WfqQueue {
 public:
  explicit WfqQueue(std::size_t capacity, WfqWeights weights = {})
      : capacity_(capacity == 0 ? 1 : capacity), weights_(weights) {}

  WfqQueue(const WfqQueue&) = delete;
  WfqQueue& operator=(const WfqQueue&) = delete;

  /// Attempt to enqueue without blocking.  On failure the item is left
  /// untouched so the caller still owns its state (promise, callback).
  bool try_push(PriorityClass cls, T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::deque<T>& queue = queues_[index(cls)];
      if (closed_ || queue.size() >= capacity_) return false;
      queue.push_back(std::move(item));
      ++total_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue in DRR order; false only when closed and empty.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return total_ > 0 || closed_; });
    if (total_ == 0) return false;
    pop_locked(out);
    return true;
  }

  /// Non-blocking dequeue in DRR order.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (total_ == 0) return std::nullopt;
    std::optional<T> out(std::in_place);
    pop_locked(*out);
    return out;
  }

  /// Remove every queued item matching @p pred (across all classes,
  /// preserving FIFO order of the survivors) and move the matches into
  /// @p removed.  Returns the number removed.  This is the server-side
  /// cancellation fast path: a cancelled request that is still queued
  /// is real reclaimed capacity, not just an ignored response.
  template <typename Pred>
  std::size_t remove_all_if(Pred pred, std::vector<T>& removed) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (std::deque<T>& queue : queues_) {
      std::deque<T> kept;
      for (T& item : queue) {
        if (pred(item)) {
          removed.push_back(std::move(item));
          ++count;
        } else {
          kept.push_back(std::move(item));
        }
      }
      queue.swap(kept);
    }
    total_ -= count;
    return count;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  std::size_t size(PriorityClass cls) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queues_[index(cls)].size();
  }

  /// True when @p count more items of @p cls would still fit.
  bool has_room(PriorityClass cls, std::size_t count) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !closed_ && queues_[index(cls)].size() + count <= capacity_;
  }

  /// Per-class capacity (mirrors BoundedQueue::capacity() when a single
  /// class is in use).
  std::size_t capacity() const { return capacity_; }

  /// Queue fill of the fullest class, in [0, 1] — the admission
  /// controller's queue-side pressure signal.
  double max_fill() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t fullest = 0;
    for (const std::deque<T>& queue : queues_) {
      fullest = queue.size() > fullest ? queue.size() : fullest;
    }
    return static_cast<double>(fullest) / static_cast<double>(capacity_);
  }

 private:
  static std::size_t index(PriorityClass cls) {
    return static_cast<std::size_t>(cls);
  }

  /// Caller holds mutex_ and guarantees total_ > 0.
  void pop_locked(T& out) {
    for (std::size_t scanned = 0; scanned < kPriorityClassCount; ++scanned) {
      std::deque<T>& queue = queues_[cursor_];
      if (queue.empty()) {
        // An empty class forfeits its banked deficit: idle time must
        // not buy a later burst priority over classes that kept paying.
        credit_[cursor_] = 0;
        advance();
        continue;
      }
      if (credit_[cursor_] == 0) credit_[cursor_] = weights_.of(current());
      out = std::move(queue.front());
      queue.pop_front();
      --total_;
      --credit_[cursor_];
      if (credit_[cursor_] == 0 || queue.empty()) {
        credit_[cursor_] = 0;
        advance();
      }
      return;
    }
  }

  PriorityClass current() const { return static_cast<PriorityClass>(cursor_); }
  void advance() { cursor_ = (cursor_ + 1) % kPriorityClassCount; }

  const std::size_t capacity_;
  const WfqWeights weights_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::array<std::deque<T>, kPriorityClassCount> queues_;
  std::array<std::uint32_t, kPriorityClassCount> credit_{};
  std::size_t cursor_ = 0;
  std::size_t total_ = 0;
  bool closed_ = false;
};

}  // namespace mpct::qos
