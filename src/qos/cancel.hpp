#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace mpct::qos {

/// Cooperative cancellation flag shared between the server dispatch
/// path (which sets it on a wire CancelRequest) and the worker
/// executing or about to execute the request (which polls it at cheap
/// boundaries — dequeue, chunk start).  Cancellation is best-effort by
/// design: a request that already completed wins the race and the
/// cancel is a no-op.
struct CancelState {
  std::atomic<bool> cancelled{false};

  void request_cancel() { cancelled.store(true, std::memory_order_release); }
  bool is_cancelled() const {
    return cancelled.load(std::memory_order_acquire);
  }
};

using CancelToken = std::shared_ptr<CancelState>;

/// Live-request index for server-side cancellation, keyed by
/// (owner, id).  The owner disambiguates request ids across clients:
/// the net server uses its connection serial, so one connection's
/// CancelRequest can never cancel another connection's request even
/// when both picked the same id.
class CancelRegistry {
 public:
  /// Register a request and get its token.  Re-registering a live key
  /// returns the existing token (ids are unique per owner in practice).
  CancelToken add(std::uint64_t owner, std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    CancelToken& slot = entries_[Key{owner, id}];
    if (!slot) slot = std::make_shared<CancelState>();
    return slot;
  }

  /// Flag (owner, id) as cancelled.  Returns the token when the request
  /// was live, nullptr when it was unknown (already finished, never
  /// registered, or a stray cancel) — the caller uses the token to also
  /// hunt the queue for a still-queued instance.
  CancelToken cancel(std::uint64_t owner, std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(Key{owner, id});
    if (it == entries_.end()) return nullptr;
    it->second->request_cancel();
    return it->second;
  }

  /// Drop the registration once the request has resolved.
  void erase(std::uint64_t owner, std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(Key{owner, id});
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  mutable std::mutex mutex_;
  std::map<Key, CancelToken> entries_;
};

}  // namespace mpct::qos
