#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "qos/priority.hpp"
#include "service/metrics.hpp"

namespace mpct::qos {

/// Tuning for the adaptive admission controller.  Pressure is a
/// dimensionless load estimate in [0, ~): the maximum of queue fill
/// (fullest class subqueue / capacity) and the windowed Interactive p99
/// divided by its budget, so either a deep backlog *or* a blown latency
/// target pushes the service up the shed ladder:
///
///   pressure < degrade_pressure            everything admitted verbatim
///   >= degrade_pressure                    precision degrades first —
///                                          sweeps answer on a strided
///                                          subgrid, caches may serve
///                                          entries past soft-TTL
///   >= shed_background_pressure            Background is rejected with
///                                          Overloaded + retry-after
///   >= shed_batch_pressure                 Batch is rejected too
///
/// Interactive is never shed: by the time Interactive would be the
/// problem, everything cheaper has already been turned away and WFQ
/// gives it almost the whole machine.
struct AdmissionOptions {
  double degrade_pressure = 0.70;
  double shed_background_pressure = 0.85;
  double shed_batch_pressure = 0.95;
  /// Interactive p99 the service tries to hold; windowed p99 at budget
  /// contributes pressure 1.0.
  std::chrono::microseconds interactive_p99_budget{5000};
  /// How often the windowed p99 is re-derived from the cumulative
  /// histogram (cumulative buckets never decay, so the controller diffs
  /// consecutive snapshots to see only recent traffic).
  std::chrono::milliseconds refresh_interval{50};
  /// Base retry-after hint; scaled up with overshoot past the shed
  /// thresholds so deeper overload spreads retries further out.
  std::uint32_t retry_after_base_ms = 25;
};

enum class AdmissionAction : std::uint8_t {
  Admit = 0,    ///< serve at full precision
  Degrade = 1,  ///< serve, but precision may be shed (sampled / stale)
  Shed = 2,     ///< reject with Overloaded + retry-after
};

struct Admission {
  AdmissionAction action = AdmissionAction::Admit;
  std::uint32_t retry_after_ms = 0;
  double pressure = 0.0;
};

/// Watches the live Interactive latency histogram (fed by the engine as
/// cumulative bucket snapshots) and the queue fill, and answers one
/// question on the submit path: admit, degrade, or shed this class
/// right now?  decide() is wait-free on the hot path — it reads two
/// atomics; the windowed-p99 refresh is claimed by one thread per
/// interval via CAS.
class AdmissionController {
 public:
  using Buckets = service::LatencyHistogram::Buckets;

  explicit AdmissionController(AdmissionOptions options);

  /// Feed the latest *cumulative* Interactive latency snapshot.  At
  /// most one caller per refresh_interval pays for the diff; everyone
  /// else returns immediately.
  void observe(const Buckets& cumulative,
               std::chrono::steady_clock::time_point now);

  Admission decide(PriorityClass cls, double queue_fill) const;

  double pressure(double queue_fill) const;
  double windowed_p99_us() const;
  const AdmissionOptions& options() const { return options_; }

  /// Interpolated quantile of the traffic between two cumulative
  /// snapshots (now - prev); 0 when the window saw no requests.
  /// Exposed for tests.
  static double quantile_of_window(const Buckets& now, const Buckets& prev,
                                   double q);

 private:
  std::uint32_t retry_after(double pressure) const;

  const AdmissionOptions options_;

  std::atomic<std::int64_t> last_refresh_ns_{0};
  std::atomic<double> windowed_p99_us_{0.0};
  std::mutex prev_mutex_;
  Buckets prev_{};
};

}  // namespace mpct::qos
