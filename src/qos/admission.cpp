#include "qos/admission.hpp"

#include <algorithm>

namespace mpct::qos {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

double AdmissionController::quantile_of_window(const Buckets& now,
                                               const Buckets& prev,
                                               double q) {
  q = std::clamp(q, 0.0, 1.0);
  constexpr std::size_t kBucketCount = service::LatencyHistogram::kBucketCount;
  std::array<std::uint64_t, kBucketCount> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    // Cumulative buckets only grow; a racing relaxed snapshot can still
    // read individual buckets out of order, so clamp at zero.
    counts[i] = now.counts[i] >= prev.counts[i]
                    ? now.counts[i] - prev.counts[i]
                    : 0;
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
      const double upper = static_cast<double>(1ULL << (i + 1));
      const double before = static_cast<double>(cumulative - counts[i]);
      const double fraction =
          counts[i] == 0 ? 0.0
                         : (rank - before) / static_cast<double>(counts[i]);
      return (lower + fraction * (upper - lower)) / 1000.0;
    }
  }
  return static_cast<double>(1ULL << kBucketCount) / 1000.0;
}

void AdmissionController::observe(const Buckets& cumulative,
                                  std::chrono::steady_clock::time_point now) {
  const std::int64_t now_ns = now.time_since_epoch().count();
  const std::int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.refresh_interval)
          .count();
  std::int64_t last = last_refresh_ns_.load(std::memory_order_relaxed);
  if (last != 0 && now_ns - last < interval_ns) return;
  if (!last_refresh_ns_.compare_exchange_strong(last, now_ns,
                                                std::memory_order_relaxed)) {
    return;  // another thread claimed this window
  }
  std::lock_guard<std::mutex> lock(prev_mutex_);
  if (last != 0) {
    windowed_p99_us_.store(quantile_of_window(cumulative, prev_, 0.99),
                           std::memory_order_relaxed);
  }
  prev_ = cumulative;
}

double AdmissionController::windowed_p99_us() const {
  return windowed_p99_us_.load(std::memory_order_relaxed);
}

double AdmissionController::pressure(double queue_fill) const {
  const double budget_us =
      static_cast<double>(options_.interactive_p99_budget.count());
  const double latency_pressure =
      budget_us <= 0.0 ? 0.0 : windowed_p99_us() / budget_us;
  return std::max(queue_fill, latency_pressure);
}

std::uint32_t AdmissionController::retry_after(double pressure) const {
  // One base unit at the first shed threshold, growing a unit per 5%
  // of overshoot, capped at 8x — deep overload spreads retries out
  // without quoting hints so long that clients give up.
  const double over = std::max(0.0, pressure - options_.shed_background_pressure);
  const std::uint32_t scale =
      1 + std::min<std::uint32_t>(7, static_cast<std::uint32_t>(over * 20.0));
  return options_.retry_after_base_ms * scale;
}

Admission AdmissionController::decide(PriorityClass cls,
                                      double queue_fill) const {
  Admission result;
  result.pressure = pressure(queue_fill);
  if (result.pressure < options_.degrade_pressure) return result;
  const bool shed =
      (cls == PriorityClass::Background &&
       result.pressure >= options_.shed_background_pressure) ||
      (cls == PriorityClass::Batch &&
       result.pressure >= options_.shed_batch_pressure);
  if (shed) {
    result.action = AdmissionAction::Shed;
    result.retry_after_ms = retry_after(result.pressure);
  } else {
    // Interactive is never shed — it degrades at worst.
    result.action = AdmissionAction::Degrade;
  }
  return result;
}

}  // namespace mpct::qos
