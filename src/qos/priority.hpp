#pragma once

#include <cstdint>
#include <string_view>

#include "service/request.hpp"

namespace mpct::qos {

/// Scheduling class of one request.  The wire carries this as a single
/// byte appended to the v2 request payload (absent on v1 frames and on
/// frames from v2 clients that predate QoS — both default to
/// Interactive, the strictest class, so an unaware client is never
/// accidentally starved).
///
/// The taxonomy follows docs/QOS.md: Interactive answers a human who is
/// waiting (classify / recommend / cost / simulate point queries),
/// Batch answers an analysis job that tolerates seconds (sweeps, fault
/// sweeps, degradation curves and their chunk requests), Background is
/// traffic nobody is waiting on (replay soaks, cache warming).
enum class PriorityClass : std::uint8_t {
  Interactive = 0,
  Batch = 1,
  Background = 2,
};

inline constexpr std::size_t kPriorityClassCount = 3;

std::string_view to_string(PriorityClass cls);

/// The class a request belongs to when the client did not say:
/// point queries are Interactive, grid work is Batch.  Background is
/// only ever an explicit client opt-in — no request type defaults to a
/// class the shed ladder drops first.
inline PriorityClass default_priority(service::RequestType type) {
  switch (type) {
    case service::RequestType::Classify:
    case service::RequestType::Recommend:
    case service::RequestType::Cost:
    case service::RequestType::Simulate:
      return PriorityClass::Interactive;
    case service::RequestType::Sweep:
    case service::RequestType::FaultSweep:
    case service::RequestType::SweepChunk:
    case service::RequestType::FaultChunk:
      return PriorityClass::Batch;
  }
  return PriorityClass::Interactive;
}

inline PriorityClass default_priority(const service::Request& request) {
  return default_priority(service::request_type(request));
}

}  // namespace mpct::qos
