#include "qos/priority.hpp"

namespace mpct::qos {

std::string_view to_string(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::Interactive: return "interactive";
    case PriorityClass::Batch:       return "batch";
    case PriorityClass::Background:  return "background";
  }
  return "unknown";
}

}  // namespace mpct::qos
