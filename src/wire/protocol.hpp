#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "service/request.hpp"
#include "wire/codec.hpp"

namespace mpct::wire {

/// "MPCT" as the first four bytes of every frame (the value below is
/// that byte sequence read as a little-endian u32).
inline constexpr std::uint32_t kMagic = 0x5443504Du;

/// Bumped on any incompatible change to the frame header or payload
/// encodings.  A decoder rejects frames from a version it does not
/// speak with WireErrorCode::UnsupportedVersion — see the versioning
/// policy in docs/NET.md.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Fixed frame-header size in bytes:
///
///   offset  size  field
///        0     4  magic ("MPCT")
///        4     2  protocol version
///        6     1  frame kind (1 = request, 2 = response)
///        7     1  reserved (must be 0)
///        8     8  request id (client-chosen; responses echo it, which
///                 is what makes pipelined/out-of-order completion work)
///       16     4  payload byte length
///       20     -  payload
inline constexpr std::size_t kHeaderSize = 20;

/// Hard payload ceiling.  A frame announcing more than this is rejected
/// before any allocation — the stream is treated as garbage.
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

enum class FrameKind : std::uint8_t {
  Request = 1,
  Response = 2,
};

struct FrameHeader {
  FrameKind kind = FrameKind::Request;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
};

/// Outcome of scanning a stream buffer for one complete frame.
struct FrameScan {
  enum class State {
    NeedMore,  ///< prefix is consistent but incomplete — read more bytes
    Ready,     ///< one complete frame of frame_size bytes is available
    Bad,       ///< stream is not a valid frame; see error
  };
  State state = State::NeedMore;
  FrameHeader header;          ///< valid when Ready
  std::size_t frame_size = 0;  ///< header + payload bytes, valid when Ready
  WireError error;             ///< valid when Bad
};

/// Scan the first bytes of @p data for one frame.  Never reads past
/// @p size, never allocates; a malformed header (bad magic / version /
/// kind / oversized payload) is Bad, an incomplete one NeedMore.
FrameScan scan_frame(const std::uint8_t* data, std::size_t size);

/// A decoded request frame.  `deadline_ms` is the client's remaining
/// deadline budget in milliseconds at send time (deadlines are relative
/// on the wire — absolute steady_clock points do not cross machines);
/// 0 means no deadline.
struct RequestFrame {
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;
  service::Request request;
};

/// A decoded response frame.  `response.latency` is the server-observed
/// submit-to-completion time; `cache_hit` is the server cache verdict.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  service::QueryResponse response;
};

/// Decode outcome: either a value or a typed error, never both.
template <typename T>
struct DecodeResult {
  std::optional<T> value;
  WireError error;

  bool ok() const { return value.has_value(); }
};

/// Encode one complete request frame (header + payload).
std::vector<std::uint8_t> encode_request_frame(std::uint64_t request_id,
                                               const service::Request& request,
                                               std::uint32_t deadline_ms = 0);

/// Encode one complete response frame (header + payload).  Covers every
/// Status (error responses travel exactly like results) and every
/// ResponsePayload alternative.
std::vector<std::uint8_t> encode_response_frame(
    std::uint64_t request_id, const service::QueryResponse& response);

/// Decode a complete frame previously delimited by scan_frame().
/// @p size must be the exact frame size; trailing bytes are an error.
DecodeResult<RequestFrame> decode_request_frame(const std::uint8_t* data,
                                                std::size_t size);
DecodeResult<ResponseFrame> decode_response_frame(const std::uint8_t* data,
                                                  std::size_t size);

}  // namespace mpct::wire
