#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "qos/priority.hpp"
#include "service/request.hpp"
#include "trace/export.hpp"
#include "wire/codec.hpp"

namespace mpct::wire {

/// "MPCT" as the first four bytes of every frame (the value below is
/// that byte sequence read as a little-endian u32).
inline constexpr std::uint32_t kMagic = 0x5443504Du;

/// Bumped on any incompatible change to the frame header or payload
/// encodings.  A decoder rejects frames from a version it does not
/// speak with WireErrorCode::UnsupportedVersion — see the versioning
/// policy in docs/NET.md.
///
/// v2 (current): appends a 64-bit trace id to the header and adds the
/// control frame kinds (Ping/Pong/Hello/HelloAck) plus the chunked
/// sweep request/response payloads used by the cluster tier.
inline constexpr std::uint16_t kProtocolVersion = 2;

/// Oldest version this build still decodes.  A v1 client talking to a
/// v2 server keeps working: the server answers each frame at the
/// version the frame arrived with.
inline constexpr std::uint16_t kMinProtocolVersion = 1;

/// Frame-header layout.  Offsets shared by both versions:
///
///   offset  size  field
///        0     4  magic ("MPCT")
///        4     2  protocol version
///        6     1  frame kind (see FrameKind)
///        7     1  reserved (must be 0)
///        8     8  request id (client-chosen; responses echo it, which
///                 is what makes pipelined/out-of-order completion work)
///       16     4  payload byte length
///
/// A v1 header ends there (20 bytes).  A v2 header appends:
///
///       20     8  trace id (0 = untraced); responses echo the
///                 request's, so one distributed trace can stitch
///                 client and server spans together
///
/// and the payload follows the header either way.
inline constexpr std::size_t kHeaderSizeV1 = 20;
inline constexpr std::size_t kHeaderSizeV2 = 28;

/// Header size of a current-version (v2) frame — what this build's
/// encode_*_frame helpers emit by default.
inline constexpr std::size_t kHeaderSize = kHeaderSizeV2;

constexpr std::size_t header_size(std::uint16_t version) {
  return version >= 2 ? kHeaderSizeV2 : kHeaderSizeV1;
}

/// Hard payload ceiling.  A frame announcing more than this is rejected
/// before any allocation — the stream is treated as garbage.
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

enum class FrameKind : std::uint8_t {
  Request = 1,
  Response = 2,
  /// Liveness probe (empty payload); the peer answers Pong echoing the
  /// request id.  Drives the cluster health state machine.
  Ping = 3,
  Pong = 4,
  /// Version negotiation.  A client opens with Hello advertising its
  /// [min, max] version range; the server answers HelloAck with the
  /// agreed version (the highest both speak) or an UnsupportedVersion
  /// status.  Hello/HelloAck always travel with a v1 header so the
  /// handshake itself is readable by every version.
  Hello = 5,
  HelloAck = 6,
  /// One flight-recorder span batch streamed at a trace collector
  /// (fire-and-forget: no response frame — back-pressure is TCP flow
  /// control, and a sender that cannot write sheds batches locally,
  /// counting the drop).  v2-only; a v1 header carrying this kind is
  /// rejected by scan_frame.
  SpanBatch = 7,
  /// Server-side cancellation: the header's request id names an earlier
  /// request on the *same connection* that the client no longer wants
  /// (typically a hedged duplicate whose sibling already answered).
  /// Empty payload, fire-and-forget — the cancelled request's own
  /// response (Cancelled if the cancel won the race, the real result if
  /// it lost) is the acknowledgement.  v2-only; a v1 header carrying
  /// this kind is rejected by scan_frame.
  CancelRequest = 8,
};

struct FrameHeader {
  FrameKind kind = FrameKind::Request;
  std::uint16_t version = kProtocolVersion;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
  std::uint64_t trace_id = 0;  ///< always 0 on v1 frames
};

/// Pick the version a server should answer a Hello with: the highest
/// version both sides speak, or nullopt when the ranges do not
/// intersect (→ answer with Status::unsupported_version).
std::optional<std::uint16_t> negotiate_version(std::uint16_t client_min,
                                               std::uint16_t client_max);

/// Outcome of scanning a stream buffer for one complete frame.
struct FrameScan {
  enum class State {
    NeedMore,  ///< prefix is consistent but incomplete — read more bytes
    Ready,     ///< one complete frame of frame_size bytes is available
    Bad,       ///< stream is not a valid frame; see error
  };
  State state = State::NeedMore;
  FrameHeader header;          ///< valid when Ready
  std::size_t frame_size = 0;  ///< header + payload bytes, valid when Ready
  WireError error;             ///< valid when Bad
};

/// Scan the first bytes of @p data for one frame.  Never reads past
/// @p size, never allocates; a malformed header (bad magic / version /
/// kind / oversized payload) is Bad, an incomplete one NeedMore.
FrameScan scan_frame(const std::uint8_t* data, std::size_t size);

/// A decoded request frame.  `deadline_ms` is the client's remaining
/// deadline budget in milliseconds at send time (deadlines are relative
/// on the wire — absolute steady_clock points do not cross machines);
/// 0 means no deadline.
struct RequestFrame {
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;
  service::Request request;
  std::uint16_t version = kProtocolVersion;  ///< version the frame arrived at
  std::uint64_t trace_id = 0;                ///< 0 on v1 frames / untraced
  /// QoS class, carried as a single byte appended to the v2 payload.
  /// v1 frames — and v2 frames from clients that predate the extension
  /// — decode to the request type's default class (point queries
  /// Interactive, grid work Batch), so an unaware client is never
  /// penalised for not sending the byte.
  qos::PriorityClass priority = qos::PriorityClass::Interactive;
};

/// A decoded response frame.  `response.latency` is the server-observed
/// submit-to-completion time; `cache_hit` is the server cache verdict.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  service::QueryResponse response;
  std::uint16_t version = kProtocolVersion;
  std::uint64_t trace_id = 0;
};

/// A decoded Hello (version negotiation opener).
struct HelloFrame {
  std::uint64_t request_id = 0;
  std::uint16_t min_version = kMinProtocolVersion;
  std::uint16_t max_version = kProtocolVersion;
};

/// A decoded HelloAck.  `agreed_version` is meaningful only when
/// `status.ok()`; on UnsupportedVersion it echoes the server's max.
struct HelloAckFrame {
  std::uint64_t request_id = 0;
  service::Status status;
  std::uint16_t agreed_version = kProtocolVersion;
};

/// A decoded CancelRequest.  The request id names the request to
/// cancel on this connection; there is no payload.
struct CancelFrame {
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
};

/// A decoded span batch (streaming flight-recorder export).  The
/// request id is a sender-local batch sequence number — useful in a
/// packet dump, never echoed (span batches have no responses).
struct SpanBatchFrame {
  std::uint64_t request_id = 0;
  trace::SpanBatch batch;
};

/// Decode outcome: either a value or a typed error, never both.
template <typename T>
struct DecodeResult {
  std::optional<T> value;
  WireError error;

  bool ok() const { return value.has_value(); }
};

/// Encode one complete request frame (header + payload) at @p version.
/// Chunk requests (SweepChunk/FaultChunk) exist only at v2+; encoding
/// one at v1 produces a frame any compliant decoder rejects, so don't.
/// @p priority defaults to the request type's class
/// (qos::default_priority); pass one explicitly to override — e.g. a
/// replay soak tags everything Background.  v1 frames cannot carry the
/// byte, so an explicit priority is silently dropped at version 1.
std::vector<std::uint8_t> encode_request_frame(
    std::uint64_t request_id, const service::Request& request,
    std::uint32_t deadline_ms = 0, std::uint16_t version = kProtocolVersion,
    std::uint64_t trace_id = 0,
    std::optional<qos::PriorityClass> priority = std::nullopt);

/// Encode one complete response frame (header + payload) at @p version.
/// Covers every Status (error responses travel exactly like results)
/// and every ResponsePayload alternative.  Servers answer at the
/// version the request frame arrived with.
std::vector<std::uint8_t> encode_response_frame(
    std::uint64_t request_id, const service::QueryResponse& response,
    std::uint16_t version = kProtocolVersion, std::uint64_t trace_id = 0);

/// Control frames.  Ping/Pong carry an empty payload; Hello/HelloAck
/// always travel with a v1 header (see FrameKind::Hello).
std::vector<std::uint8_t> encode_ping_frame(std::uint64_t request_id);
std::vector<std::uint8_t> encode_pong_frame(std::uint64_t request_id);
std::vector<std::uint8_t> encode_hello_frame(std::uint64_t request_id,
                                             std::uint16_t min_version,
                                             std::uint16_t max_version);
std::vector<std::uint8_t> encode_hello_ack_frame(std::uint64_t request_id,
                                                 const service::Status& status,
                                                 std::uint16_t agreed_version);

/// Encode one CancelRequest (always a v2 header — cancellation does
/// not exist at v1; a client that negotiated v1 simply never sends
/// one).  Empty payload; the header's request id is the target.
std::vector<std::uint8_t> encode_cancel_frame(std::uint64_t request_id,
                                              std::uint64_t trace_id = 0);

/// Encode one span batch (always a v2 header; the streamer never talks
/// to v1 peers — negotiation happens before streaming starts).
std::vector<std::uint8_t> encode_span_batch_frame(
    std::uint64_t request_id, const trace::SpanBatch& batch);

/// Decode a complete frame previously delimited by scan_frame().
/// @p size must be the exact frame size; trailing bytes are an error.
DecodeResult<RequestFrame> decode_request_frame(const std::uint8_t* data,
                                                std::size_t size);
DecodeResult<ResponseFrame> decode_response_frame(const std::uint8_t* data,
                                                  std::size_t size);
DecodeResult<HelloFrame> decode_hello_frame(const std::uint8_t* data,
                                            std::size_t size);
DecodeResult<HelloAckFrame> decode_hello_ack_frame(const std::uint8_t* data,
                                                   std::size_t size);
DecodeResult<SpanBatchFrame> decode_span_batch_frame(const std::uint8_t* data,
                                                     std::size_t size);
DecodeResult<CancelFrame> decode_cancel_frame(const std::uint8_t* data,
                                              std::size_t size);

}  // namespace mpct::wire
