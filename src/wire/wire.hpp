#pragma once

/// Umbrella header for the wire subsystem: the deterministic, versioned
/// binary serialization of the taxonomy service protocol (docs/NET.md).

#include "wire/codec.hpp"
#include "wire/protocol.hpp"
