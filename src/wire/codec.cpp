#include "wire/codec.hpp"

namespace mpct::wire {

std::string_view to_string(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::Truncated:          return "truncated";
    case WireErrorCode::BadMagic:           return "bad-magic";
    case WireErrorCode::UnsupportedVersion: return "unsupported-version";
    case WireErrorCode::BadFrameKind:       return "bad-frame-kind";
    case WireErrorCode::Oversized:          return "oversized";
    case WireErrorCode::Malformed:          return "malformed";
    case WireErrorCode::TrailingData:       return "trailing-data";
  }
  return "unknown";
}

std::string WireError::to_string() const {
  std::string out(wire::to_string(code));
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

void Encoder::patch_u32(std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void Decoder::fail(WireErrorCode code, std::string message) {
  if (failed_) return;  // first failure wins
  failed_ = true;
  error_.code = code;
  error_.message = std::move(message);
  pos_ = size_;  // stop consuming
}

std::uint64_t Decoder::get_le(int bytes) {
  if (failed_) return 0;
  if (remaining() < static_cast<std::size_t>(bytes)) {
    fail(WireErrorCode::Truncated,
         "need " + std::to_string(bytes) + " bytes, have " +
             std::to_string(remaining()));
    return 0;
  }
  std::uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                        i)])
             << (8 * i);
  }
  pos_ += static_cast<std::size_t>(bytes);
  return value;
}

bool Decoder::boolean() {
  const std::uint8_t value = u8();
  if (!failed_ && value > 1) {
    fail(WireErrorCode::Malformed,
         "bool byte must be 0 or 1, got " + std::to_string(value));
  }
  return value == 1;
}

std::string Decoder::str() {
  const std::uint32_t announced = u32();
  if (failed_) return {};
  if (announced > remaining()) {
    fail(WireErrorCode::Truncated,
         "string of " + std::to_string(announced) + " bytes, have " +
             std::to_string(remaining()));
    return {};
  }
  std::string text(reinterpret_cast<const char*>(data_ + pos_), announced);
  pos_ += announced;
  return text;
}

std::size_t Decoder::length(std::size_t min_element_bytes) {
  const std::uint32_t announced = u32();
  if (failed_) return 0;
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (announced > remaining() / min_element_bytes) {
    fail(WireErrorCode::Malformed,
         "element count " + std::to_string(announced) +
             " cannot fit in the remaining " + std::to_string(remaining()) +
             " bytes");
    return 0;
  }
  return announced;
}

void Decoder::expect_end() {
  if (failed_) return;
  if (remaining() != 0) {
    fail(WireErrorCode::TrailingData,
         std::to_string(remaining()) + " trailing bytes after payload");
  }
}

}  // namespace mpct::wire
