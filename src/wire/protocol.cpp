#include "wire/protocol.hpp"

#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "arch/connectivity_expr.hpp"
#include "arch/count.hpp"
#include "arch/spec.hpp"
#include "core/classifier.hpp"
#include "core/connectivity.hpp"
#include "core/flexibility.hpp"
#include "core/machine_class.hpp"
#include "core/naming.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "explore/recommend.hpp"
#include "explore/sweep.hpp"
#include "fault/degradation_curve.hpp"
#include "service/status.hpp"

namespace mpct::wire {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers.

/// Decode a u8-backed enum, rejecting values above @p max_value so a
/// bit-flipped frame can never materialise an out-of-domain enumerator
/// (switching on one downstream would be UB-adjacent at best).
template <typename E>
E decode_enum(Decoder& d, std::uint8_t max_value, const char* what) {
  const std::uint8_t raw = d.u8();
  if (d.ok() && raw > max_value) {
    d.fail(WireErrorCode::Malformed, std::string("bad ") + what + " value " +
                                         std::to_string(raw));
  }
  return static_cast<E>(raw);
}

// ---------------------------------------------------------------------------
// arch::Count — reconstructed through its factories (the fields are
// private); the factories leave the unused fields at their defaults, so
// a factory rebuild is ==-faithful to any factory-built original.

void encode(Encoder& e, const arch::Count& count) {
  e.u8(static_cast<std::uint8_t>(count.kind()));
  e.i64(count.value());  // fixed value or scale factor (same storage)
  e.u8(static_cast<std::uint8_t>(count.symbol()));
}

arch::Count decode_count(Decoder& d) {
  const std::uint8_t kind = d.u8();
  const std::int64_t value = d.i64();
  const char symbol = static_cast<char>(d.u8());
  if (!d.ok()) return {};
  switch (static_cast<arch::Count::Kind>(kind)) {
    case arch::Count::Kind::Fixed:
      return arch::Count::fixed(value);
    case arch::Count::Kind::Symbolic:
      return arch::Count::symbolic(symbol);
    case arch::Count::Kind::ScaledSymbolic:
      return arch::Count::scaled_symbolic(value, symbol);
    case arch::Count::Kind::Variable:
      return arch::Count::variable();
  }
  d.fail(WireErrorCode::Malformed,
         "bad Count kind " + std::to_string(kind));
  return {};
}

// ---------------------------------------------------------------------------
// arch::ConnectivityExpr

void encode(Encoder& e, const arch::ConnectivityExpr& expr) {
  e.u8(static_cast<std::uint8_t>(expr.kind));
  encode(e, expr.left);
  encode(e, expr.right);
}

arch::ConnectivityExpr decode_connectivity_expr(Decoder& d) {
  arch::ConnectivityExpr expr;
  expr.kind = decode_enum<SwitchKind>(d, 2, "SwitchKind");
  expr.left = decode_count(d);
  expr.right = decode_count(d);
  return expr;
}

// ---------------------------------------------------------------------------
// arch::ArchitectureSpec

void encode(Encoder& e, const arch::ArchitectureSpec& spec) {
  e.str(spec.name);
  e.str(spec.citation);
  e.str(spec.description);
  e.i32(spec.year);
  e.str(spec.category);
  e.u8(static_cast<std::uint8_t>(spec.granularity));
  encode(e, spec.ips);
  encode(e, spec.dps);
  for (const auto& cell : spec.connectivity) encode(e, cell);
  e.boolean(spec.paper_name.has_value());
  if (spec.paper_name) e.str(*spec.paper_name);
  e.boolean(spec.paper_flexibility.has_value());
  if (spec.paper_flexibility) e.i32(*spec.paper_flexibility);
}

arch::ArchitectureSpec decode_spec(Decoder& d) {
  arch::ArchitectureSpec spec;
  spec.name = d.str();
  spec.citation = d.str();
  spec.description = d.str();
  spec.year = d.i32();
  spec.category = d.str();
  spec.granularity = decode_enum<Granularity>(d, 1, "Granularity");
  spec.ips = decode_count(d);
  spec.dps = decode_count(d);
  for (auto& cell : spec.connectivity) cell = decode_connectivity_expr(d);
  if (d.boolean()) spec.paper_name = d.str();
  if (d.boolean()) spec.paper_flexibility = d.i32();
  return spec;
}

// ---------------------------------------------------------------------------
// MachineClass / TaxonomicName

void encode(Encoder& e, const MachineClass& mc) {
  e.u8(static_cast<std::uint8_t>(mc.granularity));
  e.u8(static_cast<std::uint8_t>(mc.ips));
  e.u8(static_cast<std::uint8_t>(mc.dps));
  for (const SwitchKind kind : mc.switches) {
    e.u8(static_cast<std::uint8_t>(kind));
  }
}

MachineClass decode_machine_class(Decoder& d) {
  MachineClass mc;
  mc.granularity = decode_enum<Granularity>(d, 1, "Granularity");
  mc.ips = decode_enum<Multiplicity>(d, 3, "Multiplicity");
  mc.dps = decode_enum<Multiplicity>(d, 3, "Multiplicity");
  for (auto& kind : mc.switches) {
    kind = decode_enum<SwitchKind>(d, 2, "SwitchKind");
  }
  return mc;
}

void encode(Encoder& e, const TaxonomicName& name) {
  e.u8(static_cast<std::uint8_t>(name.machine_type));
  e.u8(static_cast<std::uint8_t>(name.processing_type));
  e.i32(name.subtype);
}

TaxonomicName decode_taxonomic_name(Decoder& d) {
  TaxonomicName name;
  name.machine_type = decode_enum<MachineType>(d, 2, "MachineType");
  name.processing_type = decode_enum<ProcessingType>(d, 3, "ProcessingType");
  name.subtype = d.i32();
  return name;
}

// ---------------------------------------------------------------------------
// Classification / FlexibilityBreakdown

void encode(Encoder& e, const Classification& classification) {
  e.boolean(classification.name.has_value());
  if (classification.name) encode(e, *classification.name);
  e.boolean(classification.implementable);
  e.str(classification.note);
}

Classification decode_classification(Decoder& d) {
  Classification classification;
  if (d.boolean()) classification.name = decode_taxonomic_name(d);
  classification.implementable = d.boolean();
  classification.note = d.str();
  return classification;
}

void encode(Encoder& e, const FlexibilityBreakdown& flex) {
  e.i32(flex.many_ips);
  e.i32(flex.many_dps);
  e.i32(flex.crossbar_switches);
  e.i32(flex.variability_bonus);
}

FlexibilityBreakdown decode_flexibility(Decoder& d) {
  FlexibilityBreakdown flex;
  flex.many_ips = d.i32();
  flex.many_dps = d.i32();
  flex.crossbar_switches = d.i32();
  flex.variability_bonus = d.i32();
  return flex;
}

// ---------------------------------------------------------------------------
// explore::Requirements / Recommendation

void encode(Encoder& e, const explore::Requirements& req) {
  e.i32(req.min_flexibility);
  e.boolean(req.paradigm.has_value());
  if (req.paradigm) e.u8(static_cast<std::uint8_t>(*req.paradigm));
  e.boolean(req.needs_independent_programs);
  e.boolean(req.needs_pe_exchange);
  e.boolean(req.needs_shared_memory);
  e.i64(req.n);
  e.i64(req.lut_budget);
  e.u8(static_cast<std::uint8_t>(req.objective));
}

explore::Requirements decode_requirements(Decoder& d) {
  explore::Requirements req;
  req.min_flexibility = d.i32();
  if (d.boolean()) {
    req.paradigm = decode_enum<MachineType>(d, 2, "MachineType");
  }
  req.needs_independent_programs = d.boolean();
  req.needs_pe_exchange = d.boolean();
  req.needs_shared_memory = d.boolean();
  req.n = d.i64();
  req.lut_budget = d.i64();
  req.objective = decode_enum<explore::Requirements::Objective>(
      d, 1, "Requirements::Objective");
  return req;
}

void encode(Encoder& e, const explore::Recommendation& rec) {
  encode(e, rec.name);
  e.i32(rec.flexibility);
  e.f64(rec.area_kge);
  e.i64(rec.config_bits);
  e.str(rec.rationale);
}

explore::Recommendation decode_recommendation(Decoder& d) {
  explore::Recommendation rec;
  rec.name = decode_taxonomic_name(d);
  rec.flexibility = d.i32();
  rec.area_kge = d.f64();
  rec.config_bits = d.i64();
  rec.rationale = d.str();
  return rec;
}

// ---------------------------------------------------------------------------
// cost::EstimateOptions / AreaEstimate / ConfigBitsEstimate

void encode(Encoder& e, const cost::EstimateOptions& options) {
  e.i64(options.n);
  e.i64(options.m);
  e.i64(options.v);
  e.boolean(options.include_ip_dp_switch);
}

cost::EstimateOptions decode_estimate_options(Decoder& d) {
  cost::EstimateOptions options;
  options.n = d.i64();
  options.m = d.i64();
  options.v = d.i64();
  options.include_ip_dp_switch = d.boolean();
  return options;
}

void encode(Encoder& e, const cost::AreaEstimate& area) {
  e.f64(area.ip_blocks);
  e.f64(area.im_blocks);
  e.f64(area.dp_blocks);
  e.f64(area.dm_blocks);
  e.f64(area.lut_blocks);
  e.f64(area.ip_ip_switch);
  e.f64(area.ip_im_switch);
  e.f64(area.ip_dp_switch);
  e.f64(area.dp_dm_switch);
  e.f64(area.dp_dp_switch);
  e.i64(area.n_ips);
  e.i64(area.n_dps);
  e.i64(area.n_ims);
  e.i64(area.n_dms);
  e.i64(area.n_luts);
}

cost::AreaEstimate decode_area_estimate(Decoder& d) {
  cost::AreaEstimate area;
  area.ip_blocks = d.f64();
  area.im_blocks = d.f64();
  area.dp_blocks = d.f64();
  area.dm_blocks = d.f64();
  area.lut_blocks = d.f64();
  area.ip_ip_switch = d.f64();
  area.ip_im_switch = d.f64();
  area.ip_dp_switch = d.f64();
  area.dp_dm_switch = d.f64();
  area.dp_dp_switch = d.f64();
  area.n_ips = d.i64();
  area.n_dps = d.i64();
  area.n_ims = d.i64();
  area.n_dms = d.i64();
  area.n_luts = d.i64();
  return area;
}

void encode(Encoder& e, const cost::ConfigBitsEstimate& bits) {
  e.i64(bits.ip_blocks);
  e.i64(bits.im_blocks);
  e.i64(bits.dp_blocks);
  e.i64(bits.dm_blocks);
  e.i64(bits.lut_blocks);
  e.i64(bits.ip_ip_switch);
  e.i64(bits.ip_im_switch);
  e.i64(bits.ip_dp_switch);
  e.i64(bits.dp_dm_switch);
  e.i64(bits.dp_dp_switch);
}

cost::ConfigBitsEstimate decode_config_bits_estimate(Decoder& d) {
  cost::ConfigBitsEstimate bits;
  bits.ip_blocks = d.i64();
  bits.im_blocks = d.i64();
  bits.dp_blocks = d.i64();
  bits.dm_blocks = d.i64();
  bits.lut_blocks = d.i64();
  bits.ip_ip_switch = d.i64();
  bits.ip_im_switch = d.i64();
  bits.ip_dp_switch = d.i64();
  bits.dp_dm_switch = d.i64();
  bits.dp_dp_switch = d.i64();
  return bits;
}

// ---------------------------------------------------------------------------
// explore::SweepGrid / SweepPoint / SweepResult

void encode(Encoder& e, const explore::SweepGrid& grid) {
  encode(e, grid.base);
  e.length(grid.n_values.size());
  for (const std::int64_t n : grid.n_values) e.i64(n);
  e.length(grid.lut_budgets.size());
  for (const std::int64_t budget : grid.lut_budgets) e.i64(budget);
  e.length(grid.objectives.size());
  for (const auto objective : grid.objectives) {
    e.u8(static_cast<std::uint8_t>(objective));
  }
}

explore::SweepGrid decode_sweep_grid(Decoder& d) {
  explore::SweepGrid grid;
  grid.base = decode_requirements(d);
  const std::size_t n_count = d.length(8);
  grid.n_values.reserve(n_count);
  for (std::size_t i = 0; i < n_count && d.ok(); ++i) {
    grid.n_values.push_back(d.i64());
  }
  const std::size_t budget_count = d.length(8);
  grid.lut_budgets.reserve(budget_count);
  for (std::size_t i = 0; i < budget_count && d.ok(); ++i) {
    grid.lut_budgets.push_back(d.i64());
  }
  const std::size_t objective_count = d.length(1);
  grid.objectives.reserve(objective_count);
  for (std::size_t i = 0; i < objective_count && d.ok(); ++i) {
    grid.objectives.push_back(decode_enum<explore::Requirements::Objective>(
        d, 1, "Requirements::Objective"));
  }
  return grid;
}

/// Encoded SweepPoint size: n(8) + lut_budget(8) + objective(1) +
/// feasible(1) + TaxonomicName(6) + flexibility(4) + area(8) + bits(8).
constexpr std::size_t kSweepPointBytes = 44;

void encode(Encoder& e, const explore::SweepPoint& point) {
  e.i64(point.n);
  e.i64(point.lut_budget);
  e.u8(static_cast<std::uint8_t>(point.objective));
  e.boolean(point.feasible);
  encode(e, point.best);
  e.i32(point.flexibility);
  e.f64(point.area_kge);
  e.i64(point.config_bits);
}

explore::SweepPoint decode_sweep_point(Decoder& d) {
  explore::SweepPoint point;
  point.n = d.i64();
  point.lut_budget = d.i64();
  point.objective = decode_enum<explore::Requirements::Objective>(
      d, 1, "Requirements::Objective");
  point.feasible = d.boolean();
  point.best = decode_taxonomic_name(d);
  point.flexibility = d.i32();
  point.area_kge = d.f64();
  point.config_bits = d.i64();
  return point;
}

void encode(Encoder& e, const explore::SweepResult& result) {
  e.length(result.points.size());
  for (const auto& point : result.points) encode(e, point);
  e.length(result.pareto_front.size());
  for (const auto& point : result.pareto_front) encode(e, point);
  e.u64(result.candidate_classes);
}

explore::SweepResult decode_sweep_result(Decoder& d) {
  explore::SweepResult result;
  const std::size_t point_count = d.length(kSweepPointBytes);
  result.points.reserve(point_count);
  for (std::size_t i = 0; i < point_count && d.ok(); ++i) {
    result.points.push_back(decode_sweep_point(d));
  }
  const std::size_t front_count = d.length(kSweepPointBytes);
  result.pareto_front.reserve(front_count);
  for (std::size_t i = 0; i < front_count && d.ok(); ++i) {
    result.pareto_front.push_back(decode_sweep_point(d));
  }
  result.candidate_classes = static_cast<std::size_t>(d.u64());
  return result;
}

// ---------------------------------------------------------------------------
// fault::CurveSpec / CurvePoint / CurveResult

void encode(Encoder& e, const fault::CurveSpec& spec) {
  encode(e, spec.machine);
  encode(e, spec.bindings);
  e.i32(spec.noc_width);
  e.i32(spec.noc_height);
  e.length(spec.fault_rates.size());
  for (const double rate : spec.fault_rates) e.f64(rate);
  e.i32(spec.trials_per_rate);
  e.u64(spec.seed);
}

fault::CurveSpec decode_curve_spec(Decoder& d) {
  fault::CurveSpec spec;
  spec.machine = decode_machine_class(d);
  spec.bindings = decode_estimate_options(d);
  spec.noc_width = d.i32();
  spec.noc_height = d.i32();
  const std::size_t rate_count = d.length(8);
  spec.fault_rates.reserve(rate_count);
  for (std::size_t i = 0; i < rate_count && d.ok(); ++i) {
    spec.fault_rates.push_back(d.f64());
  }
  spec.trials_per_rate = d.i32();
  spec.seed = d.u64();
  return spec;
}

/// Encoded CurvePoint size: fault_rate(8) + trials(4) + 4 doubles(32).
constexpr std::size_t kCurvePointBytes = 44;

void encode(Encoder& e, const fault::CurvePoint& point) {
  e.f64(point.fault_rate);
  e.i32(point.trials);
  e.f64(point.yield);
  e.f64(point.mean_flexibility);
  e.f64(point.mean_connectivity);
  e.f64(point.mean_survival);
}

fault::CurvePoint decode_curve_point(Decoder& d) {
  fault::CurvePoint point;
  point.fault_rate = d.f64();
  point.trials = d.i32();
  point.yield = d.f64();
  point.mean_flexibility = d.f64();
  point.mean_connectivity = d.f64();
  point.mean_survival = d.f64();
  return point;
}

void encode(Encoder& e, const fault::CurveResult& result) {
  encode(e, result.spec);
  e.length(result.points.size());
  for (const auto& point : result.points) encode(e, point);
}

fault::CurveResult decode_curve_result(Decoder& d) {
  fault::CurveResult result;
  result.spec = decode_curve_spec(d);
  const std::size_t point_count = d.length(kCurvePointBytes);
  result.points.reserve(point_count);
  for (std::size_t i = 0; i < point_count && d.ok(); ++i) {
    result.points.push_back(decode_curve_point(d));
  }
  return result;
}

// ---------------------------------------------------------------------------
// service::Status

void encode(Encoder& e, const service::Status& status) {
  e.i32(static_cast<std::int32_t>(status.code));
  e.str(status.message);
}

service::Status decode_status(Decoder& d) {
  service::Status status;
  const std::int32_t code = d.i32();
  if (d.ok() &&
      (code < 0 ||
       code > static_cast<std::int32_t>(service::StatusCode::Cancelled))) {
    d.fail(WireErrorCode::Malformed,
           "bad StatusCode value " + std::to_string(code));
  }
  status.code = static_cast<service::StatusCode>(code);
  status.message = d.str();
  return status;
}

// ---------------------------------------------------------------------------
// Request variants

void encode(Encoder& e, const service::ClassifyRequest& request) {
  e.u8(static_cast<std::uint8_t>(request.input.index()));
  if (const auto* spec = std::get_if<arch::ArchitectureSpec>(&request.input)) {
    encode(e, *spec);
  } else {
    e.str(std::get<std::string>(request.input));
  }
}

service::ClassifyRequest decode_classify_request(Decoder& d) {
  service::ClassifyRequest request;
  const std::uint8_t which = d.u8();
  if (!d.ok()) return request;
  switch (which) {
    case 0:
      request.input = decode_spec(d);
      break;
    case 1:
      request.input = d.str();
      break;
    default:
      d.fail(WireErrorCode::Malformed,
             "bad ClassifyRequest alternative " + std::to_string(which));
  }
  return request;
}

void encode(Encoder& e, const service::RecommendRequest& request) {
  encode(e, request.requirements);
  e.u64(static_cast<std::uint64_t>(request.top_k));
}

service::RecommendRequest decode_recommend_request(Decoder& d) {
  service::RecommendRequest request;
  request.requirements = decode_requirements(d);
  request.top_k = static_cast<std::size_t>(d.u64());
  return request;
}

void encode(Encoder& e, const service::CostRequest& request) {
  e.u8(static_cast<std::uint8_t>(request.target.index()));
  if (const auto* mc = std::get_if<MachineClass>(&request.target)) {
    encode(e, *mc);
  } else {
    encode(e, std::get<arch::ArchitectureSpec>(request.target));
  }
  encode(e, request.options);
  e.length(request.n_sweep.size());
  for (const std::int64_t n : request.n_sweep) e.i64(n);
}

service::CostRequest decode_cost_request(Decoder& d) {
  service::CostRequest request;
  const std::uint8_t which = d.u8();
  if (!d.ok()) return request;
  switch (which) {
    case 0:
      request.target = decode_machine_class(d);
      break;
    case 1:
      request.target = decode_spec(d);
      break;
    default:
      d.fail(WireErrorCode::Malformed,
             "bad CostRequest alternative " + std::to_string(which));
      return request;
  }
  request.options = decode_estimate_options(d);
  const std::size_t sweep_count = d.length(8);
  request.n_sweep.reserve(sweep_count);
  for (std::size_t i = 0; i < sweep_count && d.ok(); ++i) {
    request.n_sweep.push_back(d.i64());
  }
  return request;
}

void encode(Encoder& e, const workload::WorkloadSpec& spec) {
  e.u8(static_cast<std::uint8_t>(spec.kernel));
  e.i32(spec.size);
  e.i32(spec.iterations);
  e.i64(spec.alpha);
}

workload::WorkloadSpec decode_workload_spec(Decoder& d) {
  workload::WorkloadSpec spec;
  spec.kernel = decode_enum<workload::Kernel>(d, 2, "Kernel");
  spec.size = d.i32();
  spec.iterations = d.i32();
  spec.alpha = d.i64();
  return spec;
}

void encode(Encoder& e, const fault::FaultSet& faults) {
  e.length(faults.size());
  for (const fault::Fault& f : faults.faults()) {
    e.u8(static_cast<std::uint8_t>(f.kind));
    e.u8(static_cast<std::uint8_t>(f.role));
    e.i32(f.index);
    e.i32(f.index2);
  }
}

fault::FaultSet decode_fault_set(Decoder& d) {
  // Fault: kind(1) + role(1) + index(4) + index2(4).
  const std::size_t count = d.length(10);
  std::vector<fault::Fault> faults;
  faults.reserve(count);
  for (std::size_t i = 0; i < count && d.ok(); ++i) {
    fault::Fault f;
    f.kind = decode_enum<fault::FaultKind>(d, 5, "FaultKind");
    f.role = decode_enum<ConnectivityRole>(d, 4, "ConnectivityRole");
    f.index = d.i32();
    f.index2 = d.i32();
    faults.push_back(f);
  }
  // The FaultSet constructor canonicalises (sorts, dedups), so a peer
  // that sent faults in any order still round-trips to an equal set.
  return fault::FaultSet(std::move(faults));
}

void encode(Encoder& e, const service::SimulateRequest& request) {
  encode(e, request.workload);
  e.u8(static_cast<std::uint8_t>(request.target.index()));
  if (const auto* mc = std::get_if<MachineClass>(&request.target)) {
    encode(e, *mc);
  } else {
    encode(e, std::get<arch::ArchitectureSpec>(request.target));
  }
  e.i32(request.options.width);
  e.i64(request.options.max_cycles);
  encode(e, request.faults);
  e.u64(request.seed);
}

service::SimulateRequest decode_simulate_request(Decoder& d) {
  service::SimulateRequest request;
  request.workload = decode_workload_spec(d);
  const std::uint8_t which = d.u8();
  if (!d.ok()) return request;
  switch (which) {
    case 0:
      request.target = decode_machine_class(d);
      break;
    case 1:
      request.target = decode_spec(d);
      break;
    default:
      d.fail(WireErrorCode::Malformed,
             "bad SimulateRequest alternative " + std::to_string(which));
      return request;
  }
  request.options.width = d.i32();
  request.options.max_cycles = d.i64();
  request.faults = decode_fault_set(d);
  request.seed = d.u64();
  return request;
}

// ---------------------------------------------------------------------------
// Response variants

void encode(Encoder& e, const service::ClassifyResponse& response) {
  encode(e, response.spec);
  encode(e, response.classification);
  encode(e, response.flexibility);
}

service::ClassifyResponse decode_classify_response(Decoder& d) {
  service::ClassifyResponse response;
  response.spec = decode_spec(d);
  response.classification = decode_classification(d);
  response.flexibility = decode_flexibility(d);
  return response;
}

void encode(Encoder& e, const service::RecommendResponse& response) {
  e.length(response.recommendations.size());
  for (const auto& rec : response.recommendations) encode(e, rec);
}

service::RecommendResponse decode_recommend_response(Decoder& d) {
  service::RecommendResponse response;
  // Minimum Recommendation: name(6) + flexibility(4) + area(8) +
  // config_bits(8) + empty rationale(4).
  const std::size_t count = d.length(30);
  response.recommendations.reserve(count);
  for (std::size_t i = 0; i < count && d.ok(); ++i) {
    response.recommendations.push_back(decode_recommendation(d));
  }
  return response;
}

void encode(Encoder& e, const service::CostResponse& response) {
  e.length(response.points.size());
  for (const auto& point : response.points) {
    e.i64(point.n);
    encode(e, point.area);
    encode(e, point.config_bits);
  }
}

service::CostResponse decode_cost_response(Decoder& d) {
  service::CostResponse response;
  // Point: n(8) + AreaEstimate(15 * 8) + ConfigBitsEstimate(10 * 8).
  const std::size_t count = d.length(208);
  response.points.reserve(count);
  for (std::size_t i = 0; i < count && d.ok(); ++i) {
    service::CostResponse::Point point;
    point.n = d.i64();
    point.area = decode_area_estimate(d);
    point.config_bits = decode_config_bits_estimate(d);
    response.points.push_back(std::move(point));
  }
  return response;
}

void encode(Encoder& e, const service::SimulateResponse& response) {
  const workload::WorkloadResult& r = response.result;
  e.u8(static_cast<std::uint8_t>(r.paradigm));
  encode(e, r.machine);
  e.i64(r.cycles);
  e.i64(r.instructions);
  e.boolean(r.halted);
  e.i32(r.output_words);
  e.u64(r.output_checksum);
  e.boolean(r.matches_reference);
  e.i64(r.memory_accesses);
  e.i64(r.messages);
  e.f64(r.energy_pj);
  e.f64(r.noc_reachable_fraction);
}

service::SimulateResponse decode_simulate_response(Decoder& d) {
  service::SimulateResponse response;
  workload::WorkloadResult& r = response.result;
  r.paradigm = decode_enum<workload::Paradigm>(d, 4, "Paradigm");
  r.machine = decode_taxonomic_name(d);
  r.cycles = d.i64();
  r.instructions = d.i64();
  r.halted = d.boolean();
  r.output_words = d.i32();
  r.output_checksum = d.u64();
  r.matches_reference = d.boolean();
  r.memory_accesses = d.i64();
  r.messages = d.i64();
  r.energy_pj = d.f64();
  r.noc_reachable_fraction = d.f64();
  return response;
}

// ---------------------------------------------------------------------------
// Whole Request / ResponsePayload

void encode(Encoder& e, const service::Request& request) {
  e.u8(static_cast<std::uint8_t>(request.index()));
  std::visit(
      [&e](const auto& alternative) {
        using T = std::decay_t<decltype(alternative)>;
        if constexpr (std::is_same_v<T, service::SweepRequest>) {
          encode(e, alternative.grid);
        } else if constexpr (std::is_same_v<T, service::FaultSweepRequest>) {
          encode(e, alternative.spec);
        } else if constexpr (std::is_same_v<T, service::SweepChunkRequest>) {
          encode(e, alternative.grid);
          e.u64(alternative.begin);
          e.u64(alternative.end);
        } else if constexpr (std::is_same_v<T, service::FaultChunkRequest>) {
          encode(e, alternative.spec);
          e.u64(alternative.begin);
          e.u64(alternative.end);
        } else {
          encode(e, alternative);
        }
      },
      request);
}

/// @p version is the frame's wire version: the chunk request types were
/// introduced in v2, so a v1 frame carrying their tags is malformed
/// rather than merely newer-than-us.
service::Request decode_request(Decoder& d, std::uint16_t version) {
  const std::uint8_t type = d.u8();
  if (!d.ok()) return service::ClassifyRequest{};
  switch (static_cast<service::RequestType>(type)) {
    case service::RequestType::Classify:
      return decode_classify_request(d);
    case service::RequestType::Recommend:
      return decode_recommend_request(d);
    case service::RequestType::Cost:
      return decode_cost_request(d);
    case service::RequestType::Sweep:
      return service::SweepRequest{decode_sweep_grid(d)};
    case service::RequestType::FaultSweep:
      return service::FaultSweepRequest{decode_curve_spec(d)};
    case service::RequestType::SweepChunk: {
      if (version < 2) break;
      service::SweepChunkRequest chunk;
      chunk.grid = decode_sweep_grid(d);
      chunk.begin = d.u64();
      chunk.end = d.u64();
      return chunk;
    }
    case service::RequestType::FaultChunk: {
      if (version < 2) break;
      service::FaultChunkRequest chunk;
      chunk.spec = decode_curve_spec(d);
      chunk.begin = d.u64();
      chunk.end = d.u64();
      return chunk;
    }
    case service::RequestType::Simulate: {
      if (version < 2) break;
      return decode_simulate_request(d);
    }
  }
  d.fail(WireErrorCode::Malformed,
         "bad RequestType value " + std::to_string(type) + " for version " +
             std::to_string(version));
  return service::ClassifyRequest{};
}

void encode_payload(Encoder& e, const service::QueryResponse& response) {
  if (!response.payload) {
    e.u8(0);  // monostate: rejected/errored responses carry no payload
    return;
  }
  e.u8(static_cast<std::uint8_t>(response.payload->index()));
  std::visit(
      [&e](const auto& alternative) {
        using T = std::decay_t<decltype(alternative)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          // index byte already written; nothing follows
        } else if constexpr (std::is_same_v<T, service::SweepResponse>) {
          encode(e, alternative.result);
        } else if constexpr (std::is_same_v<T, service::FaultSweepResponse>) {
          encode(e, alternative.result);
        } else if constexpr (std::is_same_v<T, service::SweepChunkResponse>) {
          e.length(alternative.points.size());
          for (const auto& point : alternative.points) encode(e, point);
          e.u64(alternative.candidate_classes);
        } else if constexpr (std::is_same_v<T, service::FaultChunkResponse>) {
          e.length(alternative.outcomes.size());
          for (const auto& outcome : alternative.outcomes) {
            e.boolean(outcome.alive);
            e.i32(outcome.degraded_score);
            e.f64(outcome.flexibility_retention);
            e.f64(outcome.component_survival);
            e.f64(outcome.connectivity);
          }
        } else {
          encode(e, alternative);
        }
      },
      *response.payload);
}

std::shared_ptr<const service::ResponsePayload> decode_payload(
    Decoder& d, std::uint16_t version) {
  const std::uint8_t index = d.u8();
  if (!d.ok()) return nullptr;
  switch (index) {
    case 0:
      return nullptr;
    case 1:
      return std::make_shared<const service::ResponsePayload>(
          decode_classify_response(d));
    case 2:
      return std::make_shared<const service::ResponsePayload>(
          decode_recommend_response(d));
    case 3:
      return std::make_shared<const service::ResponsePayload>(
          decode_cost_response(d));
    case 4:
      return std::make_shared<const service::ResponsePayload>(
          service::SweepResponse{decode_sweep_result(d)});
    case 5:
      return std::make_shared<const service::ResponsePayload>(
          service::FaultSweepResponse{decode_curve_result(d)});
    case 6: {
      if (version < 2) break;
      service::SweepChunkResponse chunk;
      const std::size_t count = d.length(kSweepPointBytes);
      chunk.points.reserve(count);
      for (std::size_t i = 0; i < count && d.ok(); ++i) {
        chunk.points.push_back(decode_sweep_point(d));
      }
      chunk.candidate_classes = d.u64();
      return std::make_shared<const service::ResponsePayload>(
          std::move(chunk));
    }
    case 7: {
      if (version < 2) break;
      service::FaultChunkResponse chunk;
      // TrialOutcome: alive(1) + score(4) + 3 doubles(24).
      const std::size_t count = d.length(29);
      chunk.outcomes.reserve(count);
      for (std::size_t i = 0; i < count && d.ok(); ++i) {
        fault::TrialOutcome outcome;
        outcome.alive = d.boolean();
        outcome.degraded_score = d.i32();
        outcome.flexibility_retention = d.f64();
        outcome.component_survival = d.f64();
        outcome.connectivity = d.f64();
        chunk.outcomes.push_back(outcome);
      }
      return std::make_shared<const service::ResponsePayload>(
          std::move(chunk));
    }
    case 8: {
      if (version < 2) break;
      return std::make_shared<const service::ResponsePayload>(
          decode_simulate_response(d));
    }
    default:
      break;
  }
  d.fail(WireErrorCode::Malformed,
         "bad ResponsePayload alternative " + std::to_string(index) +
             " for version " + std::to_string(version));
  return nullptr;
}

// ---------------------------------------------------------------------------
// Frame header

void encode_header(Encoder& e, FrameKind kind, std::uint64_t request_id,
                   std::uint16_t version, std::uint64_t trace_id) {
  e.u32(kMagic);
  e.u16(version);
  e.u8(static_cast<std::uint8_t>(kind));
  e.u8(0);  // reserved
  e.u64(request_id);
  e.u32(0);  // payload size, back-patched once the payload is written
  if (version >= 2) e.u64(trace_id);
}

constexpr std::size_t kPayloadSizeOffset = 16;

/// Bytes of kMagic in wire (little-endian) order — "MPCT".
constexpr std::uint8_t kMagicBytes[4] = {
    static_cast<std::uint8_t>(kMagic & 0xFF),
    static_cast<std::uint8_t>((kMagic >> 8) & 0xFF),
    static_cast<std::uint8_t>((kMagic >> 16) & 0xFF),
    static_cast<std::uint8_t>((kMagic >> 24) & 0xFF),
};

FrameScan bad_frame(WireErrorCode code, std::string message) {
  FrameScan scan;
  scan.state = FrameScan::State::Bad;
  scan.error = {code, std::move(message)};
  return scan;
}

}  // namespace

std::optional<std::uint16_t> negotiate_version(std::uint16_t client_min,
                                               std::uint16_t client_max) {
  const std::uint16_t lo =
      client_min > kMinProtocolVersion ? client_min : kMinProtocolVersion;
  const std::uint16_t hi =
      client_max < kProtocolVersion ? client_max : kProtocolVersion;
  if (lo > hi) return std::nullopt;
  return hi;
}

FrameScan scan_frame(const std::uint8_t* data, std::size_t size) {
  // Reject a wrong magic as early as the bytes allow: a stream that is
  // not frame-aligned should not be able to stall a reader by dribbling
  // garbage one byte at a time.
  const std::size_t magic_prefix = size < 4 ? size : 4;
  for (std::size_t i = 0; i < magic_prefix; ++i) {
    if (data[i] != kMagicBytes[i]) {
      return bad_frame(WireErrorCode::BadMagic,
                       "frame does not start with 'MPCT'");
    }
  }
  // The header size depends on the version field, so read (and reject)
  // that before demanding a full header's worth of bytes.
  if (size < 6) return {};  // NeedMore
  const std::uint16_t version = static_cast<std::uint16_t>(
      data[4] | (static_cast<std::uint16_t>(data[5]) << 8));
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return bad_frame(WireErrorCode::UnsupportedVersion,
                     "frame version " + std::to_string(version) +
                         ", this build speaks " +
                         std::to_string(kMinProtocolVersion) + ".." +
                         std::to_string(kProtocolVersion));
  }
  const std::size_t header_bytes = header_size(version);
  if (size < header_bytes) return {};  // NeedMore

  Decoder d(data, header_bytes);
  d.u32();  // magic, validated above
  d.u16();  // version, validated above
  const std::uint8_t kind = d.u8();
  const std::uint8_t reserved = d.u8();
  const std::uint64_t request_id = d.u64();
  const std::uint32_t payload_size = d.u32();
  const std::uint64_t trace_id = version >= 2 ? d.u64() : 0;

  if (kind < static_cast<std::uint8_t>(FrameKind::Request) ||
      kind > static_cast<std::uint8_t>(FrameKind::CancelRequest)) {
    return bad_frame(WireErrorCode::BadFrameKind,
                     "frame kind byte " + std::to_string(kind));
  }
  if (kind == static_cast<std::uint8_t>(FrameKind::SpanBatch) && version < 2) {
    return bad_frame(WireErrorCode::BadFrameKind,
                     "span batch frames require a v2 header");
  }
  if (kind == static_cast<std::uint8_t>(FrameKind::CancelRequest) &&
      version < 2) {
    return bad_frame(WireErrorCode::BadFrameKind,
                     "cancel frames require a v2 header");
  }
  if (reserved != 0) {
    return bad_frame(WireErrorCode::Malformed,
                     "reserved header byte must be 0");
  }
  if (payload_size > kMaxPayloadBytes) {
    return bad_frame(WireErrorCode::Oversized,
                     "payload of " + std::to_string(payload_size) +
                         " bytes exceeds the " +
                         std::to_string(kMaxPayloadBytes) + " byte ceiling");
  }
  if (size < header_bytes + payload_size) return {};  // NeedMore

  FrameScan scan;
  scan.state = FrameScan::State::Ready;
  scan.header = {static_cast<FrameKind>(kind), version, request_id,
                 payload_size, trace_id};
  scan.frame_size = header_bytes + payload_size;
  return scan;
}

std::vector<std::uint8_t> encode_request_frame(
    std::uint64_t request_id, const service::Request& request,
    std::uint32_t deadline_ms, std::uint16_t version, std::uint64_t trace_id,
    std::optional<qos::PriorityClass> priority) {
  Encoder e;
  encode_header(e, FrameKind::Request, request_id, version, trace_id);
  const std::size_t payload_start = e.size();
  e.u32(deadline_ms);
  encode(e, request);
  if (version >= 2) {
    // Trailing QoS extension: a single priority byte.  Decoders treat
    // its absence as "use the request type's default", so pre-extension
    // v2 peers interoperate unchanged.
    e.u8(static_cast<std::uint8_t>(
        priority.value_or(qos::default_priority(request))));
  }
  e.patch_u32(kPayloadSizeOffset,
              static_cast<std::uint32_t>(e.size() - payload_start));
  return e.take();
}

std::vector<std::uint8_t> encode_response_frame(
    std::uint64_t request_id, const service::QueryResponse& response,
    std::uint16_t version, std::uint64_t trace_id) {
  Encoder e;
  encode_header(e, FrameKind::Response, request_id, version, trace_id);
  const std::size_t payload_start = e.size();
  encode(e, response.status);
  e.boolean(response.cache_hit);
  e.i64(response.latency.count());
  encode_payload(e, response);
  if (version >= 2) {
    // Trailing QoS extension: one flags byte (bit 0 = sampled, i.e.
    // precision was shed) + the Overloaded retry-after hint in ms.
    // Absent on frames from pre-extension peers; decoders then default
    // to full precision and no hint.
    e.u8(response.sampled ? 1 : 0);
    e.u32(response.status.retry_after_ms);
  }
  e.patch_u32(kPayloadSizeOffset,
              static_cast<std::uint32_t>(e.size() - payload_start));
  return e.take();
}

std::vector<std::uint8_t> encode_ping_frame(std::uint64_t request_id) {
  Encoder e;
  encode_header(e, FrameKind::Ping, request_id, kProtocolVersion, 0);
  return e.take();
}

std::vector<std::uint8_t> encode_pong_frame(std::uint64_t request_id) {
  Encoder e;
  encode_header(e, FrameKind::Pong, request_id, kProtocolVersion, 0);
  return e.take();
}

std::vector<std::uint8_t> encode_hello_frame(std::uint64_t request_id,
                                             std::uint16_t min_version,
                                             std::uint16_t max_version) {
  Encoder e;
  // v1 header on purpose: the handshake that *selects* a version must be
  // readable at every version.
  encode_header(e, FrameKind::Hello, request_id, 1, 0);
  const std::size_t payload_start = e.size();
  e.u16(min_version);
  e.u16(max_version);
  e.patch_u32(kPayloadSizeOffset,
              static_cast<std::uint32_t>(e.size() - payload_start));
  return e.take();
}

std::vector<std::uint8_t> encode_hello_ack_frame(std::uint64_t request_id,
                                                 const service::Status& status,
                                                 std::uint16_t agreed_version) {
  Encoder e;
  encode_header(e, FrameKind::HelloAck, request_id, 1, 0);
  const std::size_t payload_start = e.size();
  encode(e, status);
  e.u16(agreed_version);
  e.patch_u32(kPayloadSizeOffset,
              static_cast<std::uint32_t>(e.size() - payload_start));
  return e.take();
}

std::vector<std::uint8_t> encode_cancel_frame(std::uint64_t request_id,
                                              std::uint64_t trace_id) {
  Encoder e;
  // Always a v2 header: cancellation is a v2 feature and scan_frame
  // rejects the kind at v1, so there is nothing to encode for v1 peers.
  encode_header(e, FrameKind::CancelRequest, request_id, kProtocolVersion,
                trace_id);
  return e.take();
}

DecodeResult<CancelFrame> decode_cancel_frame(const std::uint8_t* data,
                                              std::size_t size) {
  DecodeResult<CancelFrame> result;
  const FrameScan scan = scan_frame(data, size);
  if (scan.state == FrameScan::State::Bad) {
    result.error = scan.error;
    return result;
  }
  if (scan.state == FrameScan::State::NeedMore || scan.frame_size != size) {
    result.error = {WireErrorCode::Truncated,
                    "buffer is not exactly one frame"};
    return result;
  }
  if (scan.header.kind != FrameKind::CancelRequest) {
    result.error = {WireErrorCode::BadFrameKind, "expected a cancel frame"};
    return result;
  }
  if (scan.header.payload_size != 0) {
    result.error = {WireErrorCode::Malformed,
                    "cancel frames carry no payload"};
    return result;
  }
  CancelFrame frame;
  frame.request_id = scan.header.request_id;
  frame.trace_id = scan.header.trace_id;
  result.value = frame;
  return result;
}

std::vector<std::uint8_t> encode_span_batch_frame(
    std::uint64_t request_id, const trace::SpanBatch& batch) {
  Encoder e;
  encode_header(e, FrameKind::SpanBatch, request_id, kProtocolVersion, 0);
  const std::size_t payload_start = e.size();
  e.str(batch.node);
  e.i64(batch.send_ns);
  e.u64(batch.dropped);
  e.length(batch.spans.size());
  for (const trace::ExportSpan& span : batch.spans) {
    e.str(span.name);
    e.str(span.arg_name);
    e.i64(span.arg);
    e.u64(span.id);
    e.u64(span.parent);
    e.u64(span.trace_id);
    e.u32(span.thread);
    e.u8(static_cast<std::uint8_t>(span.category));
    e.i64(span.start_ns);
    e.i64(span.dur_ns);
  }
  e.patch_u32(kPayloadSizeOffset,
              static_cast<std::uint32_t>(e.size() - payload_start));
  return e.take();
}

DecodeResult<SpanBatchFrame> decode_span_batch_frame(const std::uint8_t* data,
                                                     std::size_t size) {
  DecodeResult<SpanBatchFrame> result;
  const FrameScan scan = scan_frame(data, size);
  if (scan.state == FrameScan::State::Bad) {
    result.error = scan.error;
    return result;
  }
  if (scan.state == FrameScan::State::NeedMore || scan.frame_size != size) {
    result.error = {WireErrorCode::Truncated,
                    "buffer is not exactly one frame"};
    return result;
  }
  if (scan.header.kind != FrameKind::SpanBatch) {
    result.error = {WireErrorCode::BadFrameKind, "expected a span batch frame"};
    return result;
  }

  SpanBatchFrame frame;
  frame.request_id = scan.header.request_id;
  Decoder d(data + header_size(scan.header.version),
            scan.header.payload_size);
  frame.batch.node = d.str();
  frame.batch.send_ns = d.i64();
  frame.batch.dropped = d.u64();
  // Per-span floor: two empty strings (4+4) + the fixed fields (53).
  const std::size_t count = d.length(61);
  frame.batch.spans.reserve(count);
  for (std::size_t i = 0; i < count && d.ok(); ++i) {
    trace::ExportSpan span;
    span.name = d.str();
    span.arg_name = d.str();
    span.arg = d.i64();
    span.id = d.u64();
    span.parent = d.u64();
    span.trace_id = d.u64();
    span.thread = d.u32();
    span.category = decode_enum<trace::Category>(
        d, static_cast<std::uint8_t>(trace::kCategoryCount - 1), "Category");
    span.start_ns = d.i64();
    span.dur_ns = d.i64();
    if (span.dur_ns < trace::Span::kInstant) {
      d.fail(WireErrorCode::Malformed, "span duration below kInstant");
    }
    frame.batch.spans.push_back(std::move(span));
  }
  d.expect_end();
  if (!d.ok()) {
    result.error = d.error();
    return result;
  }
  result.value = std::move(frame);
  return result;
}

DecodeResult<RequestFrame> decode_request_frame(const std::uint8_t* data,
                                                std::size_t size) {
  DecodeResult<RequestFrame> result;
  const FrameScan scan = scan_frame(data, size);
  if (scan.state == FrameScan::State::Bad) {
    result.error = scan.error;
    return result;
  }
  if (scan.state == FrameScan::State::NeedMore || scan.frame_size != size) {
    result.error = {WireErrorCode::Truncated,
                    "buffer is not exactly one frame"};
    return result;
  }
  if (scan.header.kind != FrameKind::Request) {
    result.error = {WireErrorCode::BadFrameKind,
                    "expected a request frame, got a response frame"};
    return result;
  }

  RequestFrame frame;
  frame.request_id = scan.header.request_id;
  frame.version = scan.header.version;
  frame.trace_id = scan.header.trace_id;
  Decoder d(data + header_size(scan.header.version),
            scan.header.payload_size);
  frame.deadline_ms = d.u32();
  frame.request = decode_request(d, scan.header.version);
  if (d.ok() && scan.header.version >= 2 && d.remaining() >= 1) {
    frame.priority =
        decode_enum<qos::PriorityClass>(d, 2, "PriorityClass");
  } else {
    // v1 frame, or a v2 client from before the QoS extension: the
    // request type's default class (test-enforced compatibility).
    frame.priority = qos::default_priority(frame.request);
  }
  d.expect_end();
  if (!d.ok()) {
    result.error = d.error();
    return result;
  }
  result.value = std::move(frame);
  return result;
}

DecodeResult<ResponseFrame> decode_response_frame(const std::uint8_t* data,
                                                  std::size_t size) {
  DecodeResult<ResponseFrame> result;
  const FrameScan scan = scan_frame(data, size);
  if (scan.state == FrameScan::State::Bad) {
    result.error = scan.error;
    return result;
  }
  if (scan.state == FrameScan::State::NeedMore || scan.frame_size != size) {
    result.error = {WireErrorCode::Truncated,
                    "buffer is not exactly one frame"};
    return result;
  }
  if (scan.header.kind != FrameKind::Response) {
    result.error = {WireErrorCode::BadFrameKind,
                    "expected a response frame, got a request frame"};
    return result;
  }

  ResponseFrame frame;
  frame.request_id = scan.header.request_id;
  frame.version = scan.header.version;
  frame.trace_id = scan.header.trace_id;
  Decoder d(data + header_size(scan.header.version),
            scan.header.payload_size);
  frame.response.status = decode_status(d);
  frame.response.cache_hit = d.boolean();
  frame.response.latency = std::chrono::nanoseconds(d.i64());
  frame.response.payload = decode_payload(d, scan.header.version);
  if (d.ok() && scan.header.version >= 2 && d.remaining() >= 5) {
    const std::uint8_t flags = d.u8();
    if (d.ok() && (flags & ~std::uint8_t{1}) != 0) {
      d.fail(WireErrorCode::Malformed,
             "bad qos flags byte " + std::to_string(flags));
    }
    frame.response.sampled = (flags & 1) != 0;
    frame.response.status.retry_after_ms = d.u32();
  }
  d.expect_end();
  if (!d.ok()) {
    result.error = d.error();
    return result;
  }
  result.value = std::move(frame);
  return result;
}

DecodeResult<HelloFrame> decode_hello_frame(const std::uint8_t* data,
                                            std::size_t size) {
  DecodeResult<HelloFrame> result;
  const FrameScan scan = scan_frame(data, size);
  if (scan.state == FrameScan::State::Bad) {
    result.error = scan.error;
    return result;
  }
  if (scan.state == FrameScan::State::NeedMore || scan.frame_size != size) {
    result.error = {WireErrorCode::Truncated,
                    "buffer is not exactly one frame"};
    return result;
  }
  if (scan.header.kind != FrameKind::Hello) {
    result.error = {WireErrorCode::BadFrameKind, "expected a Hello frame"};
    return result;
  }

  HelloFrame frame;
  frame.request_id = scan.header.request_id;
  Decoder d(data + header_size(scan.header.version),
            scan.header.payload_size);
  frame.min_version = d.u16();
  frame.max_version = d.u16();
  d.expect_end();
  if (!d.ok()) {
    result.error = d.error();
    return result;
  }
  if (frame.min_version > frame.max_version) {
    result.error = {WireErrorCode::Malformed,
                    "Hello min_version above max_version"};
    return result;
  }
  result.value = frame;
  return result;
}

DecodeResult<HelloAckFrame> decode_hello_ack_frame(const std::uint8_t* data,
                                                   std::size_t size) {
  DecodeResult<HelloAckFrame> result;
  const FrameScan scan = scan_frame(data, size);
  if (scan.state == FrameScan::State::Bad) {
    result.error = scan.error;
    return result;
  }
  if (scan.state == FrameScan::State::NeedMore || scan.frame_size != size) {
    result.error = {WireErrorCode::Truncated,
                    "buffer is not exactly one frame"};
    return result;
  }
  if (scan.header.kind != FrameKind::HelloAck) {
    result.error = {WireErrorCode::BadFrameKind, "expected a HelloAck frame"};
    return result;
  }

  HelloAckFrame frame;
  frame.request_id = scan.header.request_id;
  Decoder d(data + header_size(scan.header.version),
            scan.header.payload_size);
  frame.status = decode_status(d);
  frame.agreed_version = d.u16();
  d.expect_end();
  if (!d.ok()) {
    result.error = d.error();
    return result;
  }
  result.value = std::move(frame);
  return result;
}

}  // namespace mpct::wire
