#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace mpct::wire {

/// Typed decode failure.  The decoder never throws and never reads out
/// of bounds: any malformed input — truncated, oversized, wrong magic,
/// hostile length prefix — lands on exactly one of these codes, and the
/// fuzz tests (tests/test_fuzz.cpp) hold that contract under
/// ASan/UBSan.
enum class WireErrorCode : std::uint8_t {
  /// Input ended before the announced structure did.
  Truncated = 1,
  /// Frame does not start with the protocol magic; the stream is not
  /// (or no longer) frame-aligned.
  BadMagic = 2,
  /// Frame carries a protocol version this build does not speak.
  UnsupportedVersion = 3,
  /// Frame kind byte is neither Request nor Response.
  BadFrameKind = 4,
  /// Announced payload length exceeds kMaxPayloadBytes.
  Oversized = 5,
  /// Payload bytes do not decode to the announced structure (bad enum
  /// value, non-0/1 bool, implausible element count, ...).
  Malformed = 6,
  /// Payload decoded cleanly but bytes were left over.
  TrailingData = 7,
};

std::string_view to_string(WireErrorCode code);

struct WireError {
  WireErrorCode code = WireErrorCode::Malformed;
  std::string message;

  /// "malformed: bad Count kind 7".
  std::string to_string() const;

  friend bool operator==(const WireError&, const WireError&) = default;
};

/// Append-only little-endian byte writer.  All multi-byte integers are
/// written LSB-first regardless of host endianness; doubles travel as
/// their IEEE-754 bit pattern, so encode/decode round-trips are
/// bit-identical across conforming hosts.
class Encoder {
 public:
  void u8(std::uint8_t value) { out_.push_back(value); }
  void u16(std::uint16_t value) { put_le(value, 2); }
  void u32(std::uint32_t value) { put_le(value, 4); }
  void u64(std::uint64_t value) { put_le(value, 8); }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
  }
  void boolean(bool value) { u8(value ? 1 : 0); }
  /// u32 byte length followed by the raw bytes.
  void str(std::string_view text) {
    u32(static_cast<std::uint32_t>(text.size()));
    out_.insert(out_.end(), text.begin(), text.end());
  }
  /// u32 element count (the elements follow via the caller).
  void length(std::size_t count) { u32(static_cast<std::uint32_t>(count)); }

  std::size_t size() const { return out_.size(); }
  /// Overwrite 4 bytes at @p offset with @p value (little-endian) —
  /// used to back-patch the frame header's payload length.
  void patch_u32(std::size_t offset, std::uint32_t value);

  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  void put_le(std::uint64_t value, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader over a caller-owned buffer.
/// Every read validates the remaining size first; on failure the
/// decoder latches the first error, returns a zero value, and all
/// subsequent reads become no-ops — callers check ok() once at the end
/// instead of after every field.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return !failed_; }
  const WireError& error() const { return error_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }

  /// Latch @p code/@p message as the decode outcome (first failure
  /// wins) and disable further reads.
  void fail(WireErrorCode code, std::string message);

  std::uint8_t u8() { return static_cast<std::uint8_t>(get_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  /// A bool must be exactly 0 or 1 — anything else is Malformed, so a
  /// bit-flipped frame cannot smuggle an out-of-domain bool through.
  bool boolean();
  std::string str();

  /// Element-count prefix with a plausibility bound: the announced
  /// count times @p min_element_bytes must fit in the remaining input,
  /// so a hostile length can never drive a large allocation or an
  /// overread.
  std::size_t length(std::size_t min_element_bytes);

  /// Fail with TrailingData when bytes remain after a full decode.
  void expect_end();

 private:
  std::uint64_t get_le(int bytes);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  WireError error_;
};

}  // namespace mpct::wire
